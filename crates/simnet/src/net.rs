//! The network façade: message delivery with full contention accounting.
//!
//! [`Network::send`] walks a message through every serial resource it
//! occupies — the sender's TX engine, each torus link of the
//! dimension-order route (cut-through: latency paid per hop, serialisation
//! paid once but reserved on every link), and the receiver's RX engine with
//! its stream table. The returned [`Delivery`] carries the completion time;
//! queueing, tree saturation around hot nodes and BEER slow paths all emerge
//! from the per-resource `busy_until` horizons.

use crate::config::NetworkConfig;
use crate::link::Link;
use crate::nic::Nic;
use crate::placement::PlacementMap;
use crate::time::SimTime;
use crate::torus::Torus3;

/// Outcome of injecting one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Time the payload is fully available at the destination host.
    pub at: SimTime,
    /// Whether the receiver's stream table missed (BEER slow path taken).
    pub stream_miss: bool,
    /// Physical hops traversed (0 for intra-node delivery).
    pub hops: u32,
}

/// Aggregate traffic counters for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Inter-node messages sent.
    pub messages: u64,
    /// Intra-node (shared-memory) deliveries.
    pub local_messages: u64,
    /// Total payload bytes sent inter-node.
    pub bytes: u64,
    /// Total BEER slow-path events.
    pub stream_misses: u64,
    /// Total physical hops traversed.
    pub hops: u64,
}

/// The simulated interconnect: torus, links, and one NIC per logical node.
pub struct Network {
    cfg: NetworkConfig,
    torus: Torus3,
    placement: PlacementMap,
    links: Vec<Link>,
    nics: Vec<Nic>,
    counters: NetCounters,
}

impl Network {
    /// Builds the network for `n_nodes` logical nodes.
    ///
    /// # Panics
    /// Panics if a pinned torus geometry is too small for `n_nodes`.
    pub fn new(cfg: NetworkConfig, n_nodes: u32) -> Self {
        assert!(n_nodes >= 1, "need at least one node");
        let torus = match cfg.torus_dims {
            Some(dims) => Torus3::new(dims),
            None => Torus3::fitting(n_nodes),
        };
        let placement = PlacementMap::build(cfg.placement, n_nodes, &torus);
        let links = vec![Link::default(); torus.link_count()];
        let nics = (0..n_nodes).map(|_| Nic::new(cfg.stream_contexts)).collect();
        Network {
            cfg,
            torus,
            placement,
            links,
            nics,
            counters: NetCounters::default(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Number of logical nodes.
    pub fn num_nodes(&self) -> u32 {
        self.nics.len() as u32
    }

    /// Physical hop distance between two logical nodes.
    pub fn hop_distance(&self, src: u32, dst: u32) -> u32 {
        self.torus
            .hop_count(self.placement.slot(src), self.placement.slot(dst))
    }

    /// Sends `bytes` from logical node `src` to `dst` at time `now`,
    /// reserving every resource on the way; returns the delivery.
    pub fn send(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> Delivery {
        if src == dst {
            self.counters.local_messages += 1;
            return Delivery {
                at: now + self.cfg.shm_latency,
                stream_miss: false,
                hops: 0,
            };
        }

        // Transmit engine: software overhead + injection DMA.
        let entered = self.nics[src as usize].reserve_tx(
            now,
            self.cfg.tx_overhead,
            self.cfg.inj_time(bytes),
        );

        // Cut-through over the dimension-order route: the head pays hop
        // latency per link; the body's serialisation time is reserved on
        // every link it occupies but paid end-to-end only once.
        let occupancy = self.cfg.link_time(bytes);
        let route = self
            .torus
            .route_links(self.placement.slot(src), self.placement.slot(dst));
        let hops = route.len() as u32;
        let mut head = entered;
        for link_id in route {
            head = self.links[link_id as usize].reserve(head, occupancy, bytes) + self.cfg.hop_latency;
        }
        let arrival = head + occupancy;

        // Receive engine: fast path or BEER slow path.
        let (at, stream_miss) = self.nics[dst as usize].reserve_rx(
            src,
            arrival,
            self.cfg.rx_base,
            self.cfg.rx_time(bytes),
            self.cfg.stream_miss_penalty,
        );

        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.hops += u64::from(hops);
        self.counters.stream_misses += u64::from(stream_miss);
        Delivery {
            at,
            stream_miss,
            hops,
        }
    }

    /// Aggregate traffic counters.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Read access to a node's NIC (for reports and tests).
    pub fn nic(&self, node: u32) -> &Nic {
        &self.nics[node as usize]
    }

    /// The `k` busiest links by bytes carried, busiest first — makes tree
    /// saturation around hot nodes observable. Each entry is
    /// `(physical slot, direction 0..6, bytes)`.
    pub fn top_links(&self, k: usize) -> Vec<(u32, u8, u64)> {
        let mut loaded: Vec<(u32, u8, u64)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.bytes() > 0)
            .map(|(id, l)| ((id / 6) as u32, (id % 6) as u8, l.bytes()))
            .collect();
        loaded.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        loaded.truncate(k);
        loaded
    }

    /// Total bytes carried over all links (each hop counts the payload
    /// once).
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(Link::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    fn quiet_net(n: u32) -> Network {
        Network::new(NetworkConfig::default(), n)
    }

    #[test]
    fn local_delivery_uses_shm_latency() {
        let mut net = quiet_net(4);
        let d = net.send(SimTime::from_micros(1), 2, 2, 1 << 20);
        assert_eq!(d.at, SimTime::from_micros(1) + net.config().shm_latency);
        assert_eq!(d.hops, 0);
        assert!(!d.stream_miss);
        assert_eq!(net.counters().local_messages, 1);
        assert_eq!(net.counters().messages, 0);
    }

    #[test]
    fn remote_delivery_time_decomposes() {
        let mut net = quiet_net(8);
        let bytes = 2_400; // 1 us of injection and rx, 0.4 us on the wire
        let d = net.send(SimTime::ZERO, 0, 1, bytes);
        let cfg = *net.config();
        let hops = net.hop_distance(0, 1);
        assert!(hops >= 1);
        let expected = cfg.tx_overhead
            + cfg.inj_time(bytes)
            + cfg.hop_latency * u64::from(hops)
            + cfg.link_time(bytes)
            + cfg.rx_base
            + cfg.rx_time(bytes)
            + cfg.stream_miss_penalty; // first contact always misses
        assert_eq!(d.at, expected);
        assert!(d.stream_miss);
        assert_eq!(d.hops, hops);
    }

    #[test]
    fn second_message_from_same_source_hits_stream_table() {
        let mut net = quiet_net(4);
        let a = net.send(SimTime::ZERO, 0, 1, 64);
        let b = net.send(a.at, 0, 1, 64);
        assert!(a.stream_miss);
        assert!(!b.stream_miss);
        assert_eq!(net.counters().stream_misses, 1);
    }

    #[test]
    fn farther_nodes_take_longer() {
        // Linear placement: physical distance grows with node-id distance.
        let cfg = NetworkConfig {
            torus_dims: Some([8, 8, 8]),
            ..NetworkConfig::default()
        };
        let mut near_net = Network::new(cfg, 512);
        let near = near_net.send(SimTime::ZERO, 1, 0, 1_024).at;
        let mut far_net = Network::new(cfg, 512);
        let far_src = 256; // (0,0,4): 4 hops from slot 0
        let far = far_net.send(SimTime::ZERO, far_src, 0, 1_024).at;
        assert!(far > near, "far {far:?} <= near {near:?}");
    }

    #[test]
    fn many_to_one_serialises_at_receiver() {
        let mut net = quiet_net(64);
        // All nodes fire at the hot node simultaneously.
        let deliveries: Vec<Delivery> = (1..64)
            .map(|src| net.send(SimTime::ZERO, src, 0, 4_096))
            .collect();
        let mut times: Vec<SimTime> = deliveries.iter().map(|d| d.at).collect();
        times.sort_unstable();
        // Consecutive completions are separated by at least the rx cost.
        let rx_cost = net.config().rx_base + net.config().rx_time(4_096);
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= rx_cost, "{:?} then {:?}", w[0], w[1]);
        }
        // The last delivery reflects a deep queue: far beyond a lone send.
        let mut lone_net = quiet_net(64);
        let lone = lone_net.send(SimTime::ZERO, 1, 0, 4_096).at;
        assert!(*times.last().unwrap() > lone * 10);
    }

    #[test]
    fn interleaved_sources_beyond_contexts_thrash() {
        // More interleaved senders than stream contexts: steady-state
        // misses; fewer senders: steady-state hits.
        let cfg = NetworkConfig {
            stream_contexts: 8,
            ..NetworkConfig::default()
        };
        let mut net = Network::new(cfg, 32);
        let mut t = SimTime::ZERO;
        for _round in 0..4 {
            for src in 1..=12u32 {
                t = net.send(t, src, 0, 64).at;
            }
        }
        let thrashed = net.counters().stream_misses;
        assert_eq!(thrashed, 48, "every message should miss");

        let mut net2 = Network::new(cfg, 32);
        let mut t = SimTime::ZERO;
        for _round in 0..4 {
            for src in 1..=6u32 {
                t = net2.send(t, src, 0, 64).at;
            }
        }
        assert_eq!(net2.counters().stream_misses, 6, "only cold misses");
    }

    #[test]
    fn counters_accumulate() {
        let mut net = quiet_net(4);
        net.send(SimTime::ZERO, 0, 1, 100);
        net.send(SimTime::ZERO, 1, 2, 200);
        net.send(SimTime::ZERO, 3, 3, 300);
        let c = net.counters();
        assert_eq!(c.messages, 2);
        assert_eq!(c.local_messages, 1);
        assert_eq!(c.bytes, 300);
        assert!(c.hops >= 2);
    }

    #[test]
    fn top_links_surface_the_hot_spot() {
        let mut net = quiet_net(64);
        for src in 1..64 {
            net.send(SimTime::ZERO, src, 0, 10_000);
        }
        let top = net.top_links(6);
        assert!(!top.is_empty());
        // Bytes are sorted descending.
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // The busiest links carry many messages' worth of bytes (funnelling
        // into node 0), far above a single payload.
        assert!(top[0].2 > 50_000, "hottest link only {} bytes", top[0].2);
        // Total link bytes = payload x hops.
        assert_eq!(net.total_link_bytes(), 10_000 * net.counters().hops);
    }

    #[test]
    fn random_placement_builds() {
        let cfg = NetworkConfig {
            placement: Placement::Random { seed: 5 },
            ..NetworkConfig::default()
        };
        let mut net = Network::new(cfg, 100);
        let d = net.send(SimTime::ZERO, 99, 0, 1_000);
        assert!(d.at > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn pinned_torus_too_small_panics() {
        let cfg = NetworkConfig {
            torus_dims: Some([2, 2, 2]),
            ..NetworkConfig::default()
        };
        Network::new(cfg, 9);
    }
}
