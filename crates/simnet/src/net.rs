//! The network façade: message delivery with full contention accounting.
//!
//! [`Network::send`] walks a message through every serial resource it
//! occupies — the sender's TX engine, each torus link of the
//! dimension-order route (cut-through: latency paid per hop, serialisation
//! paid once but reserved on every link), and the receiver's RX engine with
//! its stream table. The returned [`Delivery`] carries the completion time;
//! queueing, tree saturation around hot nodes and BEER slow paths all emerge
//! from the per-resource `busy_until` horizons.

use crate::config::NetworkConfig;
use crate::fault::{CorruptWindow, DropReason, DropWindow, FaultPlan, LinkMode, PartitionWindow};
use crate::link::{Link, LinkFault};
use crate::nic::Nic;
use crate::placement::PlacementMap;
use crate::rng::DetRng;
use crate::time::SimTime;
use crate::torus::Torus3;

/// Outcome of injecting one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Time the payload is fully available at the destination host.
    pub at: SimTime,
    /// Whether the receiver's stream table missed (BEER slow path taken).
    pub stream_miss: bool,
    /// Physical hops traversed (0 for intra-node delivery).
    pub hops: u32,
    /// Whether a corrupt window flipped payload bits in flight. The frame
    /// still arrives — detecting the damage is the runtime's job, via
    /// end-to-end envelope checksums. Always false on the unfaulted paths.
    pub corrupt: bool,
}

/// Outcome of a send on a network that may inject faults.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message arrived; same meaning as [`Network::send`]'s return.
    Delivered(Delivery),
    /// The message was lost. Resources consumed before the loss point
    /// (TX engine, links already traversed) stay consumed.
    Dropped {
        /// Simulated time at which the message vanished.
        at: SimTime,
        /// What claimed it.
        reason: DropReason,
    },
}

/// Aggregate traffic counters for a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Inter-node messages sent (attempted; includes dropped ones).
    pub messages: u64,
    /// Intra-node (shared-memory) deliveries.
    pub local_messages: u64,
    /// Total payload bytes sent inter-node.
    pub bytes: u64,
    /// Total BEER slow-path events.
    pub stream_misses: u64,
    /// Total physical hops traversed.
    pub hops: u64,
    /// Messages lost to injected faults.
    pub dropped: u64,
    /// Coalesced envelopes sent inter-node (attempted; each is also counted
    /// once in `messages` — an envelope is one wire message).
    pub envelopes: u64,
    /// Member requests carried inside envelopes (attempted).
    pub coalesced_requests: u64,
    /// Failure-detector heartbeat probes sent (attempted; each is also
    /// counted once in `messages`). Zero unless the runtime's membership
    /// layer is enabled.
    pub probes: u64,
    /// Frames delivered with corrupted payloads (each is also counted once
    /// in `messages`). Zero unless the plan schedules corrupt windows.
    pub corrupted: u64,
}

/// Interpreted fault state: per-node outage windows (crash instant plus
/// optional reboot), partition cuts, transient-loss and corruption windows
/// with their dedicated RNG streams. Present only when the plan is
/// non-empty, so fault-free runs never touch any of it.
///
/// The loss and corruption draws come from *separate* forks of the fault
/// seed, so adding a corrupt window to a plan never perturbs which
/// messages its drop windows lose.
struct FaultCtx {
    outages: Vec<Option<(SimTime, Option<SimTime>)>>,
    partitions: Vec<PartitionWindow>,
    drop_windows: Vec<DropWindow>,
    drop_rng: DetRng,
    corrupt_windows: Vec<CorruptWindow>,
    corrupt_rng: DetRng,
}

impl FaultCtx {
    /// Whether `node` is inside its outage window at `at`.
    fn dead_at(&self, node: u32, at: SimTime) -> bool {
        match self.outages[node as usize] {
            Some((crash, restart)) => at >= crash && restart.is_none_or(|r| at < r),
            None => false,
        }
    }

    /// Whether an active partition severs `src -> dst` at `at`.
    fn partitioned(&self, at: SimTime, src: u32, dst: u32) -> bool {
        self.partitions.iter().any(|w| w.severs(at, src, dst))
    }
}

/// The simulated interconnect: torus, links, and one NIC per logical node.
pub struct Network {
    cfg: NetworkConfig,
    torus: Torus3,
    placement: PlacementMap,
    links: Vec<Link>,
    /// Per-link fault windows, index-parallel to `links`; allocated only
    /// when the installed plan faults links, so the fault-free route walk
    /// streams the dense 16-byte `links` entries alone.
    link_faults: Option<Vec<LinkFault>>,
    nics: Vec<Nic>,
    counters: NetCounters,
    faults: Option<FaultCtx>,
}

impl Network {
    /// Builds the network for `n_nodes` logical nodes.
    ///
    /// # Panics
    /// Panics if a pinned torus geometry is too small for `n_nodes`.
    pub fn new(cfg: NetworkConfig, n_nodes: u32) -> Self {
        assert!(n_nodes >= 1, "need at least one node");
        let torus = match cfg.torus_dims {
            Some(dims) => Torus3::new(dims),
            None => Torus3::fitting(n_nodes),
        };
        let placement = PlacementMap::build(cfg.placement, n_nodes, &torus);
        let links = vec![Link::default(); torus.link_count()];
        let nics = (0..n_nodes)
            .map(|_| Nic::new(cfg.stream_contexts))
            .collect();
        Network {
            cfg,
            torus,
            placement,
            links,
            link_faults: None,
            nics,
            counters: NetCounters::default(),
            faults: None,
        }
    }

    /// Builds the network with an injected [`FaultPlan`]. An empty plan
    /// yields a network indistinguishable from [`Network::new`]'s — no
    /// fault state is installed and [`Network::send_faulted`] takes the
    /// plain [`Network::send`] path.
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`], names a node
    /// outside `0..n_nodes`, or faults a link outside the torus.
    pub fn with_faults(cfg: NetworkConfig, n_nodes: u32, plan: &FaultPlan) -> Self {
        let mut net = Network::new(cfg, n_nodes);
        if plan.is_empty() {
            return net;
        }
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        if !plan.link_faults.is_empty() {
            let mut windows = vec![LinkFault::default(); net.links.len()];
            for f in &plan.link_faults {
                let id = f.slot as usize * 6 + usize::from(f.dir);
                assert!(
                    id < windows.len(),
                    "link fault slot {} outside the torus",
                    f.slot
                );
                match f.mode {
                    LinkMode::Fail => windows[id].set_outage(f.at, f.until),
                    LinkMode::Degrade(factor) => windows[id].set_degrade(f.at, f.until, factor),
                }
            }
            net.link_faults = Some(windows);
        }
        let mut outages = vec![None; n_nodes as usize];
        for c in &plan.node_crashes {
            assert!(
                c.node < n_nodes,
                "crash of node {} outside population",
                c.node
            );
            outages[c.node as usize] = Some((c.at, plan.restart_time(c.node)));
        }
        for p in &plan.partitions {
            for &(a, b) in &p.cut {
                assert!(
                    a < n_nodes && b < n_nodes,
                    "partition pair ({a}, {b}) outside population"
                );
            }
        }
        net.faults = Some(FaultCtx {
            outages,
            partitions: plan.partitions.clone(),
            drop_windows: plan.drop_windows.clone(),
            drop_rng: DetRng::new(cfg.fault_seed).fork(0xD20B),
            corrupt_windows: plan.corrupt_windows.clone(),
            corrupt_rng: DetRng::new(cfg.fault_seed).fork(0xC0BB),
        });
        net
    }

    /// The machine configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.cfg
    }

    /// Whether a fault plan is installed.
    pub fn faults_enabled(&self) -> bool {
        self.faults.is_some()
    }

    /// Whether `node` is dead — inside its scheduled outage window — at
    /// time `at`. A node whose plan reboots it is dead only between its
    /// crash and restart instants. Always false without a fault plan.
    pub fn node_dead(&self, node: u32, at: SimTime) -> bool {
        match &self.faults {
            Some(f) => f.dead_at(node, at),
            None => false,
        }
    }

    /// Marks `node`'s NIC dead. Called by the runtime when it processes the
    /// node's crash event; the time-aware drop decisions use the plan's
    /// outage windows, this just keeps the hardware state observable.
    pub fn kill_node(&mut self, node: u32) {
        self.nics[node as usize].kill();
    }

    /// Clears `node`'s NIC dead flag. Called by the runtime when it
    /// processes the node's restart event; as with [`Network::kill_node`],
    /// the drop decisions are time-based and this keeps the hardware state
    /// observable.
    pub fn revive_node(&mut self, node: u32) {
        self.nics[node as usize].revive();
    }

    /// Number of logical nodes.
    pub fn num_nodes(&self) -> u32 {
        self.nics.len() as u32
    }

    /// Physical hop distance between two logical nodes.
    pub fn hop_distance(&self, src: u32, dst: u32) -> u32 {
        self.torus
            .hop_count(self.placement.slot(src), self.placement.slot(dst))
    }

    /// Sends `bytes` from logical node `src` to `dst` at time `now`,
    /// reserving every resource on the way; returns the delivery.
    pub fn send(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> Delivery {
        if src == dst {
            self.counters.local_messages += 1;
            return Delivery {
                at: now + self.cfg.shm_latency,
                stream_miss: false,
                hops: 0,
                corrupt: false,
            };
        }

        // Transmit engine: software overhead + injection DMA.
        let entered =
            self.nics[src as usize].reserve_tx(now, self.cfg.tx_overhead, self.cfg.inj_time(bytes));

        // Cut-through over the dimension-order route: the head pays hop
        // latency per link; the body's serialisation time is reserved on
        // every link it occupies but paid end-to-end only once.
        let occupancy = self.cfg.link_time(bytes);
        let route = self
            .torus
            .route(self.placement.slot(src), self.placement.slot(dst));
        let mut hops = 0u32;
        let mut head = entered;
        for link_id in route {
            head =
                self.links[link_id as usize].reserve(head, occupancy, bytes) + self.cfg.hop_latency;
            hops += 1;
        }
        let arrival = head + occupancy;

        // Receive engine: fast path or BEER slow path.
        let (at, stream_miss) = self.nics[dst as usize].reserve_rx(
            src,
            arrival,
            self.cfg.rx_base,
            self.cfg.rx_time(bytes),
            self.cfg.stream_miss_penalty,
        );

        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.hops += u64::from(hops);
        self.counters.stream_misses += u64::from(stream_miss);
        Delivery {
            at,
            stream_miss,
            hops,
            corrupt: false,
        }
    }

    /// Sends a coalesced envelope of `subreqs` member requests totalling
    /// `payload_bytes` from `src` to `dst`; returns the delivery of the
    /// whole envelope.
    ///
    /// The envelope is one wire message: one TX reservation, one
    /// cut-through traversal sized by [`NetworkConfig::envelope_bytes`]
    /// (payload plus per-member framing), and one RX reservation that pays
    /// `rx_base` once plus `env_unpack` per member beyond the first. This
    /// path is deliberately separate from [`Network::send`] so a run with
    /// coalescing disabled never touches it.
    ///
    /// # Panics
    /// Panics on an intra-node envelope — coalescing only exists on the
    /// forwarding path, which always crosses nodes.
    pub fn send_envelope(
        &mut self,
        now: SimTime,
        src: u32,
        dst: u32,
        payload_bytes: u64,
        subreqs: u32,
    ) -> Delivery {
        assert_ne!(src, dst, "envelopes are inter-node by construction");
        let bytes = self.cfg.envelope_bytes(payload_bytes, subreqs);
        let entered =
            self.nics[src as usize].reserve_tx(now, self.cfg.tx_overhead, self.cfg.inj_time(bytes));
        let occupancy = self.cfg.link_time(bytes);
        let route = self
            .torus
            .route(self.placement.slot(src), self.placement.slot(dst));
        let mut hops = 0u32;
        let mut head = entered;
        for link_id in route {
            head =
                self.links[link_id as usize].reserve(head, occupancy, bytes) + self.cfg.hop_latency;
            hops += 1;
        }
        let arrival = head + occupancy;
        let (at, stream_miss) = self.nics[dst as usize].reserve_rx_envelope(
            src,
            arrival,
            self.cfg.rx_base,
            self.cfg.rx_time(bytes),
            self.cfg.stream_miss_penalty,
            self.cfg.env_unpack * u64::from(subreqs.saturating_sub(1)),
        );
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.hops += u64::from(hops);
        self.counters.stream_misses += u64::from(stream_miss);
        self.counters.envelopes += 1;
        self.counters.coalesced_requests += u64::from(subreqs);
        Delivery {
            at,
            stream_miss,
            hops,
            corrupt: false,
        }
    }

    /// The installed fault context. Only called on paths guarded by an
    /// `is_none` early return at function entry, so a missing context is a
    /// control-flow corruption worth crashing on.
    #[allow(clippy::expect_used)]
    fn faults_mut(&mut self) -> &mut FaultCtx {
        self.faults
            .as_mut()
            .expect("faulted send paths are guarded at entry")
    }

    /// [`Network::send_envelope`] under the installed fault plan: the
    /// envelope is lost or delivered as a unit, by the same rules as
    /// [`Network::send_faulted`].
    pub fn send_envelope_faulted(
        &mut self,
        now: SimTime,
        src: u32,
        dst: u32,
        payload_bytes: u64,
        subreqs: u32,
    ) -> SendOutcome {
        if self.faults.is_none() {
            return SendOutcome::Delivered(self.send_envelope(
                now,
                src,
                dst,
                payload_bytes,
                subreqs,
            ));
        }
        if self.node_dead(src, now) {
            self.counters.dropped += 1;
            return SendOutcome::Dropped {
                at: now,
                reason: DropReason::SourceDead,
            };
        }
        if self.faults_mut().partitioned(now, src, dst) {
            // The cut severs the pair at the sender's port: like a dead
            // source, the frame never reaches the NIC.
            self.counters.dropped += 1;
            return SendOutcome::Dropped {
                at: now,
                reason: DropReason::Partitioned,
            };
        }
        assert_ne!(src, dst, "envelopes are inter-node by construction");
        let bytes = self.cfg.envelope_bytes(payload_bytes, subreqs);
        let entered =
            self.nics[src as usize].reserve_tx(now, self.cfg.tx_overhead, self.cfg.inj_time(bytes));
        let occupancy = self.cfg.link_time(bytes);
        let (sa, sb) = (self.placement.slot(src), self.placement.slot(dst));
        let hops = self.torus.hop_count(sa, sb);
        let mut head = entered;
        let mut drain = occupancy;
        for (traversed, link_id) in self.torus.route(sa, sb).enumerate() {
            let id = link_id as usize;
            let scaled = match &self.link_faults {
                Some(lf) if lf[id].is_down(head) => {
                    self.counters.messages += 1;
                    self.counters.bytes += bytes;
                    self.counters.hops += traversed as u64;
                    self.counters.dropped += 1;
                    self.counters.envelopes += 1;
                    self.counters.coalesced_requests += u64::from(subreqs);
                    return SendOutcome::Dropped {
                        at: head,
                        reason: DropReason::LinkDown,
                    };
                }
                Some(lf) => scale_time(occupancy, lf[id].occupancy_factor(head)),
                None => occupancy,
            };
            drain = drain.max(scaled);
            head = self.links[id].reserve(head, scaled, bytes) + self.cfg.hop_latency;
        }
        let arrival = head + drain;

        let faults = self.faults_mut();
        if faults.dead_at(dst, arrival) {
            self.counters.messages += 1;
            self.counters.bytes += bytes;
            self.counters.hops += u64::from(hops);
            self.counters.dropped += 1;
            self.counters.envelopes += 1;
            self.counters.coalesced_requests += u64::from(subreqs);
            return SendOutcome::Dropped {
                at: arrival,
                reason: DropReason::DestDead,
            };
        }
        for w in &faults.drop_windows {
            if arrival >= w.from && arrival < w.until {
                if faults.drop_rng.f64() < w.probability {
                    self.counters.messages += 1;
                    self.counters.bytes += bytes;
                    self.counters.hops += u64::from(hops);
                    self.counters.dropped += 1;
                    self.counters.envelopes += 1;
                    self.counters.coalesced_requests += u64::from(subreqs);
                    return SendOutcome::Dropped {
                        at: arrival,
                        reason: DropReason::Transient,
                    };
                }
                break;
            }
        }
        let mut corrupt = false;
        for w in &faults.corrupt_windows {
            if arrival >= w.from && arrival < w.until {
                corrupt = faults.corrupt_rng.f64() < w.probability;
                break;
            }
        }

        let (at, stream_miss) = self.nics[dst as usize].reserve_rx_envelope(
            src,
            arrival,
            self.cfg.rx_base,
            self.cfg.rx_time(bytes),
            self.cfg.stream_miss_penalty,
            self.cfg.env_unpack * u64::from(subreqs.saturating_sub(1)),
        );
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.hops += u64::from(hops);
        self.counters.stream_misses += u64::from(stream_miss);
        self.counters.envelopes += 1;
        self.counters.coalesced_requests += u64::from(subreqs);
        self.counters.corrupted += u64::from(corrupt);
        SendOutcome::Delivered(Delivery {
            at,
            stream_miss,
            hops,
            corrupt,
        })
    }

    /// Sends under the installed fault plan. Without a plan this is
    /// exactly [`Network::send`]; with one, the message can be lost to a
    /// dead endpoint, a failed link on its route, or a transient-loss
    /// window, and traverses degraded links at their slowed rate.
    pub fn send_faulted(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> SendOutcome {
        if self.faults.is_none() {
            return SendOutcome::Delivered(self.send(now, src, dst, bytes));
        }
        if self.node_dead(src, now) {
            self.counters.dropped += 1;
            return SendOutcome::Dropped {
                at: now,
                reason: DropReason::SourceDead,
            };
        }
        if src == dst {
            // Intra-node copies move through host memory, not the NIC, so
            // network faults cannot touch them.
            self.counters.local_messages += 1;
            return SendOutcome::Delivered(Delivery {
                at: now + self.cfg.shm_latency,
                stream_miss: false,
                hops: 0,
                corrupt: false,
            });
        }
        if self.faults_mut().partitioned(now, src, dst) {
            // The cut severs the pair at the sender's port: like a dead
            // source, the frame never reaches the NIC.
            self.counters.dropped += 1;
            return SendOutcome::Dropped {
                at: now,
                reason: DropReason::Partitioned,
            };
        }

        let entered =
            self.nics[src as usize].reserve_tx(now, self.cfg.tx_overhead, self.cfg.inj_time(bytes));
        let occupancy = self.cfg.link_time(bytes);
        let (sa, sb) = (self.placement.slot(src), self.placement.slot(dst));
        let hops = self.torus.hop_count(sa, sb);
        let mut head = entered;
        // Cut-through as in `send`, except a degraded link slows its own
        // serialisation and the end-to-end drain is set by the slowest
        // link the body crosses.
        let mut drain = occupancy;
        for (traversed, link_id) in self.torus.route(sa, sb).enumerate() {
            let id = link_id as usize;
            let scaled = match &self.link_faults {
                Some(lf) if lf[id].is_down(head) => {
                    self.counters.messages += 1;
                    self.counters.bytes += bytes;
                    self.counters.hops += traversed as u64;
                    self.counters.dropped += 1;
                    return SendOutcome::Dropped {
                        at: head,
                        reason: DropReason::LinkDown,
                    };
                }
                Some(lf) => scale_time(occupancy, lf[id].occupancy_factor(head)),
                None => occupancy,
            };
            drain = drain.max(scaled);
            head = self.links[id].reserve(head, scaled, bytes) + self.cfg.hop_latency;
        }
        let arrival = head + drain;

        let faults = self.faults_mut();
        if faults.dead_at(dst, arrival) {
            self.counters.messages += 1;
            self.counters.bytes += bytes;
            self.counters.hops += u64::from(hops);
            self.counters.dropped += 1;
            return SendOutcome::Dropped {
                at: arrival,
                reason: DropReason::DestDead,
            };
        }
        for w in &faults.drop_windows {
            if arrival >= w.from && arrival < w.until {
                if faults.drop_rng.f64() < w.probability {
                    self.counters.messages += 1;
                    self.counters.bytes += bytes;
                    self.counters.hops += u64::from(hops);
                    self.counters.dropped += 1;
                    return SendOutcome::Dropped {
                        at: arrival,
                        reason: DropReason::Transient,
                    };
                }
                break;
            }
        }
        let mut corrupt = false;
        for w in &faults.corrupt_windows {
            if arrival >= w.from && arrival < w.until {
                corrupt = faults.corrupt_rng.f64() < w.probability;
                break;
            }
        }

        let (at, stream_miss) = self.nics[dst as usize].reserve_rx(
            src,
            arrival,
            self.cfg.rx_base,
            self.cfg.rx_time(bytes),
            self.cfg.stream_miss_penalty,
        );
        self.counters.messages += 1;
        self.counters.bytes += bytes;
        self.counters.hops += u64::from(hops);
        self.counters.stream_misses += u64::from(stream_miss);
        self.counters.corrupted += u64::from(corrupt);
        SendOutcome::Delivered(Delivery {
            at,
            stream_miss,
            hops,
            corrupt,
        })
    }

    /// Sends a failure-detector heartbeat probe under the installed fault
    /// plan: exactly [`Network::send_faulted`], plus the probe traffic
    /// counter. Probes are ordinary wire messages — they can be lost to
    /// dead endpoints, downed links and transient-loss windows like any
    /// other traffic, which is what makes a silent peer genuinely
    /// ambiguous to the detector.
    pub fn send_probe(&mut self, now: SimTime, src: u32, dst: u32, bytes: u64) -> SendOutcome {
        self.counters.probes += 1;
        self.send_faulted(now, src, dst, bytes)
    }

    /// Aggregate traffic counters.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Read access to a node's NIC (for reports and tests).
    pub fn nic(&self, node: u32) -> &Nic {
        &self.nics[node as usize]
    }

    /// The `k` busiest links by bytes carried, busiest first — makes tree
    /// saturation around hot nodes observable. Each entry is
    /// `(physical slot, direction 0..6, bytes)`.
    pub fn top_links(&self, k: usize) -> Vec<(u32, u8, u64)> {
        let mut loaded: Vec<(u32, u8, u64)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.bytes() > 0)
            .map(|(id, l)| ((id / 6) as u32, (id % 6) as u8, l.bytes()))
            .collect();
        // Busiest-first; ties broken by (slot, direction) so the result is
        // deterministic. Partition the top k in O(n), then sort only that
        // slice — the full list can be every link in a 19 200-slot torus.
        let cmp = |a: &(u32, u8, u64), b: &(u32, u8, u64)| {
            b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1))
        };
        if k == 0 || loaded.is_empty() {
            loaded.truncate(k);
            return loaded;
        }
        if k < loaded.len() {
            loaded.select_nth_unstable_by(k - 1, cmp);
            loaded.truncate(k);
        }
        loaded.sort_unstable_by(cmp);
        loaded
    }

    /// Total bytes carried over all links (each hop counts the payload
    /// once).
    pub fn total_link_bytes(&self) -> u64 {
        self.links.iter().map(Link::bytes).sum()
    }
}

/// Scales a span by a slow-down factor (identity for healthy links, so the
/// fault-free arithmetic stays exact integer nanoseconds).
fn scale_time(t: SimTime, factor: f64) -> SimTime {
    if factor == 1.0 {
        t
    } else {
        SimTime::from_nanos((t.as_nanos() as f64 * factor).round() as u64)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::placement::Placement;

    fn quiet_net(n: u32) -> Network {
        Network::new(NetworkConfig::default(), n)
    }

    #[test]
    fn local_delivery_uses_shm_latency() {
        let mut net = quiet_net(4);
        let d = net.send(SimTime::from_micros(1), 2, 2, 1 << 20);
        assert_eq!(d.at, SimTime::from_micros(1) + net.config().shm_latency);
        assert_eq!(d.hops, 0);
        assert!(!d.stream_miss);
        assert_eq!(net.counters().local_messages, 1);
        assert_eq!(net.counters().messages, 0);
    }

    #[test]
    fn remote_delivery_time_decomposes() {
        let mut net = quiet_net(8);
        let bytes = 2_400; // 1 us of injection and rx, 0.4 us on the wire
        let d = net.send(SimTime::ZERO, 0, 1, bytes);
        let cfg = *net.config();
        let hops = net.hop_distance(0, 1);
        assert!(hops >= 1);
        let expected = cfg.tx_overhead
            + cfg.inj_time(bytes)
            + cfg.hop_latency * u64::from(hops)
            + cfg.link_time(bytes)
            + cfg.rx_base
            + cfg.rx_time(bytes)
            + cfg.stream_miss_penalty; // first contact always misses
        assert_eq!(d.at, expected);
        assert!(d.stream_miss);
        assert_eq!(d.hops, hops);
    }

    #[test]
    fn second_message_from_same_source_hits_stream_table() {
        let mut net = quiet_net(4);
        let a = net.send(SimTime::ZERO, 0, 1, 64);
        let b = net.send(a.at, 0, 1, 64);
        assert!(a.stream_miss);
        assert!(!b.stream_miss);
        assert_eq!(net.counters().stream_misses, 1);
    }

    #[test]
    fn farther_nodes_take_longer() {
        // Linear placement: physical distance grows with node-id distance.
        let cfg = NetworkConfig {
            torus_dims: Some([8, 8, 8]),
            ..NetworkConfig::default()
        };
        let mut near_net = Network::new(cfg, 512);
        let near = near_net.send(SimTime::ZERO, 1, 0, 1_024).at;
        let mut far_net = Network::new(cfg, 512);
        let far_src = 256; // (0,0,4): 4 hops from slot 0
        let far = far_net.send(SimTime::ZERO, far_src, 0, 1_024).at;
        assert!(far > near, "far {far:?} <= near {near:?}");
    }

    #[test]
    fn many_to_one_serialises_at_receiver() {
        let mut net = quiet_net(64);
        // All nodes fire at the hot node simultaneously.
        let deliveries: Vec<Delivery> = (1..64)
            .map(|src| net.send(SimTime::ZERO, src, 0, 4_096))
            .collect();
        let mut times: Vec<SimTime> = deliveries.iter().map(|d| d.at).collect();
        times.sort_unstable();
        // Consecutive completions are separated by at least the rx cost.
        let rx_cost = net.config().rx_base + net.config().rx_time(4_096);
        for w in times.windows(2) {
            assert!(w[1] - w[0] >= rx_cost, "{:?} then {:?}", w[0], w[1]);
        }
        // The last delivery reflects a deep queue: far beyond a lone send.
        let mut lone_net = quiet_net(64);
        let lone = lone_net.send(SimTime::ZERO, 1, 0, 4_096).at;
        assert!(*times.last().unwrap() > lone * 10);
    }

    #[test]
    fn interleaved_sources_beyond_contexts_thrash() {
        // More interleaved senders than stream contexts: steady-state
        // misses; fewer senders: steady-state hits.
        let cfg = NetworkConfig {
            stream_contexts: 8,
            ..NetworkConfig::default()
        };
        let mut net = Network::new(cfg, 32);
        let mut t = SimTime::ZERO;
        for _round in 0..4 {
            for src in 1..=12u32 {
                t = net.send(t, src, 0, 64).at;
            }
        }
        let thrashed = net.counters().stream_misses;
        assert_eq!(thrashed, 48, "every message should miss");

        let mut net2 = Network::new(cfg, 32);
        let mut t = SimTime::ZERO;
        for _round in 0..4 {
            for src in 1..=6u32 {
                t = net2.send(t, src, 0, 64).at;
            }
        }
        assert_eq!(net2.counters().stream_misses, 6, "only cold misses");
    }

    #[test]
    fn envelope_is_one_message_and_beats_singles_at_hot_receiver() {
        // Same total payload into the same receiver: one 4-member envelope
        // vs four singles from the same forwarder.
        let mut env_net = quiet_net(8);
        let env = env_net.send_envelope(SimTime::ZERO, 3, 0, 4 * 160, 4);
        let mut single_net = quiet_net(8);
        let mut last = SimTime::ZERO;
        for _ in 0..4 {
            last = single_net.send(SimTime::ZERO, 3, 0, 160).at;
        }
        assert!(env.at < last, "envelope {:?} >= singles {:?}", env.at, last);
        let c = env_net.counters();
        assert_eq!(c.messages, 1);
        assert_eq!(c.envelopes, 1);
        assert_eq!(c.coalesced_requests, 4);
        // Framing bytes: payload + 3 sub-headers.
        assert_eq!(c.bytes, 4 * 160 + env_net.config().env_sub_header * 3);
        assert_eq!(single_net.counters().messages, 4);
        assert_eq!(single_net.counters().envelopes, 0);
    }

    #[test]
    fn faulted_envelope_with_empty_plan_matches_plain() {
        let cfg = NetworkConfig::default();
        let mut plain = Network::new(cfg, 16);
        let mut faulted = Network::with_faults(cfg, 16, &FaultPlan::new());
        let a = plain.send_envelope(SimTime::ZERO, 5, 0, 640, 4);
        let b = faulted.send_envelope_faulted(SimTime::ZERO, 5, 0, 640, 4);
        assert_eq!(b, SendOutcome::Delivered(a));
        assert_eq!(plain.counters(), faulted.counters());
    }

    #[test]
    fn envelope_to_crashed_destination_is_dropped() {
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 0);
        let mut net = Network::with_faults(NetworkConfig::default(), 8, &plan);
        match net.send_envelope_faulted(SimTime::from_micros(1), 5, 0, 320, 2) {
            SendOutcome::Dropped { reason, .. } => assert_eq!(reason, DropReason::DestDead),
            other => panic!("expected a dest-dead drop, got {other:?}"),
        }
        assert_eq!(net.counters().dropped, 1);
        assert_eq!(net.counters().envelopes, 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut net = quiet_net(4);
        net.send(SimTime::ZERO, 0, 1, 100);
        net.send(SimTime::ZERO, 1, 2, 200);
        net.send(SimTime::ZERO, 3, 3, 300);
        let c = net.counters();
        assert_eq!(c.messages, 2);
        assert_eq!(c.local_messages, 1);
        assert_eq!(c.bytes, 300);
        assert!(c.hops >= 2);
    }

    #[test]
    fn top_links_surface_the_hot_spot() {
        let mut net = quiet_net(64);
        for src in 1..64 {
            net.send(SimTime::ZERO, src, 0, 10_000);
        }
        let top = net.top_links(6);
        assert!(!top.is_empty());
        // Bytes are sorted descending.
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        // The busiest links carry many messages' worth of bytes (funnelling
        // into node 0), far above a single payload.
        assert!(top[0].2 > 50_000, "hottest link only {} bytes", top[0].2);
        // Total link bytes = payload x hops.
        assert_eq!(net.total_link_bytes(), 10_000 * net.counters().hops);
    }

    #[test]
    fn top_links_k_selection_matches_full_sort_with_ties() {
        // Many links carrying *identical* byte loads: the k-selection must
        // return exactly the prefix a full deterministic sort would, with
        // ties broken by (slot, direction) ascending.
        let mut net = quiet_net(27);
        let mut pairs = 0;
        for src in 0..27u32 {
            for dst in 0..27u32 {
                if src != dst && net.hop_distance(src, dst) == 1 && pairs < 12 {
                    net.send(SimTime::ZERO, src, dst, 5_000);
                    pairs += 1;
                }
            }
        }
        assert_eq!(pairs, 12);
        let full = net.top_links(usize::MAX);
        assert_eq!(full.len(), 12);
        assert!(full.iter().all(|e| e.2 == 5_000), "loads must tie");
        for w in full.windows(2) {
            assert!(
                (w[0].0, w[0].1) < (w[1].0, w[1].1),
                "ties must order by (slot, dir): {w:?}"
            );
        }
        for k in [0, 1, 5, 11, 12, 40] {
            let top = net.top_links(k);
            assert_eq!(top, full[..k.min(full.len())], "k = {k}");
        }
    }

    #[test]
    fn random_placement_builds() {
        let cfg = NetworkConfig {
            placement: Placement::Random { seed: 5 },
            ..NetworkConfig::default()
        };
        let mut net = Network::new(cfg, 100);
        let d = net.send(SimTime::ZERO, 99, 0, 1_000);
        assert!(d.at > SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn pinned_torus_too_small_panics() {
        let cfg = NetworkConfig {
            torus_dims: Some([2, 2, 2]),
            ..NetworkConfig::default()
        };
        Network::new(cfg, 9);
    }

    use crate::fault::{DropReason, FaultPlan};

    #[test]
    fn empty_plan_behaves_exactly_like_no_plan() {
        let cfg = NetworkConfig::default();
        let mut plain = Network::new(cfg, 16);
        let mut faulted = Network::with_faults(cfg, 16, &FaultPlan::new());
        assert!(!faulted.faults_enabled());
        for (src, dst, bytes) in [(1, 0, 4_096u64), (5, 0, 64), (3, 3, 128), (9, 2, 10_000)] {
            let a = plain.send(SimTime::ZERO, src, dst, bytes);
            let b = faulted.send_faulted(SimTime::ZERO, src, dst, bytes);
            assert_eq!(b, SendOutcome::Delivered(a));
        }
        assert_eq!(plain.counters(), faulted.counters());
        assert_eq!(faulted.counters().dropped, 0);
    }

    #[test]
    fn dead_source_drops_at_send_time() {
        let plan = FaultPlan::new().crash_node(SimTime::from_micros(10), 4);
        let mut net = Network::with_faults(NetworkConfig::default(), 8, &plan);
        // Before the crash the node still sends.
        let before = net.send_faulted(SimTime::ZERO, 4, 0, 64);
        assert!(matches!(before, SendOutcome::Delivered(_)));
        let after = net.send_faulted(SimTime::from_micros(10), 4, 0, 64);
        assert_eq!(
            after,
            SendOutcome::Dropped {
                at: SimTime::from_micros(10),
                reason: DropReason::SourceDead
            }
        );
        assert_eq!(net.counters().dropped, 1);
    }

    #[test]
    fn message_arriving_after_dest_crash_is_lost() {
        // The crash instant falls between send time and arrival: the
        // message is already in flight and vanishes at the dead NIC.
        let plan = FaultPlan::new().crash_node(SimTime::from_nanos(2_000), 0);
        let mut net = Network::with_faults(NetworkConfig::default(), 8, &plan);
        match net.send_faulted(SimTime::ZERO, 7, 0, 4_096) {
            SendOutcome::Dropped { at, reason } => {
                assert_eq!(reason, DropReason::DestDead);
                assert!(at >= SimTime::from_nanos(2_000));
            }
            other => panic!("expected a dest-dead drop, got {other:?}"),
        }
        assert_eq!(net.counters().dropped, 1);
        assert!(net.node_dead(0, SimTime::from_nanos(2_000)));
        assert!(!net.node_dead(0, SimTime::from_nanos(1_999)));
    }

    #[test]
    fn failed_link_swallows_the_message() {
        let cfg = NetworkConfig::default();
        let probe = Network::new(cfg, 8);
        let route = probe
            .torus
            .route_links(probe.placement.slot(3), probe.placement.slot(0));
        let first = route[0];
        let plan = FaultPlan::new().fail_link(first / 6, (first % 6) as u8, SimTime::ZERO, None);
        let mut net = Network::with_faults(cfg, 8, &plan);
        match net.send_faulted(SimTime::ZERO, 3, 0, 64) {
            SendOutcome::Dropped { reason, .. } => assert_eq!(reason, DropReason::LinkDown),
            other => panic!("expected a link-down drop, got {other:?}"),
        }
        // Once the outage clears, the same route works again.
        let plan2 = FaultPlan::new().fail_link(
            first / 6,
            (first % 6) as u8,
            SimTime::ZERO,
            Some(SimTime::from_nanos(1)),
        );
        let mut net2 = Network::with_faults(cfg, 8, &plan2);
        let late = net2.send_faulted(SimTime::from_micros(100), 3, 0, 64);
        assert!(matches!(late, SendOutcome::Delivered(_)));
    }

    #[test]
    fn degraded_link_slows_delivery() {
        let cfg = NetworkConfig::default();
        let probe = Network::new(cfg, 8);
        let route = probe
            .torus
            .route_links(probe.placement.slot(3), probe.placement.slot(0));
        let first = route[0];
        let plan =
            FaultPlan::new().degrade_link(first / 6, (first % 6) as u8, SimTime::ZERO, None, 8.0);
        let mut slow = Network::with_faults(cfg, 8, &plan);
        let mut fast = Network::new(cfg, 8);
        let slow_at = match slow.send_faulted(SimTime::ZERO, 3, 0, 60_000) {
            SendOutcome::Delivered(d) => d.at,
            other => panic!("degraded link should still deliver, got {other:?}"),
        };
        let fast_at = fast.send(SimTime::ZERO, 3, 0, 60_000).at;
        assert!(slow_at > fast_at, "{slow_at:?} <= {fast_at:?}");
    }

    #[test]
    fn drop_window_loses_messages_deterministically() {
        let plan = FaultPlan::new().drop_window(SimTime::ZERO, SimTime::from_secs(1), 0.5);
        let run = |seed: u64| {
            let cfg = NetworkConfig {
                fault_seed: seed,
                ..NetworkConfig::default()
            };
            let mut net = Network::with_faults(cfg, 32, &plan);
            let mut t = SimTime::ZERO;
            let mut outcomes = Vec::new();
            for i in 0..200u32 {
                let src = 1 + (i % 31);
                let out = net.send_faulted(t, src, 0, 256);
                if let SendOutcome::Delivered(d) = out {
                    t = d.at;
                }
                outcomes.push(out);
            }
            (outcomes, net.counters())
        };
        let (a, ca) = run(7);
        let (b, cb) = run(7);
        assert_eq!(a, b, "same fault seed must lose the same messages");
        assert_eq!(ca, cb);
        assert!(ca.dropped > 0, "p=0.5 over 200 sends should drop some");
        assert!(ca.dropped < 200, "p=0.5 over 200 sends should deliver some");
        let (_, cc) = run(8);
        assert_ne!(ca.dropped, cc.dropped, "different seeds should diverge");
    }

    #[test]
    fn killed_nic_is_observable() {
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 2);
        let mut net = Network::with_faults(NetworkConfig::default(), 4, &plan);
        assert!(!net.nic(2).is_dead());
        net.kill_node(2);
        assert!(net.nic(2).is_dead());
        net.revive_node(2);
        assert!(!net.nic(2).is_dead());
    }

    #[test]
    fn restarted_node_is_dead_only_inside_its_outage_window() {
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_nanos(1_000), 0)
            .restart_node(SimTime::from_micros(10), 0);
        let mut net = Network::with_faults(NetworkConfig::default(), 8, &plan);
        assert!(!net.node_dead(0, SimTime::from_nanos(999)));
        assert!(net.node_dead(0, SimTime::from_nanos(1_000)));
        assert!(net.node_dead(0, SimTime::from_nanos(9_999)));
        assert!(!net.node_dead(0, SimTime::from_micros(10)), "reboot heals");
        // In flight across the crash instant: lost at the dead NIC.
        match net.send_faulted(SimTime::ZERO, 7, 0, 4_096) {
            SendOutcome::Dropped { reason, .. } => assert_eq!(reason, DropReason::DestDead),
            other => panic!("expected a dest-dead drop, got {other:?}"),
        }
        // A dead node cannot send mid-outage...
        let mid = net.send_faulted(SimTime::from_micros(5), 0, 7, 64);
        assert!(matches!(
            mid,
            SendOutcome::Dropped {
                reason: DropReason::SourceDead,
                ..
            }
        ));
        // ...but both directions work again after the reboot.
        assert!(matches!(
            net.send_faulted(SimTime::from_micros(10), 0, 7, 64),
            SendOutcome::Delivered(_)
        ));
        assert!(matches!(
            net.send_faulted(SimTime::from_micros(12), 7, 0, 64),
            SendOutcome::Delivered(_)
        ));
    }

    #[test]
    fn partition_severs_directed_pairs_until_heal() {
        let plan = FaultPlan::new().partition(
            SimTime::from_micros(10),
            SimTime::from_micros(20),
            vec![(3, 0)],
        );
        let mut net = Network::with_faults(NetworkConfig::default(), 8, &plan);
        assert!(matches!(
            net.send_faulted(SimTime::from_micros(5), 3, 0, 64),
            SendOutcome::Delivered(_)
        ));
        assert_eq!(
            net.send_faulted(SimTime::from_micros(15), 3, 0, 64),
            SendOutcome::Dropped {
                at: SimTime::from_micros(15),
                reason: DropReason::Partitioned
            }
        );
        // The cut is directed: the reverse pair still flows.
        assert!(matches!(
            net.send_faulted(SimTime::from_micros(15), 0, 3, 64),
            SendOutcome::Delivered(_)
        ));
        // After the heal instant the pair flows again.
        assert!(matches!(
            net.send_faulted(SimTime::from_micros(20), 3, 0, 64),
            SendOutcome::Delivered(_)
        ));
        assert_eq!(net.counters().dropped, 1);
    }

    #[test]
    fn corrupt_window_flips_payloads_deterministically() {
        let plan = FaultPlan::new().corrupt_window(SimTime::ZERO, SimTime::from_secs(1), 0.4);
        let run = |seed: u64| {
            let cfg = NetworkConfig {
                fault_seed: seed,
                ..NetworkConfig::default()
            };
            let mut net = Network::with_faults(cfg, 32, &plan);
            let mut t = SimTime::ZERO;
            let mut flips = Vec::new();
            for i in 0..200u32 {
                let src = 1 + (i % 31);
                match net.send_faulted(t, src, 0, 256) {
                    SendOutcome::Delivered(d) => {
                        t = d.at;
                        flips.push(d.corrupt);
                    }
                    other => panic!("corruption never drops, got {other:?}"),
                }
            }
            (flips, net.counters())
        };
        let (a, ca) = run(7);
        let (b, cb) = run(7);
        assert_eq!(a, b, "same fault seed must corrupt the same messages");
        assert_eq!(ca, cb);
        let corrupted = a.iter().filter(|&&c| c).count() as u64;
        assert!(corrupted > 0, "p=0.4 over 200 sends should corrupt some");
        assert!(corrupted < 200, "p=0.4 should leave some frames clean");
        assert_eq!(ca.corrupted, corrupted);
        assert_eq!(ca.dropped, 0, "corrupt frames are delivered, not dropped");
    }

    #[test]
    fn corrupt_draws_do_not_perturb_the_drop_stream() {
        // Adding a corrupt window must not change which messages the drop
        // windows lose: the two schedules draw from separate RNG forks.
        let drops_only = FaultPlan::new().drop_window(SimTime::ZERO, SimTime::from_secs(1), 0.5);
        let both = drops_only
            .clone()
            .corrupt_window(SimTime::ZERO, SimTime::from_secs(1), 0.5);
        let losses = |plan: &FaultPlan| {
            let mut net = Network::with_faults(NetworkConfig::default(), 32, plan);
            let mut t = SimTime::ZERO;
            let mut lost = Vec::new();
            for i in 0..200u32 {
                let src = 1 + (i % 31);
                match net.send_faulted(t, src, 0, 256) {
                    SendOutcome::Delivered(d) => {
                        t = d.at;
                        lost.push(false);
                    }
                    SendOutcome::Dropped { .. } => lost.push(true),
                }
            }
            lost
        };
        assert_eq!(losses(&drops_only), losses(&both));
    }

    #[test]
    #[should_panic(expected = "outside population")]
    fn crash_outside_population_panics() {
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 99);
        Network::with_faults(NetworkConfig::default(), 4, &plan);
    }
}
