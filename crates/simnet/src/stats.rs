//! Summary statistics for simulation measurements.

use crate::time::SimTime;

/// Online mean/variance/min/max accumulator (Welford's algorithm), used for
/// per-rank latency summaries without storing every sample.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds a simulated-time sample in microseconds.
    pub fn push_time_us(&mut self, t: SimTime) {
        self.push(t.as_micros_f64());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean, or 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator), or 0 with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or 0 for an empty summary.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 for an empty summary.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.mean = mean;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The `q`-th percentile (0 ≤ q ≤ 100) of a set of samples by linear
/// interpolation. Sorts a copy; intended for end-of-run reporting.
///
/// Returns 0 for an empty slice.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_summary_is_zeroes() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn merge_matches_bulk() {
        let xs: Vec<f64> = (0..100).map(|i| (i * i % 37) as f64).collect();
        let mut all = Summary::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Summary::new();
        let mut b = Summary::new();
        for (i, &x) in xs.iter().enumerate() {
            if i % 3 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::new();
        a.push(3.0);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a.mean(), before.mean());
        let mut empty = Summary::new();
        empty.merge(&before);
        assert_eq!(empty.mean(), 3.0);
    }

    #[test]
    fn push_time_us_converts() {
        let mut s = Summary::new();
        s.push_time_us(SimTime::from_micros(250));
        assert_eq!(s.mean(), 250.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 50.0), 2.5);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_rejects_bad_q() {
        percentile(&[1.0], 101.0);
    }
}
