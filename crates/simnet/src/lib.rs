//! # vt-simnet — a deterministic Cray XT5-class machine simulator
//!
//! The paper's evaluation ran on the Jaguar Cray XT5 (SeaStar2+ 3-D torus,
//! connection-less Portals messaging, Cray BEER end-to-end reliability).
//! None of that hardware is available, so this crate provides the substrate
//! the reproduction runs on:
//!
//! * [`SimTime`] and the deterministic [`EventQueue`] — a discrete-event
//!   core with stable FIFO tie-breaking,
//! * [`Torus3`] — a 3-D torus with dimension-order routing and per-link
//!   store-and-forward serialisation,
//! * [`Nic`] — a network interface with transmit/receive serialisation and a
//!   bounded set of *fast message-stream contexts*; messages from sources
//!   outside the hot set pay a BEER-style slow-path penalty, which models the
//!   paper's "flow control and reliability" throttling (§II),
//! * [`Network`] — the façade that reserves NIC and link time for a message
//!   and returns its delivery time,
//! * [`DetRng`] and [`stats`] — seeded randomness and summary statistics,
//! * [`ArrivalProcess`] — deterministic open-system arrival generators
//!   (steady / diurnal / flash-crowd offered-load curves) for serving-mode
//!   workloads,
//! * [`FaultPlan`] — a deterministic schedule of node crashes and reboots,
//!   link degradation/failure, network partitions, transient message loss
//!   and payload corruption, interpreted by
//!   [`Network::send_faulted`](net::Network::send_faulted); an empty plan
//!   leaves every fast path untouched.
//!
//! The simulator is a *time-reservation* model: every component keeps a
//! `busy_until` horizon and messages queue behind it, which is how many-to-one
//! traffic turns into the queueing delay and stream thrash the paper
//! attributes FCG's contention collapse to. Everything is single-threaded and
//! deterministic; the same seed and configuration always produce the same
//! timeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic policy for the network hot paths: `unwrap`/`expect` are reserved
// for invariants (guarded control flow, clock overflow) and each site
// carries an `#[allow]` with its justification; anything reachable from a
// valid configuration must return a typed outcome instead. Test modules
// are exempt wholesale.
#![warn(clippy::unwrap_used, clippy::expect_used)]
pub mod arrivals;
pub mod config;
pub mod engine;
pub mod fault;
pub mod link;
pub mod net;
pub mod nic;
pub mod placement;
pub mod rng;
pub mod stats;
pub mod time;
pub mod torus;

pub use arrivals::{ArrivalGen, ArrivalKind, ArrivalProcess, LoadPhase};
pub use config::NetworkConfig;
pub use engine::{BaselineEventQueue, EventQueue};
pub use fault::{
    CorruptWindow, DropReason, DropWindow, FaultPlan, FaultPlanError, LinkFault, LinkMode,
    NodeCrash, NodeRestart, PartitionWindow,
};
pub use net::{Delivery, Network, SendOutcome};
pub use nic::Nic;
pub use placement::Placement;
pub use rng::DetRng;
pub use time::SimTime;
pub use torus::Torus3;
