//! Machine configuration.

use crate::placement::Placement;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Parameters of the simulated machine and interconnect.
///
/// Defaults are calibrated to Jaguar-era (Cray XT5 / SeaStar2+) magnitudes:
/// microsecond-scale one-sided operations, multi-GB/s links, a few hundred
/// nanoseconds per hop, and tens of microseconds for a BEER slow-path
/// flow-control exchange. Absolute values are *not* meant to match the
/// authors' testbed — the reproduction targets the shapes of the curves.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Physical torus extents; `None` picks the smallest near-cubic torus
    /// that fits the node count.
    pub torus_dims: Option<[u32; 3]>,
    /// Node-to-slot placement policy.
    pub placement: Placement,
    /// Router traversal latency per hop.
    pub hop_latency: SimTime,
    /// Link wire bandwidth in bytes per nanosecond (GB/s).
    pub link_bytes_per_ns: f64,
    /// Sender-side software + descriptor cost per message.
    pub tx_overhead: SimTime,
    /// Injection (host-to-NIC DMA) bandwidth in bytes per nanosecond.
    pub inj_bytes_per_ns: f64,
    /// Receiver-side fast-path cost per message.
    pub rx_base: SimTime,
    /// Receive (NIC-to-host DMA) bandwidth in bytes per nanosecond.
    pub rx_bytes_per_ns: f64,
    /// Number of resident fast message-stream contexts per NIC.
    pub stream_contexts: usize,
    /// BEER slow-path penalty when a message's source misses the stream
    /// table (flow-control handshake + reliability state re-establishment).
    pub stream_miss_penalty: SimTime,
    /// Latency of an intra-node (shared-memory) delivery.
    pub shm_latency: SimTime,
    /// Framing overhead per envelope member beyond the first: the
    /// sub-request length/offset descriptor that lets the receiver split a
    /// coalesced envelope back into individual requests.
    pub env_sub_header: u64,
    /// Receiver-side cost to demultiplex one additional sub-request out of
    /// a coalesced envelope (paid per member beyond the first; the first
    /// member rides the ordinary `rx_base` fast path).
    pub env_unpack: SimTime,
    /// Seed for the fault-injection RNG stream (transient drop decisions).
    /// Forked independently of every other stream, so changing it perturbs
    /// only which messages a [`crate::fault::DropWindow`] claims.
    pub fault_seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            torus_dims: None,
            placement: Placement::Linear,
            hop_latency: SimTime::from_nanos(500),
            link_bytes_per_ns: 6.0,
            tx_overhead: SimTime::from_nanos(1_200),
            inj_bytes_per_ns: 2.4,
            rx_base: SimTime::from_nanos(1_000),
            rx_bytes_per_ns: 2.4,
            stream_contexts: 96,
            stream_miss_penalty: SimTime::from_micros(25),
            shm_latency: SimTime::from_nanos(400),
            env_sub_header: 16,
            env_unpack: SimTime::from_nanos(40),
            fault_seed: 0xFA17,
        }
    }
}

impl NetworkConfig {
    /// A configuration using the full Jaguar torus geometry (25 × 32 × 24)
    /// regardless of node count.
    pub fn jaguar() -> Self {
        NetworkConfig {
            torus_dims: Some([25, 32, 24]),
            ..NetworkConfig::default()
        }
    }

    /// A Blue Gene/P-flavoured machine — the "other petascale platform with
    /// a different physical topology" the paper names as future work (§VIII).
    ///
    /// Relative to the XT5: a denser torus of slower links (425 MB/s per
    /// direction vs multi-GB/s SeaStar), lower per-hop latency (hardware
    /// torus routing), and a hardware-reliable DMA engine — connection
    /// state is not the scarce resource it is under Portals, so the
    /// stream-miss penalty is small. Hot-spot damage on BG/P is therefore
    /// bandwidth/serialisation-driven rather than BEER-driven.
    pub fn bluegene_p() -> Self {
        NetworkConfig {
            torus_dims: Some([32, 32, 40]),
            placement: Placement::Linear,
            hop_latency: SimTime::from_nanos(100),
            link_bytes_per_ns: 0.425,
            tx_overhead: SimTime::from_nanos(2_000),
            inj_bytes_per_ns: 1.0,
            rx_base: SimTime::from_nanos(1_500),
            rx_bytes_per_ns: 1.0,
            stream_contexts: 256,
            stream_miss_penalty: SimTime::from_micros(3),
            shm_latency: SimTime::from_nanos(500),
            env_sub_header: 16,
            env_unpack: SimTime::from_nanos(40),
            fault_seed: 0xFA17,
        }
    }

    /// Wire size of an envelope carrying `payload_bytes` of member requests
    /// split across `subreqs` sub-requests.
    pub fn envelope_bytes(&self, payload_bytes: u64, subreqs: u32) -> u64 {
        payload_bytes + self.env_sub_header * u64::from(subreqs.saturating_sub(1))
    }

    /// Wire serialisation time for `bytes` on a link.
    pub fn link_time(&self, bytes: u64) -> SimTime {
        per_byte_time(bytes, self.link_bytes_per_ns)
    }

    /// Host-to-NIC injection time for `bytes`.
    pub fn inj_time(&self, bytes: u64) -> SimTime {
        per_byte_time(bytes, self.inj_bytes_per_ns)
    }

    /// NIC-to-host drain time for `bytes`.
    pub fn rx_time(&self, bytes: u64) -> SimTime {
        per_byte_time(bytes, self.rx_bytes_per_ns)
    }
}

fn per_byte_time(bytes: u64, bytes_per_ns: f64) -> SimTime {
    assert!(bytes_per_ns > 0.0, "bandwidth must be positive");
    SimTime::from_nanos((bytes as f64 / bytes_per_ns).round() as u64)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = NetworkConfig::default();
        assert!(c.stream_contexts > 0);
        assert!(c.stream_miss_penalty > c.rx_base);
        assert!(c.hop_latency > SimTime::ZERO);
    }

    #[test]
    fn bandwidth_times_scale_linearly() {
        let c = NetworkConfig::default();
        assert_eq!(c.link_time(6_000), SimTime::from_micros(1));
        assert_eq!(c.link_time(0), SimTime::ZERO);
        assert_eq!(c.inj_time(2_400), SimTime::from_micros(1));
        assert_eq!(c.rx_time(4_800), SimTime::from_micros(2));
    }

    #[test]
    fn jaguar_pins_torus() {
        assert_eq!(NetworkConfig::jaguar().torus_dims, Some([25, 32, 24]));
    }

    #[test]
    fn bluegene_p_contrasts_with_xt5() {
        let bgp = NetworkConfig::bluegene_p();
        let xt5 = NetworkConfig::jaguar();
        assert!(
            bgp.link_bytes_per_ns < xt5.link_bytes_per_ns,
            "slower links"
        );
        assert!(bgp.hop_latency < xt5.hop_latency, "faster hops");
        assert!(
            bgp.stream_miss_penalty < xt5.stream_miss_penalty,
            "no BEER-style cliff"
        );
        assert_eq!(bgp.torus_dims, Some([32, 32, 40]));
    }

    #[test]
    fn serde_roundtrip() {
        let c = NetworkConfig::jaguar();
        let json = serde_json_like(&c);
        assert!(json.contains("stream_contexts"));
    }

    // serde_json is not a dependency; exercise Serialize via the debug of a
    // manual visitor-free path instead: this just checks derive compiles and
    // fields stay public.
    fn serde_json_like(c: &NetworkConfig) -> String {
        format!("{c:?} stream_contexts={}", c.stream_contexts)
    }
}
