//! The physical 3-D torus interconnect.
//!
//! Jaguar's SeaStar2+ network is a 3-D torus with static dimension-order
//! (X, then Y, then Z) routing and wraparound links. [`Torus3`] reproduces
//! that geometry: it maps physical slots to coordinates, picks the shorter
//! wraparound direction per dimension, and enumerates the directed links a
//! message occupies.

use serde::{Deserialize, Serialize};

/// Direction of a torus link leaving a router.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Towards +X.
    XPlus = 0,
    /// Towards −X.
    XMinus = 1,
    /// Towards +Y.
    YPlus = 2,
    /// Towards −Y.
    YMinus = 3,
    /// Towards +Z.
    ZPlus = 4,
    /// Towards −Z.
    ZMinus = 5,
}

/// Identifier of a directed physical link: `slot * 6 + direction`.
pub type LinkId = u32;

/// A 3-D torus of router slots.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus3 {
    dims: [u32; 3],
}

impl Torus3 {
    /// A torus with the given per-dimension extents.
    ///
    /// # Panics
    /// Panics if any extent is zero or the slot count overflows `u32`.
    pub fn new(dims: [u32; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "torus extents must be >= 1");
        let slots = u64::from(dims[0]) * u64::from(dims[1]) * u64::from(dims[2]);
        assert!(slots <= u64::from(u32::MAX), "torus too large");
        Torus3 { dims }
    }

    /// The Jaguar XT5 partition geometry the paper ran on (25 × 32 × 24).
    pub fn jaguar() -> Self {
        Torus3::new([25, 32, 24])
    }

    /// The smallest near-cubic torus with at least `n` slots.
    pub fn fitting(n: u32) -> Self {
        assert!(n >= 1);
        let mut x = (n as f64).cbrt().ceil() as u32;
        if x == 0 {
            x = 1;
        }
        let rest = n.div_ceil(x);
        let y = (rest as f64).sqrt().ceil() as u32;
        let z = n.div_ceil(x * y.max(1)).max(1);
        Torus3::new([x.max(1), y.max(1), z])
    }

    /// Per-dimension extents.
    pub fn dims(&self) -> [u32; 3] {
        self.dims
    }

    /// Total number of router slots.
    pub fn len(&self) -> u32 {
        self.dims[0] * self.dims[1] * self.dims[2]
    }

    /// True only for the degenerate 1×1×1 torus.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Total number of directed links (six per slot).
    pub fn link_count(&self) -> usize {
        self.len() as usize * 6
    }

    /// Coordinate of a slot.
    pub fn coord_of(&self, slot: u32) -> [u32; 3] {
        assert!(slot < self.len(), "slot {slot} out of range");
        let x = slot % self.dims[0];
        let y = (slot / self.dims[0]) % self.dims[1];
        let z = slot / (self.dims[0] * self.dims[1]);
        [x, y, z]
    }

    /// Slot of a coordinate.
    pub fn slot_of(&self, c: [u32; 3]) -> u32 {
        assert!(
            c[0] < self.dims[0] && c[1] < self.dims[1] && c[2] < self.dims[2],
            "coordinate {c:?} out of range for torus {:?}",
            self.dims
        );
        c[0] + self.dims[0] * (c[1] + self.dims[1] * c[2])
    }

    /// Signed shortest step count along `dim` from `from` to `to`
    /// (wraparound-aware; positive means the `+` direction).
    fn delta(&self, dim: usize, from: u32, to: u32) -> i64 {
        let d = i64::from(self.dims[dim]);
        let fwd = (i64::from(to) - i64::from(from)).rem_euclid(d);
        // Prefer the forward direction on ties, like SeaStar's static tables.
        if fwd <= d - fwd {
            fwd
        } else {
            fwd - d
        }
    }

    /// Minimal hop count between two slots.
    pub fn hop_count(&self, a: u32, b: u32) -> u32 {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        (0..3)
            .map(|d| self.delta(d, ca[d], cb[d]).unsigned_abs() as u32)
            .sum()
    }

    /// The directed links of the dimension-order (X → Y → Z) route from `a`
    /// to `b`, in traversal order, computed lazily with no allocation.
    /// Yields nothing when `a == b`. This is the message-send hot path;
    /// [`Torus3::route_links`] materialises the same sequence for analysis
    /// and tests.
    pub fn route(&self, a: u32, b: u32) -> RouteIter {
        let ca = self.coord_of(a);
        let cb = self.coord_of(b);
        let mut left = [0u32; 3];
        let mut plus = [true; 3];
        for d in 0..3 {
            let step = self.delta(d, ca[d], cb[d]);
            left[d] = step.unsigned_abs() as u32;
            plus[d] = step >= 0;
        }
        RouteIter {
            dims: self.dims,
            strides: [1, self.dims[0], self.dims[0] * self.dims[1]],
            cur: ca,
            slot: a,
            left,
            plus,
            dim: 0,
        }
    }

    /// The directed links of the dimension-order (X → Y → Z) route from `a`
    /// to `b`, in traversal order. Empty when `a == b`.
    pub fn route_links(&self, a: u32, b: u32) -> Vec<LinkId> {
        self.route(a, b).collect()
    }
}

/// Allocation-free iterator over a dimension-order route's directed links
/// (see [`Torus3::route`]). Owns copies of the coordinates, so it borrows
/// nothing — callers can walk the route while mutating link state.
///
/// The wraparound side and step count per dimension are fixed by `delta` at
/// construction (one division each); stepping is pure add/compare with an
/// incrementally maintained slot — this iterator runs once per physical hop
/// of every simulated message.
#[derive(Clone, Debug)]
pub struct RouteIter {
    dims: [u32; 3],
    strides: [u32; 3],
    cur: [u32; 3],
    slot: u32,
    /// Remaining hops per dimension.
    left: [u32; 3],
    /// Chosen side per dimension (`true` = the `+` direction).
    plus: [bool; 3],
    dim: usize,
}

impl Iterator for RouteIter {
    type Item = LinkId;

    fn next(&mut self) -> Option<LinkId> {
        while self.dim < 3 {
            let d = self.dim;
            if self.left[d] == 0 {
                self.dim += 1;
                continue;
            }
            self.left[d] -= 1;
            let link = self.slot * 6;
            let stride = self.strides[d];
            let dir = if self.plus[d] {
                if self.cur[d] + 1 == self.dims[d] {
                    self.cur[d] = 0;
                    self.slot -= stride * (self.dims[d] - 1);
                } else {
                    self.cur[d] += 1;
                    self.slot += stride;
                }
                2 * d as u32 // XPlus / YPlus / ZPlus
            } else {
                if self.cur[d] == 0 {
                    self.cur[d] = self.dims[d] - 1;
                    self.slot += stride * (self.dims[d] - 1);
                } else {
                    self.cur[d] -= 1;
                    self.slot -= stride;
                }
                2 * d as u32 + 1 // XMinus / YMinus / ZMinus
            };
            return Some(link + dir);
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = (self.left[0] + self.left[1] + self.left[2]) as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteIter {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn slot_coord_roundtrip() {
        let t = Torus3::new([4, 3, 2]);
        for slot in 0..t.len() {
            assert_eq!(t.slot_of(t.coord_of(slot)), slot);
        }
        assert_eq!(t.len(), 24);
        assert_eq!(t.link_count(), 144);
    }

    #[test]
    fn hop_count_uses_wraparound() {
        let t = Torus3::new([8, 8, 8]);
        let a = t.slot_of([0, 0, 0]);
        let b = t.slot_of([7, 0, 0]);
        assert_eq!(t.hop_count(a, b), 1); // wrap, not 7 forward hops
        let c = t.slot_of([4, 4, 4]);
        assert_eq!(t.hop_count(a, c), 12);
        assert_eq!(t.hop_count(a, a), 0);
    }

    #[test]
    fn hop_count_is_symmetric() {
        let t = Torus3::new([5, 4, 3]);
        for a in 0..t.len() {
            for b in 0..t.len() {
                assert_eq!(t.hop_count(a, b), t.hop_count(b, a));
            }
        }
    }

    #[test]
    fn route_links_match_hop_count() {
        let t = Torus3::new([5, 4, 3]);
        for a in (0..t.len()).step_by(7) {
            for b in (0..t.len()).step_by(5) {
                let links = t.route_links(a, b);
                assert_eq!(links.len() as u32, t.hop_count(a, b));
                for &l in &links {
                    assert!((l as usize) < t.link_count());
                }
            }
        }
    }

    #[test]
    fn route_is_dimension_ordered() {
        let t = Torus3::new([4, 4, 4]);
        let a = t.slot_of([0, 0, 0]);
        let b = t.slot_of([2, 1, 1]);
        let dirs: Vec<u32> = t.route_links(a, b).iter().map(|l| l % 6).collect();
        // X hops (dir 0/1) strictly before Y (2/3) before Z (4/5).
        let phases: Vec<u32> = dirs.iter().map(|d| d / 2).collect();
        let mut sorted = phases.clone();
        sorted.sort_unstable();
        assert_eq!(phases, sorted);
        assert_eq!(phases, vec![0, 0, 1, 2]);
    }

    #[test]
    fn fitting_covers_population() {
        for n in [1u32, 2, 7, 64, 100, 1024, 19200] {
            let t = Torus3::fitting(n);
            assert!(t.len() >= n, "torus {:?} too small for {n}", t.dims());
        }
    }

    #[test]
    fn jaguar_geometry() {
        let t = Torus3::jaguar();
        assert_eq!(t.dims(), [25, 32, 24]);
        assert_eq!(t.len(), 19200);
    }

    #[test]
    fn first_link_leaves_source() {
        let t = Torus3::new([3, 3, 3]);
        for a in 0..t.len() {
            for b in 0..t.len() {
                if a != b {
                    let links = t.route_links(a, b);
                    assert_eq!(links[0] / 6, a);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_rejects_bad_slot() {
        Torus3::new([2, 2, 2]).coord_of(8);
    }
}
