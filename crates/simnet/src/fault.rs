//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a *schedule*, fixed before the run starts, of
//! everything that will go wrong: nodes that crash (host, CHT thread and
//! NIC all die together) and possibly reboot later, links that degrade or
//! fail outright for a window, network partitions that sever a set of
//! directed node pairs together and heal together, windows of transient
//! message loss, and windows of payload corruption. The plan plus the
//! machine seed fully determine the run — injecting the same plan twice
//! produces byte-identical timelines, so every failure scenario is a
//! reproducible experiment rather than a flake.
//!
//! The plan is interpreted in two places. [`crate::net::Network`] consults
//! it on every send: messages to or from a crashed node, messages whose
//! route crosses a failed link, and messages caught by a drop window are
//! returned as [`crate::net::SendOutcome::Dropped`] instead of a delivery.
//! The runtime layer above (vt-armci) schedules the node-crash instants as
//! events so it can retire the node's processes and steer new routes
//! around it.
//!
//! An **empty** plan costs nothing: the network takes its unfaulted send
//! path and the runtime arms no timers, so a run with `FaultPlan::new()`
//! is event-for-event identical to one built without a plan at all.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A node failure: at `at`, the node's host processes, helper thread and
/// NIC all stop. In-flight messages towards it are lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// Instant of the crash.
    pub at: SimTime,
    /// Logical node that dies.
    pub node: u32,
}

/// What a link fault does while active.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LinkMode {
    /// The link still works but serialises `factor` times slower
    /// (`factor >= 1`).
    Degrade(f64),
    /// The link drops every message whose head reaches it.
    Fail,
}

/// A fault on one directed physical link, identified the same way
/// [`crate::net::Network::top_links`] reports them: torus slot plus
/// direction index `0..6`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Physical torus slot the link leaves from.
    pub slot: u32,
    /// Direction index (`0..6`: ±x, ±y, ±z).
    pub dir: u8,
    /// When the fault begins.
    pub at: SimTime,
    /// When it clears; `None` means it never does.
    pub until: Option<SimTime>,
    /// Degradation or outright failure.
    pub mode: LinkMode,
}

/// A window of transient loss: each message *arriving* inside the window
/// is dropped with the given probability (drawn from the machine's
/// fault RNG stream, so the same seed loses the same messages).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DropWindow {
    /// Start of the lossy window.
    pub from: SimTime,
    /// End of the lossy window (exclusive).
    pub until: SimTime,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

/// A crashed node reboots: at `at`, the node's host, helper thread and
/// NIC come back with cold state. Only valid for a node the plan crashed
/// strictly earlier — the runtime layer revives the node's processes and
/// re-admits it via a grow-back membership epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeRestart {
    /// Instant of the reboot.
    pub at: SimTime,
    /// Logical node that comes back.
    pub node: u32,
}

/// A network partition: every directed `(src, dst)` pair in `cut` is
/// severed together over `[from, until)` and heals together at `until`.
/// Messages whose send instant falls inside the window are lost at the
/// sender's NIC; both endpoints stay alive, which is exactly what makes a
/// partition ambiguous to a crash detector.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionWindow {
    /// Start of the partition.
    pub from: SimTime,
    /// Instant the partition heals (exclusive).
    pub until: SimTime,
    /// Directed logical node pairs severed by the cut.
    pub cut: Vec<(u32, u32)>,
}

impl PartitionWindow {
    /// Whether the cut severs `src -> dst` at time `at`.
    pub fn severs(&self, at: SimTime, src: u32, dst: u32) -> bool {
        at >= self.from && at < self.until && self.cut.contains(&(src, dst))
    }

    /// Whether `node` is an endpoint of any severed pair.
    pub fn involves(&self, node: u32) -> bool {
        self.cut.iter().any(|&(a, b)| a == node || b == node)
    }
}

/// A window of payload corruption: each message *arriving* inside the
/// window has its payload bit-flipped with the given probability (drawn
/// from a dedicated fault RNG stream, so the same seed corrupts the same
/// messages). A corrupt frame is still delivered — detecting it is the
/// runtime's job, via end-to-end envelope checksums.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CorruptWindow {
    /// Start of the corrupting window.
    pub from: SimTime,
    /// End of the corrupting window (exclusive).
    pub until: SimTime,
    /// Per-message corruption probability in `[0, 1]`.
    pub probability: f64,
}

/// A complete, deterministic schedule of injected faults.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Nodes that crash, and when.
    pub node_crashes: Vec<NodeCrash>,
    /// Crashed nodes that reboot, and when.
    pub node_restarts: Vec<NodeRestart>,
    /// Link degradations and failures.
    pub link_faults: Vec<LinkFault>,
    /// Network partitions (severed directed cuts that heal together).
    pub partitions: Vec<PartitionWindow>,
    /// Windows of transient message loss.
    pub drop_windows: Vec<DropWindow>,
    /// Windows of payload corruption.
    pub corrupt_windows: Vec<CorruptWindow>,
}

impl FaultPlan {
    /// An empty plan — nothing fails.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults at all. Empty plans take the
    /// unfaulted fast paths everywhere.
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty()
            && self.node_restarts.is_empty()
            && self.link_faults.is_empty()
            && self.partitions.is_empty()
            && self.drop_windows.is_empty()
            && self.corrupt_windows.is_empty()
    }

    /// Schedules `node` to crash at `at` (builder style).
    pub fn crash_node(mut self, at: SimTime, node: u32) -> Self {
        self.node_crashes.push(NodeCrash { at, node });
        self
    }

    /// Fails the link `slot`/`dir` from `at` until `until` (forever when
    /// `None`).
    pub fn fail_link(mut self, slot: u32, dir: u8, at: SimTime, until: Option<SimTime>) -> Self {
        self.link_faults.push(LinkFault {
            slot,
            dir,
            at,
            until,
            mode: LinkMode::Fail,
        });
        self
    }

    /// Degrades the link `slot`/`dir` by `factor` (≥ 1) from `at` until
    /// `until`.
    pub fn degrade_link(
        mut self,
        slot: u32,
        dir: u8,
        at: SimTime,
        until: Option<SimTime>,
        factor: f64,
    ) -> Self {
        self.link_faults.push(LinkFault {
            slot,
            dir,
            at,
            until,
            mode: LinkMode::Degrade(factor),
        });
        self
    }

    /// Adds a transient-loss window dropping arrivals in `[from, until)`
    /// with probability `p`.
    pub fn drop_window(mut self, from: SimTime, until: SimTime, p: f64) -> Self {
        self.drop_windows.push(DropWindow {
            from,
            until,
            probability: p,
        });
        self
    }

    /// Schedules `node` to reboot at `at` (it must crash strictly
    /// earlier; [`FaultPlan::validate`] rejects orphan restarts).
    pub fn restart_node(mut self, at: SimTime, node: u32) -> Self {
        self.node_restarts.push(NodeRestart { at, node });
        self
    }

    /// Severs every directed pair in `cut` over `[from, until)`, healing
    /// them together at `until`.
    pub fn partition(mut self, from: SimTime, until: SimTime, cut: Vec<(u32, u32)>) -> Self {
        self.partitions.push(PartitionWindow { from, until, cut });
        self
    }

    /// Adds a payload-corruption window flipping bits of arrivals in
    /// `[from, until)` with probability `p`.
    pub fn corrupt_window(mut self, from: SimTime, until: SimTime, p: f64) -> Self {
        self.corrupt_windows.push(CorruptWindow {
            from,
            until,
            probability: p,
        });
        self
    }

    /// All nodes the plan ever crashes, sorted and deduplicated. This is
    /// the dead-set surface static analysis works from: `vt-analyze` feeds
    /// it to the escape-class router to build route-around dependency
    /// edges without replaying the schedule.
    pub fn crashed_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.node_crashes.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// True when the plan kills at least one node *permanently* (a crash
    /// with no matching restart) — the class of fault that only membership
    /// repair (not retry/route-around) can survive when the victim is
    /// escape-critical.
    pub fn has_permanent_crashes(&self) -> bool {
        self.node_crashes
            .iter()
            .any(|c| self.restart_time(c.node).is_none())
    }

    /// The crash instant of `node`, if the plan kills it.
    pub fn crash_time(&self, node: u32) -> Option<SimTime> {
        self.node_crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at)
            .min()
    }

    /// The reboot instant of `node`, if the plan restarts it.
    pub fn restart_time(&self, node: u32) -> Option<SimTime> {
        self.node_restarts
            .iter()
            .filter(|r| r.node == node)
            .map(|r| r.at)
            .min()
    }

    /// The outage window of `node`: its crash instant plus the reboot
    /// instant ending the outage (`None` means it never comes back).
    pub fn outage(&self, node: u32) -> Option<(SimTime, Option<SimTime>)> {
        self.crash_time(node)
            .map(|crash| (crash, self.restart_time(node)))
    }

    /// Checks internal consistency: direction indices in range, degrade
    /// factors ≥ 1, probabilities in `[0, 1]`, windows non-empty, no node
    /// crashing or restarting twice, every restart preceded by a crash of
    /// the same node, and partition cuts non-empty with distinct
    /// endpoints.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let mut crashed = Vec::new();
        for c in &self.node_crashes {
            if crashed.contains(&c.node) {
                return Err(FaultPlanError::DuplicateCrash { node: c.node });
            }
            crashed.push(c.node);
        }
        let mut restarted = Vec::new();
        for r in &self.node_restarts {
            if restarted.contains(&r.node) {
                return Err(FaultPlanError::DuplicateRestart { node: r.node });
            }
            restarted.push(r.node);
            match self.crash_time(r.node) {
                None => return Err(FaultPlanError::RestartWithoutCrash { node: r.node }),
                Some(crash) if r.at <= crash => {
                    return Err(FaultPlanError::RestartBeforeCrash {
                        node: r.node,
                        crash,
                        restart: r.at,
                    });
                }
                Some(_) => {}
            }
        }
        for f in &self.link_faults {
            if f.dir >= 6 {
                return Err(FaultPlanError::LinkDirOutOfRange { dir: f.dir });
            }
            if let Some(until) = f.until {
                if until <= f.at {
                    return Err(FaultPlanError::EmptyWindow {
                        kind: "link fault",
                        from: f.at,
                        until,
                    });
                }
            }
            if let LinkMode::Degrade(factor) = f.mode {
                if factor.is_nan() || factor < 1.0 {
                    return Err(FaultPlanError::BadDegradeFactor { factor });
                }
            }
        }
        for p in &self.partitions {
            if p.until <= p.from {
                return Err(FaultPlanError::EmptyWindow {
                    kind: "partition",
                    from: p.from,
                    until: p.until,
                });
            }
            if p.cut.is_empty() {
                return Err(FaultPlanError::EmptyCut);
            }
            if let Some(&(a, _)) = p.cut.iter().find(|&&(a, b)| a == b) {
                return Err(FaultPlanError::SelfEdgeInCut { node: a });
            }
        }
        for (kind, windows) in [
            (
                "drop",
                self.drop_windows
                    .iter()
                    .map(|w| (w.from, w.until, w.probability))
                    .collect::<Vec<_>>(),
            ),
            (
                "corrupt",
                self.corrupt_windows
                    .iter()
                    .map(|w| (w.from, w.until, w.probability))
                    .collect::<Vec<_>>(),
            ),
        ] {
            for (from, until, probability) in windows {
                if until <= from {
                    return Err(FaultPlanError::EmptyWindow { kind, from, until });
                }
                if !(0.0..=1.0).contains(&probability) {
                    return Err(FaultPlanError::BadProbability { kind, probability });
                }
            }
        }
        Ok(())
    }
}

/// A structural defect in a [`FaultPlan`], reported by
/// [`FaultPlan::validate`]. Typed so CLIs and drivers can fail fast with
/// a precise message instead of silently misbehaving on a malformed
/// schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A node crashes more than once.
    DuplicateCrash {
        /// The doubly-crashed node.
        node: u32,
    },
    /// A node restarts more than once.
    DuplicateRestart {
        /// The doubly-restarted node.
        node: u32,
    },
    /// A restart names a node the plan never crashes.
    RestartWithoutCrash {
        /// The node with an orphan restart.
        node: u32,
    },
    /// A restart does not come strictly after the node's crash.
    RestartBeforeCrash {
        /// The node.
        node: u32,
        /// Its crash instant.
        crash: SimTime,
        /// The offending restart instant.
        restart: SimTime,
    },
    /// A link fault names a direction outside `0..6`.
    LinkDirOutOfRange {
        /// The out-of-range direction index.
        dir: u8,
    },
    /// A degrade factor below 1 (links cannot speed up) or NaN.
    BadDegradeFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A window with `until <= from` (link fault, partition, drop or
    /// corrupt).
    EmptyWindow {
        /// Which schedule the window belongs to.
        kind: &'static str,
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// A drop or corrupt probability outside `[0, 1]`.
    BadProbability {
        /// Which schedule the probability belongs to.
        kind: &'static str,
        /// The offending probability.
        probability: f64,
    },
    /// A partition window with no severed pairs.
    EmptyCut,
    /// A partition cut pair with identical endpoints.
    SelfEdgeInCut {
        /// The node paired with itself.
        node: u32,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::DuplicateCrash { node } => {
                write!(f, "node {node} crashes more than once")
            }
            FaultPlanError::DuplicateRestart { node } => {
                write!(f, "node {node} restarts more than once")
            }
            FaultPlanError::RestartWithoutCrash { node } => {
                write!(f, "restart of node {node} without a preceding crash")
            }
            FaultPlanError::RestartBeforeCrash {
                node,
                crash,
                restart,
            } => write!(
                f,
                "restart of node {node} at {restart:?} does not follow its crash at {crash:?}"
            ),
            FaultPlanError::LinkDirOutOfRange { dir } => {
                write!(f, "link direction {dir} out of range 0..6")
            }
            FaultPlanError::BadDegradeFactor { factor } => {
                write!(f, "degrade factor {factor} must be >= 1")
            }
            FaultPlanError::EmptyWindow { kind, from, until } => {
                write!(f, "{kind} window {from:?}..{until:?} is empty")
            }
            FaultPlanError::BadProbability { kind, probability } => {
                write!(f, "{kind} probability {probability} outside [0, 1]")
            }
            FaultPlanError::EmptyCut => write!(f, "partition window severs no pairs"),
            FaultPlanError::SelfEdgeInCut { node } => {
                write!(f, "partition cut pairs node {node} with itself")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Why a message was lost instead of delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The sending node was already dead.
    SourceDead,
    /// The destination node was dead by the time the payload arrived.
    DestDead,
    /// A failed link on the route swallowed the message.
    LinkDown,
    /// An active partition severed the sender from the destination.
    Partitioned,
    /// A transient-loss window claimed the message.
    Transient,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::SourceDead => "source-dead",
            DropReason::DestDead => "dest-dead",
            DropReason::LinkDown => "link-down",
            DropReason::Partitioned => "partitioned",
            DropReason::Transient => "transient",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().validate().is_ok());
    }

    #[test]
    fn builders_accumulate() {
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(50), 3)
            .fail_link(7, 2, SimTime::ZERO, None)
            .degrade_link(1, 0, SimTime::ZERO, Some(SimTime::from_micros(10)), 4.0)
            .drop_window(SimTime::ZERO, SimTime::from_micros(5), 0.25);
        assert!(!plan.is_empty());
        assert_eq!(plan.node_crashes.len(), 1);
        assert_eq!(plan.link_faults.len(), 2);
        assert_eq!(plan.drop_windows.len(), 1);
        assert!(plan.validate().is_ok());
        assert_eq!(plan.crash_time(3), Some(SimTime::from_micros(50)));
        assert_eq!(plan.crash_time(4), None);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let twice = FaultPlan::new()
            .crash_node(SimTime::ZERO, 1)
            .crash_node(SimTime::from_micros(1), 1);
        assert!(twice.validate().is_err());

        let bad_dir = FaultPlan::new().fail_link(0, 6, SimTime::ZERO, None);
        assert!(bad_dir.validate().is_err());

        let empty_window = FaultPlan::new().fail_link(
            0,
            0,
            SimTime::from_micros(2),
            Some(SimTime::from_micros(2)),
        );
        assert!(empty_window.validate().is_err());

        let speedup = FaultPlan::new().degrade_link(0, 0, SimTime::ZERO, None, 0.5);
        assert!(speedup.validate().is_err());

        let bad_p = FaultPlan::new().drop_window(SimTime::ZERO, SimTime::from_micros(1), 1.5);
        assert!(bad_p.validate().is_err());

        let empty_drop = FaultPlan::new().drop_window(SimTime::from_micros(1), SimTime::ZERO, 0.1);
        assert!(empty_drop.validate().is_err());
    }

    #[test]
    fn restart_builders_and_outage_windows() {
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(50), 3)
            .restart_node(SimTime::from_micros(200), 3);
        assert!(!plan.is_empty());
        assert!(plan.validate().is_ok());
        assert_eq!(plan.restart_time(3), Some(SimTime::from_micros(200)));
        assert_eq!(plan.restart_time(4), None);
        assert_eq!(
            plan.outage(3),
            Some((SimTime::from_micros(50), Some(SimTime::from_micros(200))))
        );
        // A crash that heals is not permanent; one that doesn't is.
        assert!(!plan.has_permanent_crashes());
        let permanent = plan.crash_node(SimTime::ZERO, 7);
        assert!(permanent.has_permanent_crashes());
        assert_eq!(permanent.outage(7), Some((SimTime::ZERO, None)));
    }

    #[test]
    fn validate_rejects_bad_restarts() {
        let orphan = FaultPlan::new().restart_node(SimTime::from_micros(10), 2);
        assert_eq!(
            orphan.validate(),
            Err(FaultPlanError::RestartWithoutCrash { node: 2 })
        );

        let backwards = FaultPlan::new()
            .crash_node(SimTime::from_micros(10), 2)
            .restart_node(SimTime::from_micros(10), 2);
        assert!(matches!(
            backwards.validate(),
            Err(FaultPlanError::RestartBeforeCrash { node: 2, .. })
        ));

        let twice = FaultPlan::new()
            .crash_node(SimTime::ZERO, 2)
            .restart_node(SimTime::from_micros(1), 2)
            .restart_node(SimTime::from_micros(2), 2);
        assert_eq!(
            twice.validate(),
            Err(FaultPlanError::DuplicateRestart { node: 2 })
        );
    }

    #[test]
    fn partition_windows_sever_directed_pairs() {
        let plan = FaultPlan::new().partition(
            SimTime::from_micros(10),
            SimTime::from_micros(20),
            vec![(0, 1), (1, 0), (2, 1)],
        );
        assert!(plan.validate().is_ok());
        let w = &plan.partitions[0];
        assert!(w.severs(SimTime::from_micros(10), 0, 1));
        assert!(w.severs(SimTime::from_micros(19), 2, 1));
        assert!(!w.severs(SimTime::from_micros(20), 0, 1), "heal is exact");
        assert!(!w.severs(SimTime::from_micros(9), 0, 1));
        assert!(
            !w.severs(SimTime::from_micros(15), 1, 2),
            "cuts are directed"
        );
        assert!(w.involves(2));
        assert!(!w.involves(3));
    }

    #[test]
    fn validate_rejects_bad_partitions_and_corrupt_windows() {
        let empty_cut =
            FaultPlan::new().partition(SimTime::ZERO, SimTime::from_micros(1), Vec::new());
        assert_eq!(empty_cut.validate(), Err(FaultPlanError::EmptyCut));

        let self_edge =
            FaultPlan::new().partition(SimTime::ZERO, SimTime::from_micros(1), vec![(3, 3)]);
        assert_eq!(
            self_edge.validate(),
            Err(FaultPlanError::SelfEdgeInCut { node: 3 })
        );

        let inverted = FaultPlan::new().partition(
            SimTime::from_micros(2),
            SimTime::from_micros(1),
            vec![(0, 1)],
        );
        assert!(matches!(
            inverted.validate(),
            Err(FaultPlanError::EmptyWindow {
                kind: "partition",
                ..
            })
        ));

        let bad_p = FaultPlan::new().corrupt_window(SimTime::ZERO, SimTime::from_micros(1), -0.5);
        assert!(matches!(
            bad_p.validate(),
            Err(FaultPlanError::BadProbability {
                kind: "corrupt",
                ..
            })
        ));

        let empty_corrupt =
            FaultPlan::new().corrupt_window(SimTime::from_micros(1), SimTime::from_micros(1), 0.5);
        assert!(matches!(
            empty_corrupt.validate(),
            Err(FaultPlanError::EmptyWindow {
                kind: "corrupt",
                ..
            })
        ));

        let ok = FaultPlan::new().corrupt_window(SimTime::ZERO, SimTime::from_micros(1), 0.5);
        assert!(ok.validate().is_ok());
        assert!(!ok.is_empty());
    }

    #[test]
    fn plan_errors_render_for_operators() {
        let e = FaultPlanError::RestartWithoutCrash { node: 9 };
        assert_eq!(e.to_string(), "restart of node 9 without a preceding crash");
        let p = FaultPlanError::BadProbability {
            kind: "drop",
            probability: 1.5,
        };
        assert_eq!(p.to_string(), "drop probability 1.5 outside [0, 1]");
    }
}
