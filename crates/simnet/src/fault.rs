//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a *schedule*, fixed before the run starts, of
//! everything that will go wrong: nodes that crash (host, CHT thread and
//! NIC all die together), links that degrade or fail outright for a
//! window, and windows of transient message loss. The plan plus the
//! machine seed fully determine the run — injecting the same plan twice
//! produces byte-identical timelines, so every failure scenario is a
//! reproducible experiment rather than a flake.
//!
//! The plan is interpreted in two places. [`crate::net::Network`] consults
//! it on every send: messages to or from a crashed node, messages whose
//! route crosses a failed link, and messages caught by a drop window are
//! returned as [`crate::net::SendOutcome::Dropped`] instead of a delivery.
//! The runtime layer above (vt-armci) schedules the node-crash instants as
//! events so it can retire the node's processes and steer new routes
//! around it.
//!
//! An **empty** plan costs nothing: the network takes its unfaulted send
//! path and the runtime arms no timers, so a run with `FaultPlan::new()`
//! is event-for-event identical to one built without a plan at all.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A node failure: at `at`, the node's host processes, helper thread and
/// NIC all stop. In-flight messages towards it are lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// Instant of the crash.
    pub at: SimTime,
    /// Logical node that dies.
    pub node: u32,
}

/// What a link fault does while active.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum LinkMode {
    /// The link still works but serialises `factor` times slower
    /// (`factor >= 1`).
    Degrade(f64),
    /// The link drops every message whose head reaches it.
    Fail,
}

/// A fault on one directed physical link, identified the same way
/// [`crate::net::Network::top_links`] reports them: torus slot plus
/// direction index `0..6`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFault {
    /// Physical torus slot the link leaves from.
    pub slot: u32,
    /// Direction index (`0..6`: ±x, ±y, ±z).
    pub dir: u8,
    /// When the fault begins.
    pub at: SimTime,
    /// When it clears; `None` means it never does.
    pub until: Option<SimTime>,
    /// Degradation or outright failure.
    pub mode: LinkMode,
}

/// A window of transient loss: each message *arriving* inside the window
/// is dropped with the given probability (drawn from the machine's
/// fault RNG stream, so the same seed loses the same messages).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DropWindow {
    /// Start of the lossy window.
    pub from: SimTime,
    /// End of the lossy window (exclusive).
    pub until: SimTime,
    /// Per-message drop probability in `[0, 1]`.
    pub probability: f64,
}

/// A complete, deterministic schedule of injected faults.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Nodes that crash, and when.
    pub node_crashes: Vec<NodeCrash>,
    /// Link degradations and failures.
    pub link_faults: Vec<LinkFault>,
    /// Windows of transient message loss.
    pub drop_windows: Vec<DropWindow>,
}

impl FaultPlan {
    /// An empty plan — nothing fails.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True when the plan schedules no faults at all. Empty plans take the
    /// unfaulted fast paths everywhere.
    pub fn is_empty(&self) -> bool {
        self.node_crashes.is_empty() && self.link_faults.is_empty() && self.drop_windows.is_empty()
    }

    /// Schedules `node` to crash at `at` (builder style).
    pub fn crash_node(mut self, at: SimTime, node: u32) -> Self {
        self.node_crashes.push(NodeCrash { at, node });
        self
    }

    /// Fails the link `slot`/`dir` from `at` until `until` (forever when
    /// `None`).
    pub fn fail_link(mut self, slot: u32, dir: u8, at: SimTime, until: Option<SimTime>) -> Self {
        self.link_faults.push(LinkFault {
            slot,
            dir,
            at,
            until,
            mode: LinkMode::Fail,
        });
        self
    }

    /// Degrades the link `slot`/`dir` by `factor` (≥ 1) from `at` until
    /// `until`.
    pub fn degrade_link(
        mut self,
        slot: u32,
        dir: u8,
        at: SimTime,
        until: Option<SimTime>,
        factor: f64,
    ) -> Self {
        self.link_faults.push(LinkFault {
            slot,
            dir,
            at,
            until,
            mode: LinkMode::Degrade(factor),
        });
        self
    }

    /// Adds a transient-loss window dropping arrivals in `[from, until)`
    /// with probability `p`.
    pub fn drop_window(mut self, from: SimTime, until: SimTime, p: f64) -> Self {
        self.drop_windows.push(DropWindow {
            from,
            until,
            probability: p,
        });
        self
    }

    /// All nodes the plan ever crashes, sorted and deduplicated. This is
    /// the dead-set surface static analysis works from: `vt-analyze` feeds
    /// it to the escape-class router to build route-around dependency
    /// edges without replaying the schedule.
    pub fn crashed_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.node_crashes.iter().map(|c| c.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// True when the plan kills at least one node permanently — the class
    /// of fault that only membership repair (not retry/route-around) can
    /// survive when the victim is escape-critical.
    pub fn has_permanent_crashes(&self) -> bool {
        !self.node_crashes.is_empty()
    }

    /// The crash instant of `node`, if the plan kills it.
    pub fn crash_time(&self, node: u32) -> Option<SimTime> {
        self.node_crashes
            .iter()
            .filter(|c| c.node == node)
            .map(|c| c.at)
            .min()
    }

    /// Checks internal consistency: direction indices in range, degrade
    /// factors ≥ 1, probabilities in `[0, 1]`, windows non-empty, and no
    /// node crashing twice.
    pub fn validate(&self) -> Result<(), String> {
        let mut crashed = Vec::new();
        for c in &self.node_crashes {
            if crashed.contains(&c.node) {
                return Err(format!("node {} crashes more than once", c.node));
            }
            crashed.push(c.node);
        }
        for f in &self.link_faults {
            if f.dir >= 6 {
                return Err(format!("link direction {} out of range 0..6", f.dir));
            }
            if let Some(until) = f.until {
                if until <= f.at {
                    return Err(format!("link fault window {:?}..{until:?} is empty", f.at));
                }
            }
            if let LinkMode::Degrade(factor) = f.mode {
                if factor.is_nan() || factor < 1.0 {
                    return Err(format!("degrade factor {factor} must be >= 1"));
                }
            }
        }
        for w in &self.drop_windows {
            if w.until <= w.from {
                return Err(format!("drop window {:?}..{:?} is empty", w.from, w.until));
            }
            if !(0.0..=1.0).contains(&w.probability) {
                return Err(format!("drop probability {} outside [0, 1]", w.probability));
            }
        }
        Ok(())
    }
}

/// Why a message was lost instead of delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// The sending node was already dead.
    SourceDead,
    /// The destination node was dead by the time the payload arrived.
    DestDead,
    /// A failed link on the route swallowed the message.
    LinkDown,
    /// A transient-loss window claimed the message.
    Transient,
}

impl std::fmt::Display for DropReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DropReason::SourceDead => "source-dead",
            DropReason::DestDead => "dest-dead",
            DropReason::LinkDown => "link-down",
            DropReason::Transient => "transient",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::new().is_empty());
        assert!(FaultPlan::new().validate().is_ok());
    }

    #[test]
    fn builders_accumulate() {
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(50), 3)
            .fail_link(7, 2, SimTime::ZERO, None)
            .degrade_link(1, 0, SimTime::ZERO, Some(SimTime::from_micros(10)), 4.0)
            .drop_window(SimTime::ZERO, SimTime::from_micros(5), 0.25);
        assert!(!plan.is_empty());
        assert_eq!(plan.node_crashes.len(), 1);
        assert_eq!(plan.link_faults.len(), 2);
        assert_eq!(plan.drop_windows.len(), 1);
        assert!(plan.validate().is_ok());
        assert_eq!(plan.crash_time(3), Some(SimTime::from_micros(50)));
        assert_eq!(plan.crash_time(4), None);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let twice = FaultPlan::new()
            .crash_node(SimTime::ZERO, 1)
            .crash_node(SimTime::from_micros(1), 1);
        assert!(twice.validate().is_err());

        let bad_dir = FaultPlan::new().fail_link(0, 6, SimTime::ZERO, None);
        assert!(bad_dir.validate().is_err());

        let empty_window = FaultPlan::new().fail_link(
            0,
            0,
            SimTime::from_micros(2),
            Some(SimTime::from_micros(2)),
        );
        assert!(empty_window.validate().is_err());

        let speedup = FaultPlan::new().degrade_link(0, 0, SimTime::ZERO, None, 0.5);
        assert!(speedup.validate().is_err());

        let bad_p = FaultPlan::new().drop_window(SimTime::ZERO, SimTime::from_micros(1), 1.5);
        assert!(bad_p.validate().is_err());

        let empty_drop = FaultPlan::new().drop_window(SimTime::from_micros(1), SimTime::ZERO, 0.1);
        assert!(empty_drop.validate().is_err());
    }
}
