//! Deterministic randomness.
//!
//! Every stochastic choice in the simulator flows from a single `u64` seed
//! through [`DetRng`], so a configuration reproduces bit-identically across
//! runs. Independent subsystems take *forked* streams ([`DetRng::fork`]) so
//! adding randomness in one place never perturbs another.
//!
//! The generator is a self-contained xoshiro256++ seeded through the
//! SplitMix64 finaliser (the construction its authors recommend), so the
//! simulator depends on no external RNG crate and its streams are stable
//! across toolchains.

/// A seeded random-number generator with deterministic sub-streams.
pub struct DetRng {
    seed: u64,
    state: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed into xoshiro state with SplitMix64, as the
        // xoshiro reference code does; a zero state is impossible because
        // splitmix64 is a bijection evaluated at four distinct points.
        let mut s = seed;
        let mut state = [0u64; 4];
        for slot in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *slot = splitmix64(s);
        }
        DetRng { seed, state }
    }

    /// The root seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the named sub-stream.
    ///
    /// Forking is a pure function of `(seed, stream)`: it does not consume
    /// state from `self`, so the order in which subsystems fork their
    /// streams cannot change the numbers any of them sees.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(splitmix64(self.seed ^ splitmix64(stream)))
    }

    /// The next raw 64-bit draw (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// A uniform value in `0..bound`, via rejection sampling (no modulo
    /// bias).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// A uniform value in `0..bound` as `usize`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// A random permutation of `0..n` as `u32`s.
    pub fn permutation(&mut self, n: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

/// The SplitMix64 finaliser — a cheap, well-distributed seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64_below(1_000_000), b.u64_below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.u64_below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.u64_below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = DetRng::new(7);
        let mut f1 = root.fork(3);
        let mut f2 = root.fork(5);
        let x1 = f1.u64_below(u64::MAX);
        let x2 = f2.u64_below(u64::MAX);

        let root2 = DetRng::new(7);
        let mut g2 = root2.fork(5);
        let mut g1 = root2.fork(3);
        assert_eq!(g1.u64_below(u64::MAX), x1);
        assert_eq!(g2.u64_below(u64::MAX), x2);
        assert_ne!(x1, x2);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DetRng::new(11);
        let mut p = rng.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            let v = rng.f64_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = DetRng::new(17);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    fn draws_are_well_spread() {
        // A coarse uniformity check: 8 buckets over 8k draws should each
        // hold within 20 % of the expected count.
        let mut rng = DetRng::new(23);
        let mut buckets = [0u32; 8];
        for _ in 0..8192 {
            buckets[rng.index(8)] += 1;
        }
        for &b in &buckets {
            assert!((819..=1229).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).u64_below(0);
    }
}
