//! Deterministic randomness.
//!
//! Every stochastic choice in the simulator flows from a single `u64` seed
//! through [`DetRng`], so a configuration reproduces bit-identically across
//! runs. Independent subsystems take *forked* streams ([`DetRng::fork`]) so
//! adding randomness in one place never perturbs another.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A seeded random-number generator with deterministic sub-streams.
pub struct DetRng {
    seed: u64,
    rng: StdRng,
}

impl DetRng {
    /// Creates a generator from a root seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            seed,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The root seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator for the named sub-stream.
    ///
    /// Forking is a pure function of `(seed, stream)`: it does not consume
    /// state from `self`, so the order in which subsystems fork their
    /// streams cannot change the numbers any of them sees.
    pub fn fork(&self, stream: u64) -> DetRng {
        DetRng::new(splitmix64(self.seed ^ splitmix64(stream)))
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.rng.random_range(0..bound)
    }

    /// A uniform value in `0..bound` as `usize`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// A uniform float in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (hi - lo) * self.f64()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        slice.shuffle(&mut self.rng);
    }

    /// A random permutation of `0..n` as `u32`s.
    pub fn permutation(&mut self, n: u32) -> Vec<u32> {
        let mut v: Vec<u32> = (0..n).collect();
        self.shuffle(&mut v);
        v
    }
}

/// The SplitMix64 finaliser — a cheap, well-distributed seed scrambler.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.u64_below(1_000_000), b.u64_below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..32).map(|_| a.u64_below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.u64_below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = DetRng::new(7);
        let mut f1 = root.fork(3);
        let mut f2 = root.fork(5);
        let x1 = f1.u64_below(u64::MAX);
        let x2 = f2.u64_below(u64::MAX);

        let root2 = DetRng::new(7);
        let mut g2 = root2.fork(5);
        let mut g1 = root2.fork(3);
        assert_eq!(g1.u64_below(u64::MAX), x1);
        assert_eq!(g2.u64_below(u64::MAX), x2);
        assert_ne!(x1, x2);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = DetRng::new(11);
        let mut p = rng.permutation(100);
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = DetRng::new(13);
        for _ in 0..1000 {
            let v = rng.f64_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn index_stays_in_bounds() {
        let mut rng = DetRng::new(17);
        for _ in 0..1000 {
            assert!(rng.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        DetRng::new(0).u64_below(0);
    }
}
