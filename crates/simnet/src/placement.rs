//! Mapping of allocated (logical) nodes onto physical torus slots.
//!
//! On Jaguar, a job's nodes are a subset of the machine and their physical
//! span drives the rank-dependent latency slope visible in the paper's
//! no-contention curves (Figs. 6a/7a: "the distance between a process and
//! Rank 0 in the underlying physical topology ... contributes to the
//! increased \[time\]"). Placement policies let the ablation benches isolate
//! that effect.

use crate::rng::DetRng;
use crate::torus::Torus3;
use serde::{Deserialize, Serialize};

/// How logical nodes are assigned to torus slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Placement {
    /// Logical node `i` occupies slot `i` (row-major through the torus).
    /// Physical distance then grows with rank distance, as in the paper's
    /// measured curves.
    #[default]
    Linear,
    /// Logical node `i` occupies slot `i * stride mod slots` — a strided
    /// scatter that spreads the job across the machine.
    Strided {
        /// Slot stride between consecutive logical nodes (made coprime with
        /// the slot count internally).
        stride: u32,
    },
    /// A seeded random permutation of slots, destroying any rank/distance
    /// correlation.
    Random {
        /// Seed for the permutation (independent of the global run seed).
        seed: u64,
    },
}

/// A concrete, injective logical-node → slot assignment.
#[derive(Clone, Debug)]
pub struct PlacementMap {
    slots: Vec<u32>,
}

impl PlacementMap {
    /// Assigns `n_nodes` logical nodes to slots of `torus` under `policy`.
    ///
    /// # Panics
    /// Panics if the torus has fewer slots than nodes.
    pub fn build(policy: Placement, n_nodes: u32, torus: &Torus3) -> Self {
        let slots_total = torus.len();
        assert!(
            slots_total >= n_nodes,
            "torus has {slots_total} slots for {n_nodes} nodes"
        );
        let slots = match policy {
            Placement::Linear => (0..n_nodes).collect(),
            Placement::Strided { stride } => {
                let stride = coprime_stride(stride.max(1), slots_total);
                (0..n_nodes)
                    .map(|i| ((u64::from(i) * u64::from(stride)) % u64::from(slots_total)) as u32)
                    .collect()
            }
            Placement::Random { seed } => {
                let mut rng = DetRng::new(seed).fork(0x504c_4143); // "PLAC"
                let perm = rng.permutation(slots_total);
                perm[..n_nodes as usize].to_vec()
            }
        };
        PlacementMap { slots }
    }

    /// Physical slot of logical node `node`.
    #[inline]
    pub fn slot(&self, node: u32) -> u32 {
        self.slots[node as usize]
    }

    /// Number of placed nodes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when no nodes are placed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Adjusts `stride` upward until it is coprime with `n`, guaranteeing the
/// strided map is a permutation.
fn coprime_stride(mut stride: u32, n: u32) -> u32 {
    fn gcd(mut a: u32, mut b: u32) -> u32 {
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a
    }
    if n <= 1 {
        return 1;
    }
    while gcd(stride, n) != 1 {
        stride += 1;
    }
    stride
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_injective(map: &PlacementMap, torus: &Torus3) {
        let mut seen = HashSet::new();
        for i in 0..map.len() as u32 {
            let s = map.slot(i);
            assert!(s < torus.len());
            assert!(seen.insert(s), "slot {s} assigned twice");
        }
    }

    #[test]
    fn linear_is_identity() {
        let t = Torus3::new([4, 4, 4]);
        let m = PlacementMap::build(Placement::Linear, 10, &t);
        for i in 0..10 {
            assert_eq!(m.slot(i), i);
        }
        assert_injective(&m, &t);
    }

    #[test]
    fn strided_is_injective_even_with_bad_stride() {
        let t = Torus3::new([4, 4, 4]); // 64 slots
        for stride in [1u32, 2, 4, 8, 16, 63] {
            let m = PlacementMap::build(Placement::Strided { stride }, 64, &t);
            assert_injective(&m, &t);
        }
    }

    #[test]
    fn random_is_injective_and_seeded() {
        let t = Torus3::new([5, 5, 5]);
        let a = PlacementMap::build(Placement::Random { seed: 9 }, 100, &t);
        let b = PlacementMap::build(Placement::Random { seed: 9 }, 100, &t);
        let c = PlacementMap::build(Placement::Random { seed: 10 }, 100, &t);
        assert_injective(&a, &t);
        for i in 0..100 {
            assert_eq!(a.slot(i), b.slot(i));
        }
        assert!((0..100).any(|i| a.slot(i) != c.slot(i)));
    }

    #[test]
    fn random_spreads_distance() {
        // Under random placement, the mean physical distance from node 0 to
        // low-rank nodes matches that to high-rank nodes much more closely
        // than under linear placement.
        let t = Torus3::new([8, 8, 8]);
        let lin = PlacementMap::build(Placement::Linear, 512, &t);
        let rnd = PlacementMap::build(Placement::Random { seed: 1 }, 512, &t);
        let mean_hops = |m: &PlacementMap, range: std::ops::Range<u32>| {
            let sum: u32 = range
                .clone()
                .map(|i| t.hop_count(m.slot(0), m.slot(i)))
                .sum();
            sum as f64 / range.len() as f64
        };
        let lin_gap = (mean_hops(&lin, 1..65) - mean_hops(&lin, 448..512)).abs();
        let rnd_gap = (mean_hops(&rnd, 1..65) - mean_hops(&rnd, 448..512)).abs();
        assert!(
            rnd_gap < lin_gap,
            "random gap {rnd_gap} not tighter than linear gap {lin_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "slots for")]
    fn too_small_torus_panics() {
        let t = Torus3::new([2, 2, 2]);
        PlacementMap::build(Placement::Linear, 9, &t);
    }

    #[test]
    fn coprime_stride_fixes_common_factors() {
        assert_eq!(coprime_stride(4, 64), 5);
        assert_eq!(coprime_stride(3, 64), 3);
        assert_eq!(coprime_stride(7, 1), 1);
    }
}
