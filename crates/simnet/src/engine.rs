//! The discrete-event core: a time-ordered queue with FIFO tie-breaking.
//!
//! Determinism matters more than raw speed here: two events scheduled for the
//! same instant are delivered in scheduling order, so a simulation is a pure
//! function of its configuration and seed.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we pop the *earliest* event;
        // ties break FIFO by sequence number.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use vt_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(3), "late");
/// q.schedule(SimTime::from_micros(1), "early");
/// q.schedule(SimTime::from_micros(1), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.now(), SimTime::from_micros(1));
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — causality violations are always
    /// bugs in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.schedule_in(SimTime::from_nanos(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(15)));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_nanos(15));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(100), "z");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(50), "m");
        assert_eq!(q.pop().unwrap().1, "m");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
