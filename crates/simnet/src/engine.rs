//! The discrete-event core: a time-ordered queue with FIFO tie-breaking.
//!
//! Determinism matters more than raw speed here: two events scheduled for the
//! same instant are delivered in scheduling order, so a simulation is a pure
//! function of its configuration and seed.
//!
//! [`EventQueue`] is a **calendar queue**: the near future is a ring of
//! fixed-width time buckets drained in order, and everything beyond the
//! ring's horizon waits in a conventional binary-heap overflow. Scheduling
//! into the ring is O(1); popping sorts each bucket once when the clock
//! reaches it and then drains it back-to-front. The pop order is *exactly*
//! the `(time, seq)` order of the old pure-heap implementation — that
//! implementation survives as [`BaselineEventQueue`], the reference the
//! differential property test (`tests/event_queue_equivalence.rs`) compares
//! against.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we pop the *earliest* event;
        // ties break FIFO by sequence number.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// One scheduled event inside a calendar bucket.
struct Slot<E> {
    t: u64,
    seq: u64,
    event: E,
}

/// Number of buckets in the calendar ring.
const RING: usize = 4096;
/// Width of one bucket in nanoseconds (a power of two so the bucket index
/// is a shift). The ring spans `RING × WIDTH` ≈ 0.5 ms — wide enough for
/// every per-message protocol latency in the machine model; coarser spans
/// (retransmission timeouts, membership ticks, long compute blocks) live in
/// the overflow heap and migrate in when the clock approaches them.
const WIDTH: u64 = 128;
/// Bitmap words covering the ring (64 buckets per word).
const WORDS: usize = RING / 64;
/// Sentinel for "no bucket is currently being drained".
const NO_BUCKET: usize = usize::MAX;

/// A deterministic future-event list.
///
/// ```
/// use vt_simnet::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_micros(3), "late");
/// q.schedule(SimTime::from_micros(1), "early");
/// q.schedule(SimTime::from_micros(1), "early-second");
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.now(), SimTime::from_micros(1));
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
pub struct EventQueue<E> {
    /// Calendar ring: bucket `i` holds events with
    /// `time / WIDTH == base + i`. Buckets are append-order until the clock
    /// reaches them, then sorted *descending* by `(time, seq)` so draining
    /// pops earliest-first off the back in O(1).
    buckets: Vec<Vec<Slot<E>>>,
    /// Occupancy bitmap over the ring plus a one-word summary, so the next
    /// non-empty bucket is found in O(1) regardless of sparsity.
    occ: [u64; WORDS],
    occ_sum: u64,
    /// `base * WIDTH` is the time of bucket 0; the ring covers
    /// `[base * WIDTH, (base + RING) * WIDTH)`.
    base: u64,
    /// Scan floor: no bucket below `cur` is occupied.
    cur: usize,
    /// The bucket currently being drained (sorted descending), or
    /// [`NO_BUCKET`].
    drain: usize,
    /// Events resident in the ring.
    ring_len: usize,
    /// Events at or beyond the ring horizon, in the legacy heap order.
    overflow: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..RING).map(|_| Vec::new()).collect(),
            occ: [0; WORDS],
            occ_sum: 0,
            base: 0,
            cur: 0,
            drain: NO_BUCKET,
            ring_len: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past — causality violations are always
    /// bugs in the caller.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        if self.ring_len == 0 && self.overflow.is_empty() {
            // Empty queue: re-anchor the ring at the clock so the new event
            // lands as close to bucket 0 as possible.
            self.base = self.now.as_nanos() / WIDTH;
            self.cur = 0;
            self.drain = NO_BUCKET;
        }
        let t = at.as_nanos();
        let vb = t / WIDTH;
        if vb >= self.base + RING as u64 {
            self.overflow.push(Entry { at, seq, event });
            return;
        }
        // `at >= now` and the ring is anchored at or below `now`'s bucket,
        // so the index cannot underflow.
        let idx = (vb - self.base) as usize;
        let slot = Slot { t, seq, event };
        if idx == self.drain {
            // The clock is inside this bucket and it is sorted descending;
            // keep it sorted. The new seq is larger than every resident one,
            // so the slot goes directly after the strictly-later times.
            let pos = self.buckets[idx].partition_point(|s| s.t > t);
            self.buckets[idx].insert(pos, slot);
        } else {
            self.buckets[idx].push(slot);
        }
        self.occ[idx / 64] |= 1 << (idx % 64);
        self.occ_sum |= 1 << (idx / 64);
        self.ring_len += 1;
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// First occupied bucket at or after `from`, if any.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= RING {
            return None;
        }
        let (w0, b0) = (from / 64, from % 64);
        let masked = self.occ[w0] & (u64::MAX << b0);
        if masked != 0 {
            return Some(w0 * 64 + masked.trailing_zeros() as usize);
        }
        let sum = self.occ_sum & (u64::MAX << w0) & !(1 << w0);
        if sum == 0 {
            return None;
        }
        let w = sum.trailing_zeros() as usize;
        Some(w * 64 + self.occ[w].trailing_zeros() as usize)
    }

    /// Moves every overflow event inside the ring horizon into the ring,
    /// re-anchoring the ring at the earliest pending event. Only called
    /// with an empty ring and a non-empty overflow.
    fn migrate(&mut self) {
        debug_assert_eq!(self.ring_len, 0);
        let Some(head) = self.overflow.peek() else {
            return;
        };
        self.base = head.at.as_nanos() / WIDTH;
        self.cur = 0;
        self.drain = NO_BUCKET;
        let end = (self.base + RING as u64) * WIDTH;
        while let Some(head) = self.overflow.peek() {
            if head.at.as_nanos() >= end {
                break;
            }
            // Pop order is (time, seq) ascending; the bucket re-sorts on
            // first drain, so plain pushes preserve the total order.
            #[allow(clippy::expect_used)] // peek above proves non-empty
            let e = self.overflow.pop().expect("peeked entry");
            let t = e.at.as_nanos();
            let idx = (t / WIDTH - self.base) as usize;
            self.buckets[idx].push(Slot {
                t,
                seq: e.seq,
                event: e.event,
            });
            self.occ[idx / 64] |= 1 << (idx % 64);
            self.occ_sum |= 1 << (idx / 64);
            self.ring_len += 1;
        }
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.ring_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.migrate();
        }
        #[allow(clippy::expect_used)] // ring_len > 0 guarantees a bucket
        let idx = self.next_occupied(self.cur).expect("occupied bucket");
        self.cur = idx;
        if self.drain != idx {
            // First contact with this bucket: sort it descending so the
            // earliest (time, seq) sits at the back.
            self.buckets[idx].sort_unstable_by_key(|s| std::cmp::Reverse((s.t, s.seq)));
            self.drain = idx;
        }
        #[allow(clippy::expect_used)] // occupancy bit proves non-empty
        let slot = self.buckets[idx].pop().expect("occupied bucket slot");
        if self.buckets[idx].is_empty() {
            self.occ[idx / 64] &= !(1 << (idx % 64));
            if self.occ[idx / 64] == 0 {
                self.occ_sum &= !(1 << (idx / 64));
            }
            self.drain = NO_BUCKET;
        }
        self.ring_len -= 1;
        let at = SimTime::from_nanos(slot.t);
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        Some((at, slot.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.ring_len == 0 {
            return self.overflow.peek().map(|e| e.at);
        }
        let idx = self.next_occupied(self.cur)?;
        let b = &self.buckets[idx];
        if self.drain == idx {
            return b.last().map(|s| SimTime::from_nanos(s.t));
        }
        b.iter().map(|s| SimTime::from_nanos(s.t)).min()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.ring_len + self.overflow.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

/// The original pure-`BinaryHeap` future-event list, kept as the ordering
/// oracle for [`EventQueue`]: the differential property test drives both
/// with identical schedule/pop interleavings and asserts identical pop
/// sequences. Not used by the simulator itself.
pub struct BaselineEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
    processed: u64,
}

impl<E> Default for BaselineEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BaselineEventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        BaselineEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at:?} < now {:?}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        self.processed += 1;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is drained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.schedule_in(SimTime::from_nanos(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(15)));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, SimTime::from_nanos(15));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(1), "a");
        q.schedule(SimTime::from_nanos(100), "z");
        assert_eq!(q.pop().unwrap().1, "a");
        q.schedule(SimTime::from_nanos(50), "m");
        assert_eq!(q.pop().unwrap().1, "m");
        assert_eq!(q.pop().unwrap().1, "z");
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn far_future_events_cross_the_ring_horizon() {
        // Events far beyond the ring live in the overflow heap and migrate
        // in when the clock approaches; order and FIFO ties survive.
        let mut q = EventQueue::new();
        let far = SimTime::from_millis(50);
        q.schedule(far, 1);
        q.schedule(far, 2);
        q.schedule(SimTime::from_nanos(3), 0);
        q.schedule(far + SimTime::from_millis(50), 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert_eq!(q.now(), SimTime::from_millis(100));
    }

    #[test]
    fn same_instant_burst_into_the_drained_bucket_stays_fifo() {
        // Schedule into the very bucket being drained, at the current
        // instant: the new event must pop after everything already pending
        // at that time (FIFO by seq).
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(7);
        q.schedule(t, 0);
        q.schedule(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.schedule(t, 2); // same instant, mid-drain
        q.schedule(t + SimTime::from_nanos(1), 3); // same bucket, later time
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn baseline_queue_matches_on_a_mixed_schedule() {
        let mut a = EventQueue::new();
        let mut b = BaselineEventQueue::new();
        let times = [5u64, 5, 200_000, 13, 5, 700_000_000, 13, 42];
        for (i, &t) in times.iter().enumerate() {
            a.schedule(SimTime::from_nanos(t), i);
            b.schedule(SimTime::from_nanos(t), i);
        }
        loop {
            let (x, y) = (a.pop(), b.pop());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        assert_eq!(a.processed(), b.processed());
    }
}
