//! Simulated time.
//!
//! [`SimTime`] is a nanosecond count used both for instants (time since the
//! start of the simulation) and for durations; keeping one type makes the
//! reservation arithmetic (`max(now, busy_until) + cost`) direct. The
//! convention is documented per field/parameter where it matters.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in simulated time, or a span of it, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the simulation / a zero-length span.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs from a fractional microsecond count (rounded to the
    /// nearest nanosecond; negative values clamp to zero).
    pub fn from_micros_f64(us: f64) -> Self {
        SimTime((us * 1_000.0).round().max(0.0) as u64)
    }

    /// Nanoseconds since simulation start (or span length).
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds as a float (the unit of the paper's figures).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds as a float.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// `self - other`, clamping at zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    // Clock overflow/underflow is unrecoverable model corruption; the
    // checked-arithmetic panics here are deliberate and documented.
    #[allow(clippy::expect_used)]
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulated time overflowed u64 nanoseconds"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    // Invariant: simulated time is monotone — subtracting a later time
    // from an earlier one is an event-ordering bug; crash loudly rather
    // than wrap into a bogus 585-year interval.
    #[allow(clippy::expect_used)]
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulated time went negative"),
        )
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    // Invariant: u64 nanoseconds cover ~585 years of simulated time; an
    // overflowing multiply is a config/workload bug worth a loud crash.
    #[allow(clippy::expect_used)]
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_mul(rhs)
                .expect("simulated time overflowed u64 nanoseconds"),
        )
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_micros(7).as_micros_f64(), 7.0);
        assert_eq!(SimTime::from_micros_f64(1.5).as_nanos(), 1_500);
        assert_eq!(SimTime::from_micros_f64(-3.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!(a + b, SimTime::from_micros(14));
        assert_eq!(a - b, SimTime::from_micros(6));
        assert_eq!(b * 3, SimTime::from_micros(12));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_accumulates() {
        let total: SimTime = (1..=4).map(SimTime::from_micros).sum();
        assert_eq!(total, SimTime::from_micros(10));
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
