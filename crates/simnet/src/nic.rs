//! The per-node network interface.
//!
//! Models the two SeaStar properties the paper's contention story rests on:
//!
//! * **Serial engines** — one transmit and one receive DMA engine per node;
//!   concurrent messages queue behind their busy horizons.
//! * **Bounded message-stream state** — Portals is connectionless but the
//!   NIC keeps per-source stream contexts in a small fast table
//!   (`256 simultaneous message streams` on SeaStar2+, of which a hot
//!   subset is resident). A message whose source misses the table takes the
//!   BEER slow path (end-to-end reliability, flow-control handshake) and
//!   pays a fixed penalty. Hundreds of interleaved sources — exactly the FCG
//!   hot-spot pattern — thrash the table; the virtual topologies bound the
//!   distinct-source count per node and stay on the fast path.

use crate::time::SimTime;

/// Linked-list terminator for [`StreamTable`] nodes.
const NIL: u32 = u32::MAX;

/// One resident stream context in the LRU order.
#[derive(Clone, Debug)]
struct StreamNode {
    src: u32,
    prev: u32,
    next: u32,
}

/// A least-recently-used set of message-stream sources with bounded
/// capacity.
///
/// Implemented as a slab-backed doubly-linked recency list with a
/// direct-indexed source lookup, so a `touch` is O(1) instead of an O(cap)
/// scan — the hot-spot receiver touches this table on every one of its
/// thousands of arrivals. Semantics are exactly the classic LRU the linear
/// version had: a hit moves the source to most-recent, a miss evicts the
/// least-recent entry when full. The lookup array grows lazily to the
/// largest source id that has ever touched this NIC (sources are node ids,
/// so it stays a few KiB even at Jaguar scale).
#[derive(Clone, Debug)]
pub struct StreamTable {
    cap: usize,
    /// Slab of resident contexts; `index[src]` is the slab slot of `src`,
    /// or [`NIL`] when not resident.
    nodes: Vec<StreamNode>,
    index: Vec<u32>,
    /// Least recent at `head`, most recent at `tail`.
    head: u32,
    tail: u32,
}

impl StreamTable {
    /// A table holding at most `cap` concurrent source contexts.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        StreamTable {
            cap,
            nodes: Vec::with_capacity(cap),
            index: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Detaches slab node `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let n = &self.nodes[i as usize];
            (n.prev, n.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
    }

    /// Appends slab node `i` as the most recent entry.
    fn push_tail(&mut self, i: u32) {
        let tail = self.tail;
        {
            let n = &mut self.nodes[i as usize];
            n.prev = tail;
            n.next = NIL;
        }
        match tail {
            NIL => self.head = i,
            t => self.nodes[t as usize].next = i,
        }
        self.tail = i;
    }

    /// Registers traffic from `src`; returns `true` on a fast-path hit and
    /// `false` when the source had to be (re-)established, evicting the
    /// least recently used entry if the table is full.
    pub fn touch(&mut self, src: u32) -> bool {
        let s = src as usize;
        if s >= self.index.len() {
            self.index.resize(s + 1, NIL);
        }
        let i = self.index[s];
        if i != NIL {
            if self.tail != i {
                self.unlink(i);
                self.push_tail(i);
            }
            return true;
        }
        let slot = if self.nodes.len() == self.cap {
            // Evict the least recently used context and reuse its slab slot.
            let victim = self.head;
            self.unlink(victim);
            let old = self.nodes[victim as usize].src;
            self.index[old as usize] = NIL;
            self.nodes[victim as usize].src = src;
            victim
        } else {
            self.nodes.push(StreamNode {
                src,
                prev: NIL,
                next: NIL,
            });
            (self.nodes.len() - 1) as u32
        };
        self.push_tail(slot);
        self.index[s] = slot;
        false
    }

    /// Number of resident stream contexts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no stream context is resident.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Capacity of the fast table.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Per-node NIC state: serial TX and RX engines plus the stream table.
#[derive(Clone, Debug)]
pub struct Nic {
    tx_busy: SimTime,
    rx_busy: SimTime,
    streams: StreamTable,
    stream_misses: u64,
    rx_messages: u64,
    tx_messages: u64,
    dead: bool,
}

impl Nic {
    /// A NIC whose stream table holds `stream_contexts` sources.
    pub fn new(stream_contexts: usize) -> Self {
        Nic {
            tx_busy: SimTime::ZERO,
            rx_busy: SimTime::ZERO,
            streams: StreamTable::new(stream_contexts),
            stream_misses: 0,
            rx_messages: 0,
            tx_messages: 0,
            dead: false,
        }
    }

    /// Marks the NIC as dead (its node crashed). A dead NIC neither
    /// transmits nor receives; the network drops traffic touching it.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Clears the dead flag (its node rebooted). The stream table, engine
    /// horizons and counters deliberately survive: the simulated hardware
    /// epoch is the network's, and the time-based drop decisions — not
    /// this flag — decide what a dead node loses.
    pub fn revive(&mut self) {
        self.dead = false;
    }

    /// Whether the NIC's node has crashed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Reserves the transmit engine from `earliest` for `overhead` software
    /// cost plus `injection` serialisation; returns the time the message
    /// enters the network.
    pub fn reserve_tx(
        &mut self,
        earliest: SimTime,
        overhead: SimTime,
        injection: SimTime,
    ) -> SimTime {
        let start = earliest.max(self.tx_busy);
        let done = start + overhead + injection;
        self.tx_busy = done;
        self.tx_messages += 1;
        done
    }

    /// Reserves the receive engine for a message from node `src` arriving at
    /// `arrival`; returns the delivery completion time and whether the
    /// stream table missed.
    ///
    /// `base` is the per-message fast-path cost, `drain` the DMA
    /// serialisation for the payload and `miss_penalty` the BEER slow path
    /// charged when `src` is not resident.
    pub fn reserve_rx(
        &mut self,
        src: u32,
        arrival: SimTime,
        base: SimTime,
        drain: SimTime,
        miss_penalty: SimTime,
    ) -> (SimTime, bool) {
        let hit = self.streams.touch(src);
        let mut cost = base + drain;
        if !hit {
            cost += miss_penalty;
            self.stream_misses += 1;
        }
        let start = arrival.max(self.rx_busy);
        let done = start + cost;
        self.rx_busy = done;
        self.rx_messages += 1;
        (done, !hit)
    }

    /// Reserves the receive engine for a coalesced envelope from node
    /// `src`; returns the delivery completion time and whether the stream
    /// table missed.
    ///
    /// One envelope is one message to the NIC: a single stream-table touch,
    /// one `base` fast-path charge, one `drain` for the combined payload,
    /// plus `unpack_total` demultiplexing (the per-member unpack cost summed
    /// over every member beyond the first). This is where coalescing wins at
    /// a hot receiver — `n` singles would pay `base` (and risk a BEER miss)
    /// `n` times.
    pub fn reserve_rx_envelope(
        &mut self,
        src: u32,
        arrival: SimTime,
        base: SimTime,
        drain: SimTime,
        miss_penalty: SimTime,
        unpack_total: SimTime,
    ) -> (SimTime, bool) {
        let hit = self.streams.touch(src);
        let mut cost = base + drain + unpack_total;
        if !hit {
            cost += miss_penalty;
            self.stream_misses += 1;
        }
        let start = arrival.max(self.rx_busy);
        let done = start + cost;
        self.rx_busy = done;
        self.rx_messages += 1;
        (done, !hit)
    }

    /// Time at which the transmit engine frees up.
    pub fn tx_busy_until(&self) -> SimTime {
        self.tx_busy
    }

    /// Time at which the receive engine frees up.
    pub fn rx_busy_until(&self) -> SimTime {
        self.rx_busy
    }

    /// Number of BEER slow-path events taken so far.
    pub fn stream_misses(&self) -> u64 {
        self.stream_misses
    }

    /// Messages received.
    pub fn rx_messages(&self) -> u64 {
        self.rx_messages
    }

    /// Messages transmitted.
    pub fn tx_messages(&self) -> u64 {
        self.tx_messages
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stream_table_hits_recent_sources() {
        let mut t = StreamTable::new(2);
        assert!(!t.touch(1)); // cold
        assert!(t.touch(1)); // hot
        assert!(!t.touch(2));
        assert!(t.touch(1)); // still resident
        assert!(!t.touch(3)); // evicts 2 (LRU)
        assert!(!t.touch(2)); // 2 was evicted
        assert_eq!(t.len(), 2);
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn interleaved_sources_beyond_capacity_always_miss() {
        // The FCG hot-spot pathology: more interleaved senders than
        // contexts means every message misses.
        let mut t = StreamTable::new(4);
        let mut misses = 0;
        for round in 0..10 {
            for src in 0..5u32 {
                if !t.touch(src) && round > 0 {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 45); // every touch after warm-up misses
    }

    #[test]
    fn sources_within_capacity_never_miss_after_warmup() {
        let mut t = StreamTable::new(8);
        for src in 0..8u32 {
            t.touch(src);
        }
        for _ in 0..10 {
            for src in 0..8u32 {
                assert!(t.touch(src));
            }
        }
    }

    #[test]
    fn lru_table_matches_linear_reference() {
        // Differential check against the obvious Vec-based LRU the table
        // replaced: same hits, same evictions, on an adversarial access
        // pattern mixing residents, thrash and re-touches.
        let mut table = StreamTable::new(8);
        let mut reference: Vec<u32> = Vec::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for step in 0..4_000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Alternate a hot working set with a cold sweep.
            let src = if step % 3 == 0 {
                (x % 6) as u32
            } else {
                (x % 20) as u32
            };
            let expected = if let Some(pos) = reference.iter().position(|&e| e == src) {
                reference.remove(pos);
                reference.push(src);
                true
            } else {
                if reference.len() == 8 {
                    reference.remove(0);
                }
                reference.push(src);
                false
            };
            assert_eq!(table.touch(src), expected, "step {step}, src {src}");
            assert_eq!(table.len(), reference.len());
        }
    }

    #[test]
    fn nic_starts_alive_and_stays_dead_once_killed() {
        let mut nic = Nic::new(4);
        assert!(!nic.is_dead());
        nic.kill();
        assert!(nic.is_dead());
        nic.kill();
        assert!(nic.is_dead());
    }

    #[test]
    fn tx_serialises_messages() {
        let mut nic = Nic::new(8);
        let a = nic.reserve_tx(
            SimTime::ZERO,
            SimTime::from_nanos(10),
            SimTime::from_nanos(90),
        );
        let b = nic.reserve_tx(
            SimTime::ZERO,
            SimTime::from_nanos(10),
            SimTime::from_nanos(90),
        );
        assert_eq!(a, SimTime::from_nanos(100));
        assert_eq!(b, SimTime::from_nanos(200));
        assert_eq!(nic.tx_messages(), 2);
    }

    #[test]
    fn rx_charges_miss_penalty_once_per_eviction() {
        let mut nic = Nic::new(1);
        let (done, missed) = nic.reserve_rx(
            7,
            SimTime::ZERO,
            SimTime::from_nanos(5),
            SimTime::from_nanos(5),
            SimTime::from_nanos(100),
        );
        assert!(missed);
        assert_eq!(done, SimTime::from_nanos(110));
        let (done, missed) = nic.reserve_rx(
            7,
            done,
            SimTime::from_nanos(5),
            SimTime::from_nanos(5),
            SimTime::from_nanos(100),
        );
        assert!(!missed);
        assert_eq!(done, SimTime::from_nanos(120));
        assert_eq!(nic.stream_misses(), 1);
        assert_eq!(nic.rx_messages(), 2);
    }

    #[test]
    fn rx_envelope_charges_base_once_and_unpack_per_extra_member() {
        let mut nic = Nic::new(8);
        nic.reserve_rx_envelope(
            3,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            SimTime::from_nanos(50),
            SimTime::ZERO,
            // 4 members: 3 × unpack 10
            SimTime::from_nanos(30),
        );
        // base 100 + drain 50 + 3 × unpack 10
        assert_eq!(nic.rx_busy_until(), SimTime::from_nanos(180));
        assert_eq!(nic.rx_messages(), 1);
    }

    #[test]
    fn rx_queues_behind_busy_engine() {
        let mut nic = Nic::new(8);
        nic.reserve_rx(
            1,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        let (done, _) = nic.reserve_rx(
            2,
            SimTime::from_nanos(10),
            SimTime::from_nanos(100),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        assert_eq!(done, SimTime::from_nanos(200));
        assert_eq!(nic.rx_busy_until(), done);
    }
}
