//! The per-node network interface.
//!
//! Models the two SeaStar properties the paper's contention story rests on:
//!
//! * **Serial engines** — one transmit and one receive DMA engine per node;
//!   concurrent messages queue behind their busy horizons.
//! * **Bounded message-stream state** — Portals is connectionless but the
//!   NIC keeps per-source stream contexts in a small fast table
//!   (`256 simultaneous message streams` on SeaStar2+, of which a hot
//!   subset is resident). A message whose source misses the table takes the
//!   BEER slow path (end-to-end reliability, flow-control handshake) and
//!   pays a fixed penalty. Hundreds of interleaved sources — exactly the FCG
//!   hot-spot pattern — thrash the table; the virtual topologies bound the
//!   distinct-source count per node and stay on the fast path.

use crate::time::SimTime;

/// A least-recently-used set of message-stream sources with bounded
/// capacity.
#[derive(Clone, Debug)]
pub struct StreamTable {
    cap: usize,
    /// Most recent at the back. Linear scan: capacities are small (≤ a few
    /// hundred) and this is simple and allocation-free in steady state.
    entries: Vec<u32>,
}

impl StreamTable {
    /// A table holding at most `cap` concurrent source contexts.
    pub fn new(cap: usize) -> Self {
        StreamTable {
            cap: cap.max(1),
            entries: Vec::with_capacity(cap.max(1)),
        }
    }

    /// Registers traffic from `src`; returns `true` on a fast-path hit and
    /// `false` when the source had to be (re-)established, evicting the
    /// least recently used entry if the table is full.
    pub fn touch(&mut self, src: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|&e| e == src) {
            self.entries.remove(pos);
            self.entries.push(src);
            return true;
        }
        if self.entries.len() == self.cap {
            self.entries.remove(0);
        }
        self.entries.push(src);
        false
    }

    /// Number of resident stream contexts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no stream context is resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Capacity of the fast table.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Per-node NIC state: serial TX and RX engines plus the stream table.
#[derive(Clone, Debug)]
pub struct Nic {
    tx_busy: SimTime,
    rx_busy: SimTime,
    streams: StreamTable,
    stream_misses: u64,
    rx_messages: u64,
    tx_messages: u64,
    dead: bool,
}

impl Nic {
    /// A NIC whose stream table holds `stream_contexts` sources.
    pub fn new(stream_contexts: usize) -> Self {
        Nic {
            tx_busy: SimTime::ZERO,
            rx_busy: SimTime::ZERO,
            streams: StreamTable::new(stream_contexts),
            stream_misses: 0,
            rx_messages: 0,
            tx_messages: 0,
            dead: false,
        }
    }

    /// Marks the NIC as dead (its node crashed). A dead NIC neither
    /// transmits nor receives; the network drops traffic touching it.
    pub fn kill(&mut self) {
        self.dead = true;
    }

    /// Whether the NIC's node has crashed.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Reserves the transmit engine from `earliest` for `overhead` software
    /// cost plus `injection` serialisation; returns the time the message
    /// enters the network.
    pub fn reserve_tx(
        &mut self,
        earliest: SimTime,
        overhead: SimTime,
        injection: SimTime,
    ) -> SimTime {
        let start = earliest.max(self.tx_busy);
        let done = start + overhead + injection;
        self.tx_busy = done;
        self.tx_messages += 1;
        done
    }

    /// Reserves the receive engine for a message from node `src` arriving at
    /// `arrival`; returns the delivery completion time and whether the
    /// stream table missed.
    ///
    /// `base` is the per-message fast-path cost, `drain` the DMA
    /// serialisation for the payload and `miss_penalty` the BEER slow path
    /// charged when `src` is not resident.
    pub fn reserve_rx(
        &mut self,
        src: u32,
        arrival: SimTime,
        base: SimTime,
        drain: SimTime,
        miss_penalty: SimTime,
    ) -> (SimTime, bool) {
        let hit = self.streams.touch(src);
        let mut cost = base + drain;
        if !hit {
            cost += miss_penalty;
            self.stream_misses += 1;
        }
        let start = arrival.max(self.rx_busy);
        let done = start + cost;
        self.rx_busy = done;
        self.rx_messages += 1;
        (done, !hit)
    }

    /// Reserves the receive engine for a coalesced envelope from node
    /// `src`; returns the delivery completion time and whether the stream
    /// table missed.
    ///
    /// One envelope is one message to the NIC: a single stream-table touch,
    /// one `base` fast-path charge, one `drain` for the combined payload,
    /// plus `unpack_total` demultiplexing (the per-member unpack cost summed
    /// over every member beyond the first). This is where coalescing wins at
    /// a hot receiver — `n` singles would pay `base` (and risk a BEER miss)
    /// `n` times.
    pub fn reserve_rx_envelope(
        &mut self,
        src: u32,
        arrival: SimTime,
        base: SimTime,
        drain: SimTime,
        miss_penalty: SimTime,
        unpack_total: SimTime,
    ) -> (SimTime, bool) {
        let hit = self.streams.touch(src);
        let mut cost = base + drain + unpack_total;
        if !hit {
            cost += miss_penalty;
            self.stream_misses += 1;
        }
        let start = arrival.max(self.rx_busy);
        let done = start + cost;
        self.rx_busy = done;
        self.rx_messages += 1;
        (done, !hit)
    }

    /// Time at which the transmit engine frees up.
    pub fn tx_busy_until(&self) -> SimTime {
        self.tx_busy
    }

    /// Time at which the receive engine frees up.
    pub fn rx_busy_until(&self) -> SimTime {
        self.rx_busy
    }

    /// Number of BEER slow-path events taken so far.
    pub fn stream_misses(&self) -> u64 {
        self.stream_misses
    }

    /// Messages received.
    pub fn rx_messages(&self) -> u64 {
        self.rx_messages
    }

    /// Messages transmitted.
    pub fn tx_messages(&self) -> u64 {
        self.tx_messages
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn stream_table_hits_recent_sources() {
        let mut t = StreamTable::new(2);
        assert!(!t.touch(1)); // cold
        assert!(t.touch(1)); // hot
        assert!(!t.touch(2));
        assert!(t.touch(1)); // still resident
        assert!(!t.touch(3)); // evicts 2 (LRU)
        assert!(!t.touch(2)); // 2 was evicted
        assert_eq!(t.len(), 2);
        assert_eq!(t.capacity(), 2);
    }

    #[test]
    fn interleaved_sources_beyond_capacity_always_miss() {
        // The FCG hot-spot pathology: more interleaved senders than
        // contexts means every message misses.
        let mut t = StreamTable::new(4);
        let mut misses = 0;
        for round in 0..10 {
            for src in 0..5u32 {
                if !t.touch(src) && round > 0 {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 45); // every touch after warm-up misses
    }

    #[test]
    fn sources_within_capacity_never_miss_after_warmup() {
        let mut t = StreamTable::new(8);
        for src in 0..8u32 {
            t.touch(src);
        }
        for _ in 0..10 {
            for src in 0..8u32 {
                assert!(t.touch(src));
            }
        }
    }

    #[test]
    fn nic_starts_alive_and_stays_dead_once_killed() {
        let mut nic = Nic::new(4);
        assert!(!nic.is_dead());
        nic.kill();
        assert!(nic.is_dead());
        nic.kill();
        assert!(nic.is_dead());
    }

    #[test]
    fn tx_serialises_messages() {
        let mut nic = Nic::new(8);
        let a = nic.reserve_tx(
            SimTime::ZERO,
            SimTime::from_nanos(10),
            SimTime::from_nanos(90),
        );
        let b = nic.reserve_tx(
            SimTime::ZERO,
            SimTime::from_nanos(10),
            SimTime::from_nanos(90),
        );
        assert_eq!(a, SimTime::from_nanos(100));
        assert_eq!(b, SimTime::from_nanos(200));
        assert_eq!(nic.tx_messages(), 2);
    }

    #[test]
    fn rx_charges_miss_penalty_once_per_eviction() {
        let mut nic = Nic::new(1);
        let (done, missed) = nic.reserve_rx(
            7,
            SimTime::ZERO,
            SimTime::from_nanos(5),
            SimTime::from_nanos(5),
            SimTime::from_nanos(100),
        );
        assert!(missed);
        assert_eq!(done, SimTime::from_nanos(110));
        let (done, missed) = nic.reserve_rx(
            7,
            done,
            SimTime::from_nanos(5),
            SimTime::from_nanos(5),
            SimTime::from_nanos(100),
        );
        assert!(!missed);
        assert_eq!(done, SimTime::from_nanos(120));
        assert_eq!(nic.stream_misses(), 1);
        assert_eq!(nic.rx_messages(), 2);
    }

    #[test]
    fn rx_envelope_charges_base_once_and_unpack_per_extra_member() {
        let mut nic = Nic::new(8);
        nic.reserve_rx_envelope(
            3,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            SimTime::from_nanos(50),
            SimTime::ZERO,
            // 4 members: 3 × unpack 10
            SimTime::from_nanos(30),
        );
        // base 100 + drain 50 + 3 × unpack 10
        assert_eq!(nic.rx_busy_until(), SimTime::from_nanos(180));
        assert_eq!(nic.rx_messages(), 1);
    }

    #[test]
    fn rx_queues_behind_busy_engine() {
        let mut nic = Nic::new(8);
        nic.reserve_rx(
            1,
            SimTime::ZERO,
            SimTime::from_nanos(100),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        let (done, _) = nic.reserve_rx(
            2,
            SimTime::from_nanos(10),
            SimTime::from_nanos(100),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        assert_eq!(done, SimTime::from_nanos(200));
        assert_eq!(nic.rx_busy_until(), done);
    }
}
