//! Deterministic arrival processes for open-system workloads.
//!
//! Closed workloads enqueue a fixed op list and run to quiescence; an open
//! system instead receives client requests *over time*, at a rate the
//! clients choose, and must degrade gracefully when that rate exceeds
//! capacity. [`ArrivalProcess`] describes the offered-load shape (steady,
//! diurnal, flash crowd) and [`ArrivalGen`] turns it into a concrete,
//! reproducible sequence of arrival instants driven by [`DetRng`].
//!
//! The generator is a *jittered renewal process*: each inter-arrival gap is
//! the current mean gap `1/λ(t)` scaled by a uniform factor in `[0.5, 1.5)`.
//! That keeps the burstiness of a random process without touching any
//! transcendental function — `ln`/`cos` route through libm, whose results
//! differ across C libraries, and these instants are pinned byte-for-byte
//! by golden snapshots. Everything here is integer/rational arithmetic plus
//! IEEE multiply/divide, which is bit-stable across toolchains.

use crate::rng::DetRng;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// The shape of the offered-load curve over time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArrivalKind {
    /// Constant mean rate for the whole run.
    Steady,
    /// A triangle wave between the base rate and `rate × peak` with the
    /// configured period — a compressed day/night cycle.
    Diurnal,
    /// Base rate, then a step to `rate × peak` for `spike_len` starting at
    /// `period`, then back to base — the overload cell.
    FlashCrowd,
}

/// Load phases of a run, used to attribute shed/retry counters to the part
/// of the offered-load curve that caused them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadPhase {
    /// Before the peak (flash crowd) or in the rising half-period (diurnal).
    Base,
    /// Inside the spike (flash crowd) or the falling half-period (diurnal).
    Peak,
    /// After the spike has passed (flash crowd only).
    After,
}

impl ArrivalKind {
    /// Lowercase name for reports and CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Steady => "steady",
            ArrivalKind::Diurnal => "diurnal",
            ArrivalKind::FlashCrowd => "flash-crowd",
        }
    }
}

impl LoadPhase {
    /// Index for per-phase counter arrays (`Base`/`Peak`/`After` = 0/1/2).
    pub fn index(self) -> usize {
        match self {
            LoadPhase::Base => 0,
            LoadPhase::Peak => 1,
            LoadPhase::After => 2,
        }
    }
}

/// A deterministic description of per-client offered load.
///
/// Rates are *per client*: each rank runs its own [`ArrivalGen`] on a forked
/// stream, so the machine-wide offered load is `n_clients × rate` (scaled by
/// the curve). All fields are consulted by every kind; irrelevant ones are
/// simply unused (e.g. `spike_len` under `Steady`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Curve shape.
    pub kind: ArrivalKind,
    /// Base mean arrival rate, requests per second per client. Must be
    /// positive.
    pub rate_per_sec: f64,
    /// Peak multiplier (`≥ 1`): the top of the diurnal wave or the height
    /// of the flash-crowd step, as a multiple of `rate_per_sec`.
    pub peak: f64,
    /// Diurnal period, or the flash-crowd spike start time.
    pub period: SimTime,
    /// Duration of the flash-crowd spike (unused by other kinds).
    pub spike_len: SimTime,
}

impl ArrivalProcess {
    /// A steady process at `rate_per_sec` requests/s per client.
    pub fn steady(rate_per_sec: f64) -> Self {
        ArrivalProcess {
            kind: ArrivalKind::Steady,
            rate_per_sec,
            peak: 1.0,
            period: SimTime::from_millis(10),
            spike_len: SimTime::ZERO,
        }
    }

    /// A diurnal triangle wave between `rate_per_sec` and
    /// `rate_per_sec × peak` with the given period.
    pub fn diurnal(rate_per_sec: f64, peak: f64, period: SimTime) -> Self {
        ArrivalProcess {
            kind: ArrivalKind::Diurnal,
            rate_per_sec,
            peak,
            period,
            spike_len: SimTime::ZERO,
        }
    }

    /// A flash crowd: base rate, stepping to `rate_per_sec × peak` during
    /// `[spike_at, spike_at + spike_len)`.
    pub fn flash_crowd(
        rate_per_sec: f64,
        peak: f64,
        spike_at: SimTime,
        spike_len: SimTime,
    ) -> Self {
        ArrivalProcess {
            kind: ArrivalKind::FlashCrowd,
            rate_per_sec,
            peak,
            period: spike_at,
            spike_len,
        }
    }

    /// The instantaneous mean rate (requests/s per client) at instant `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match self.kind {
            ArrivalKind::Steady => self.rate_per_sec,
            ArrivalKind::Diurnal => {
                let period = self.period.as_nanos().max(1);
                let phase = t.as_nanos() % period;
                let half = period / 2;
                // Triangle: ramp up over the first half-period, down over
                // the second; exact rational arithmetic on nanoseconds.
                let frac = if phase < half {
                    phase as f64 / half as f64
                } else {
                    (period - phase) as f64 / (period - half) as f64
                };
                self.rate_per_sec * (1.0 + (self.peak - 1.0) * frac)
            }
            ArrivalKind::FlashCrowd => {
                if self.phase_at(t) == LoadPhase::Peak {
                    self.rate_per_sec * self.peak
                } else {
                    self.rate_per_sec
                }
            }
        }
    }

    /// Which load phase instant `t` falls in (see [`LoadPhase`]).
    pub fn phase_at(&self, t: SimTime) -> LoadPhase {
        match self.kind {
            ArrivalKind::Steady => LoadPhase::Base,
            ArrivalKind::Diurnal => {
                let period = self.period.as_nanos().max(1);
                if t.as_nanos() % period < period / 2 {
                    LoadPhase::Base
                } else {
                    LoadPhase::Peak
                }
            }
            ArrivalKind::FlashCrowd => {
                if t < self.period {
                    LoadPhase::Base
                } else if t < self.period + self.spike_len {
                    LoadPhase::Peak
                } else {
                    LoadPhase::After
                }
            }
        }
    }

    /// Panics unless the parameters describe a usable process.
    pub fn validate(&self) {
        assert!(
            self.rate_per_sec > 0.0 && self.rate_per_sec.is_finite(),
            "arrival rate must be positive and finite"
        );
        assert!(
            self.peak >= 1.0 && self.peak.is_finite(),
            "peak multiplier must be >= 1"
        );
        if self.kind != ArrivalKind::Steady {
            assert!(
                self.period > SimTime::ZERO,
                "diurnal period / spike start must be positive"
            );
        }
    }
}

/// A per-client arrival-instant generator.
///
/// Stateful but fully determined by `(process, stream rng)`: the `k`-th
/// call to [`next_arrival`](ArrivalGen::next_arrival) always returns the
/// same instant for
/// the same seed, independent of anything else in the simulation.
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: DetRng,
    now: SimTime,
}

impl ArrivalGen {
    /// A generator for one client, on its own forked RNG stream.
    pub fn new(process: ArrivalProcess, rng: DetRng) -> Self {
        ArrivalGen {
            process,
            rng,
            now: SimTime::ZERO,
        }
    }

    /// The next arrival instant (strictly increasing).
    pub fn next_arrival(&mut self) -> SimTime {
        // Mean gap at the current instant, jittered by ±50 %: a renewal
        // process with coefficient of variation ~0.29 — bursty enough to
        // exercise queues, transcendental-free for cross-platform goldens.
        let rate = self.process.rate_at(self.now);
        let mean_gap_ns = 1e9 / rate;
        let jitter = self.rng.f64_range(0.5, 1.5);
        let gap_ns = (mean_gap_ns * jitter).round().max(1.0) as u64;
        self.now += SimTime::from_nanos(gap_ns);
        self.now
    }

    /// The load phase the most recently generated arrival falls in.
    pub fn phase(&self) -> LoadPhase {
        self.process.phase_at(self.now)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn collect(proc_: ArrivalProcess, seed: u64, until: SimTime) -> Vec<SimTime> {
        let mut g = ArrivalGen::new(proc_, DetRng::new(seed).fork(1));
        let mut v = Vec::new();
        loop {
            let t = g.next_arrival();
            if t >= until {
                return v;
            }
            v.push(t);
        }
    }

    #[test]
    fn same_seed_same_instants() {
        let p = ArrivalProcess::flash_crowd(
            10_000.0,
            8.0,
            SimTime::from_millis(2),
            SimTime::from_millis(3),
        );
        let a = collect(p, 42, SimTime::from_millis(10));
        let b = collect(p, 42, SimTime::from_millis(10));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn different_streams_diverge() {
        let p = ArrivalProcess::steady(10_000.0);
        let a = collect(p, 1, SimTime::from_millis(5));
        let b = collect(p, 2, SimTime::from_millis(5));
        assert_ne!(a, b);
    }

    #[test]
    fn steady_rate_is_roughly_honoured() {
        // 10k/s over 100ms ⇒ ~1000 arrivals; ±50% jitter keeps the mean.
        let p = ArrivalProcess::steady(10_000.0);
        let n = collect(p, 7, SimTime::from_millis(100)).len();
        assert!((800..=1200).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn flash_crowd_steps_up_and_back() {
        let p = ArrivalProcess::flash_crowd(
            1_000.0,
            10.0,
            SimTime::from_millis(1),
            SimTime::from_millis(1),
        );
        assert_eq!(p.rate_at(SimTime::ZERO), 1_000.0);
        assert_eq!(p.rate_at(SimTime::from_micros(1_500)), 10_000.0);
        assert_eq!(p.rate_at(SimTime::from_millis(3)), 1_000.0);
        assert_eq!(p.phase_at(SimTime::ZERO), LoadPhase::Base);
        assert_eq!(p.phase_at(SimTime::from_micros(1_500)), LoadPhase::Peak);
        assert_eq!(p.phase_at(SimTime::from_millis(3)), LoadPhase::After);
        // The spike produces visibly more arrivals per unit time.
        let all = collect(p, 11, SimTime::from_millis(3));
        let in_spike = all
            .iter()
            .filter(|t| p.phase_at(**t) == LoadPhase::Peak)
            .count();
        assert!(in_spike > all.len() / 2, "{in_spike} of {}", all.len());
    }

    #[test]
    fn diurnal_peaks_mid_period() {
        let p = ArrivalProcess::diurnal(1_000.0, 5.0, SimTime::from_millis(4));
        assert_eq!(p.rate_at(SimTime::ZERO), 1_000.0);
        let at_peak = p.rate_at(SimTime::from_millis(2));
        assert!((at_peak - 5_000.0).abs() < 1.0, "{at_peak}");
        // Periodicity: one full period later the rate repeats exactly.
        assert_eq!(
            p.rate_at(SimTime::from_millis(1)),
            p.rate_at(SimTime::from_millis(5))
        );
        assert_eq!(p.phase_at(SimTime::from_millis(1)), LoadPhase::Base);
        assert_eq!(p.phase_at(SimTime::from_millis(3)), LoadPhase::Peak);
    }

    #[test]
    fn arrivals_strictly_increase() {
        let p = ArrivalProcess::steady(1_000_000.0);
        let v = collect(p, 3, SimTime::from_millis(1));
        for w in v.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn validate_rejects_bad_params() {
        let mut p = ArrivalProcess::steady(100.0);
        p.validate();
        p.rate_per_sec = 0.0;
        assert!(std::panic::catch_unwind(|| p.validate()).is_err());
        let mut q = ArrivalProcess::diurnal(10.0, 0.5, SimTime::from_millis(1));
        assert!(std::panic::catch_unwind(|| q.validate()).is_err());
        q.peak = 2.0;
        q.period = SimTime::ZERO;
        assert!(std::panic::catch_unwind(|| q.validate()).is_err());
    }
}
