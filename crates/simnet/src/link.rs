//! Per-link time reservation.
//!
//! Each directed torus link is a serial resource: a message occupies it for
//! its wire-serialisation time, and later messages queue behind the
//! occupancy horizon. This is where many-to-one traffic turns into tree
//! saturation around a hot node.
//!
//! The per-link state is split hot/cold for the route walk, which runs once
//! per physical hop of every simulated message: [`Link`] is the 16-byte
//! always-touched reservation state, kept in one dense array so a walk
//! streams cache lines instead of striding over fault windows it almost
//! never reads; [`LinkFault`] holds the injected outage/degrade windows and
//! lives in a separate array the network only allocates when a fault plan
//! actually faults links.

use crate::time::SimTime;

/// One directed physical link's reservation state.
#[derive(Clone, Copy, Debug, Default)]
pub struct Link {
    busy_until: SimTime,
    /// Total bytes ever serialised onto this link (for utilisation reports).
    bytes: u64,
}

impl Link {
    /// Reserves the link for `occupancy` starting no earlier than
    /// `earliest`; returns the actual start time.
    pub fn reserve(&mut self, earliest: SimTime, occupancy: SimTime, bytes: u64) -> SimTime {
        let start = earliest.max(self.busy_until);
        self.busy_until = start + occupancy;
        self.bytes += bytes;
        start
    }

    /// The time at which the link becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes carried.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Injected fault windows for one directed link: an *outage* window during
/// which every message whose head reaches the link is lost, and a *degrade*
/// window during which serialisation is slowed by a factor. Both default to
/// absent and cost nothing when unset.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkFault {
    /// Failure window `(from, until)`; `until = None` means forever.
    outage: Option<(SimTime, Option<SimTime>)>,
    /// Degradation window `(from, until, factor)` with `factor >= 1`.
    degrade: Option<(SimTime, Option<SimTime>, f64)>,
}

impl LinkFault {
    /// Installs a failure window: messages heading onto the link inside
    /// `[from, until)` are dropped (`until = None` leaves it down forever).
    pub fn set_outage(&mut self, from: SimTime, until: Option<SimTime>) {
        self.outage = Some((from, until));
    }

    /// Installs a degradation window: serialisation inside `[from, until)`
    /// is `factor` times slower.
    ///
    /// # Panics
    /// Panics if `factor < 1`.
    pub fn set_degrade(&mut self, from: SimTime, until: Option<SimTime>, factor: f64) {
        assert!(factor >= 1.0, "degrade factor {factor} must be >= 1");
        self.degrade = Some((from, until, factor));
    }

    /// Whether the link is down (inside its outage window) at `at`.
    pub fn is_down(&self, at: SimTime) -> bool {
        match self.outage {
            Some((from, until)) => at >= from && until.is_none_or(|u| at < u),
            None => false,
        }
    }

    /// The serialisation slow-down factor in effect at `at` (1.0 when
    /// healthy).
    pub fn occupancy_factor(&self, at: SimTime) -> f64 {
        match self.degrade {
            Some((from, until, factor)) if at >= from && until.is_none_or(|u| at < u) => factor,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = Link::default();
        let start = l.reserve(SimTime::from_nanos(100), SimTime::from_nanos(50), 64);
        assert_eq!(start, SimTime::from_nanos(100));
        assert_eq!(l.busy_until(), SimTime::from_nanos(150));
        assert_eq!(l.bytes(), 64);
    }

    #[test]
    fn busy_link_queues() {
        let mut l = Link::default();
        l.reserve(SimTime::ZERO, SimTime::from_nanos(100), 1);
        let start = l.reserve(SimTime::from_nanos(10), SimTime::from_nanos(100), 1);
        assert_eq!(start, SimTime::from_nanos(100));
        assert_eq!(l.busy_until(), SimTime::from_nanos(200));
        assert_eq!(l.bytes(), 2);
    }

    #[test]
    fn serial_reservations_accumulate() {
        let mut l = Link::default();
        for _ in 0..10 {
            l.reserve(SimTime::ZERO, SimTime::from_nanos(7), 1);
        }
        assert_eq!(l.busy_until(), SimTime::from_nanos(70));
    }

    #[test]
    fn link_hot_state_is_two_words() {
        // The route walk streams this array; keep the entry at 16 bytes.
        assert_eq!(std::mem::size_of::<Link>(), 16);
    }

    #[test]
    fn healthy_link_reports_no_faults() {
        let f = LinkFault::default();
        assert!(!f.is_down(SimTime::ZERO));
        assert!(!f.is_down(SimTime::from_secs(100)));
        assert_eq!(f.occupancy_factor(SimTime::ZERO), 1.0);
    }

    #[test]
    fn outage_window_bounds_are_half_open() {
        let mut f = LinkFault::default();
        f.set_outage(SimTime::from_nanos(10), Some(SimTime::from_nanos(20)));
        assert!(!f.is_down(SimTime::from_nanos(9)));
        assert!(f.is_down(SimTime::from_nanos(10)));
        assert!(f.is_down(SimTime::from_nanos(19)));
        assert!(!f.is_down(SimTime::from_nanos(20)));
    }

    #[test]
    fn permanent_outage_never_clears() {
        let mut f = LinkFault::default();
        f.set_outage(SimTime::from_nanos(5), None);
        assert!(!f.is_down(SimTime::from_nanos(4)));
        assert!(f.is_down(SimTime::from_secs(1_000)));
    }

    #[test]
    fn degrade_window_scales_occupancy_factor() {
        let mut f = LinkFault::default();
        f.set_degrade(
            SimTime::from_nanos(100),
            Some(SimTime::from_nanos(200)),
            3.0,
        );
        assert_eq!(f.occupancy_factor(SimTime::from_nanos(99)), 1.0);
        assert_eq!(f.occupancy_factor(SimTime::from_nanos(100)), 3.0);
        assert_eq!(f.occupancy_factor(SimTime::from_nanos(200)), 1.0);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn degrade_speedup_panics() {
        LinkFault::default().set_degrade(SimTime::ZERO, None, 0.25);
    }
}
