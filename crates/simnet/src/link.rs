//! Per-link time reservation.
//!
//! Each directed torus link is a serial resource: a message occupies it for
//! its wire-serialisation time, and later messages queue behind the
//! occupancy horizon. This is where many-to-one traffic turns into tree
//! saturation around a hot node.

use crate::time::SimTime;

/// One directed physical link.
#[derive(Clone, Copy, Debug, Default)]
pub struct Link {
    busy_until: SimTime,
    /// Total bytes ever serialised onto this link (for utilisation reports).
    bytes: u64,
}

impl Link {
    /// Reserves the link for `occupancy` starting no earlier than
    /// `earliest`; returns the actual start time.
    pub fn reserve(&mut self, earliest: SimTime, occupancy: SimTime, bytes: u64) -> SimTime {
        let start = earliest.max(self.busy_until);
        self.busy_until = start + occupancy;
        self.bytes += bytes;
        start
    }

    /// The time at which the link becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes carried.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_starts_immediately() {
        let mut l = Link::default();
        let start = l.reserve(SimTime::from_nanos(100), SimTime::from_nanos(50), 64);
        assert_eq!(start, SimTime::from_nanos(100));
        assert_eq!(l.busy_until(), SimTime::from_nanos(150));
        assert_eq!(l.bytes(), 64);
    }

    #[test]
    fn busy_link_queues() {
        let mut l = Link::default();
        l.reserve(SimTime::ZERO, SimTime::from_nanos(100), 1);
        let start = l.reserve(SimTime::from_nanos(10), SimTime::from_nanos(100), 1);
        assert_eq!(start, SimTime::from_nanos(100));
        assert_eq!(l.busy_until(), SimTime::from_nanos(200));
        assert_eq!(l.bytes(), 2);
    }

    #[test]
    fn serial_reservations_accumulate() {
        let mut l = Link::default();
        for _ in 0..10 {
            l.reserve(SimTime::ZERO, SimTime::from_nanos(7), 1);
        }
        assert_eq!(l.busy_until(), SimTime::from_nanos(70));
    }
}
