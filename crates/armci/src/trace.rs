//! Trace export: operation records and per-rank summaries as CSV, for
//! offline analysis of simulation runs.

use crate::engine::Report;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Writes the full operation trace as CSV (`rank,kind,issued_us,
/// completed_us,latency_us`). Requires the run to have had
/// [`record_ops`](crate::RuntimeConfig::record_ops) enabled; otherwise only
/// the header is produced.
pub fn write_op_trace<W: Write>(report: &Report, mut w: W) -> io::Result<()> {
    writeln!(w, "rank,kind,issued_us,completed_us,latency_us")?;
    for op in &report.metrics.ops {
        writeln!(
            w,
            "{},{},{:.3},{:.3},{:.3}",
            op.rank.0,
            op.kind.name(),
            op.issued.as_micros_f64(),
            op.completed.as_micros_f64(),
            op.latency().as_micros_f64(),
        )?;
    }
    Ok(())
}

/// Writes per-rank aggregates as CSV (`rank,ops,mean_us,std_us,min_us,
/// max_us,done_at_us`).
pub fn write_rank_summary<W: Write>(report: &Report, mut w: W) -> io::Result<()> {
    writeln!(w, "rank,ops,mean_us,std_us,min_us,max_us,done_at_us")?;
    for (rank, s) in report.metrics.per_rank.iter().enumerate() {
        writeln!(
            w,
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            rank,
            s.ops,
            s.latency_us.mean(),
            s.latency_us.std_dev(),
            s.latency_us.min(),
            s.latency_us.max(),
            s.done_at.as_micros_f64(),
        )?;
    }
    Ok(())
}

/// Writes the fault-recovery record of a run as CSV: one `counter,value`
/// row per [`FaultStats`](crate::FaultStats) counter, the availability, and
/// one `failure,<rank>,<diagnostic>` row per terminally failed operation.
/// All counters are zero and no failure rows appear on a fault-free run.
pub fn write_fault_summary<W: Write>(report: &Report, mut w: W) -> io::Result<()> {
    writeln!(w, "counter,value")?;
    let f = &report.faults;
    for (name, value) in [
        ("retries", f.retries),
        ("timeouts", f.timeouts),
        ("reroutes", f.reroutes),
        ("dedup_hits", f.dedup_hits),
        ("reclaims", f.reclaims),
        ("unreachable", f.unreachable),
        ("failed_ops", f.failed_ops),
        ("sheds", f.sheds),
        ("lost_ranks", report.lost_ranks.len() as u64),
    ] {
        writeln!(w, "{name},{value}")?;
    }
    writeln!(w, "availability,{:.6}", report.availability())?;
    for err in &report.failures {
        let rank = match err {
            crate::SimError::Unreachable { rank, .. }
            | crate::SimError::TimedOut { rank, .. }
            | crate::SimError::Overloaded { rank, .. } => rank.0,
            crate::SimError::Deadlock { .. } => u32::MAX,
        };
        writeln!(w, "failure,{rank},{err}")?;
    }
    Ok(())
}

/// Writes the request-coalescing record of a run as CSV: one
/// `counter,value` row per [`CoalesceStats`](crate::CoalesceStats) counter
/// plus the physical-forward counters the ablation compares. All envelope
/// counters are zero when coalescing is off.
pub fn write_coalesce_summary<W: Write>(report: &Report, mut w: W) -> io::Result<()> {
    writeln!(w, "counter,value")?;
    let c = &report.coalesce;
    for (name, value) in [
        ("envelopes", c.envelopes),
        ("coalesced_requests", c.coalesced_requests),
        ("agg_acks", c.agg_acks),
        ("largest_envelope", c.largest_envelope),
        ("deepest_fold", u64::from(c.deepest_fold)),
        ("forwarded", report.cht_totals.forwarded),
        ("fwd_messages", report.cht_totals.fwd_messages),
        ("net_messages", report.net.messages),
    ] {
        writeln!(w, "{name},{value}")?;
    }
    Ok(())
}

fn save<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    let mut w = BufWriter::new(File::create(path)?);
    write(&mut w)?;
    w.flush()
}

/// Saves the operation trace CSV to `path`, creating or truncating the file.
///
/// # Errors
/// Propagates any I/O failure from creating or writing the file.
pub fn save_op_trace(report: &Report, path: &Path) -> io::Result<()> {
    save(path, |w| write_op_trace(report, w))
}

/// Saves the per-rank summary CSV to `path`.
///
/// # Errors
/// Propagates any I/O failure from creating or writing the file.
pub fn save_rank_summary(report: &Report, path: &Path) -> io::Result<()> {
    save(path, |w| write_rank_summary(report, w))
}

/// Saves the fault-recovery summary CSV to `path`.
///
/// # Errors
/// Propagates any I/O failure from creating or writing the file.
pub fn save_fault_summary(report: &Report, path: &Path) -> io::Result<()> {
    save(path, |w| write_fault_summary(report, w))
}

/// Saves the coalescing summary CSV to `path`.
///
/// # Errors
/// Propagates any I/O failure from creating or writing the file.
pub fn save_coalesce_summary(report: &Report, path: &Path) -> io::Result<()> {
    save(path, |w| write_coalesce_summary(report, w))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ids::Rank;
    use crate::ops::Op;
    use crate::workload::{Action, ScriptProgram};
    use crate::{RuntimeConfig, Simulation};
    use vt_core::TopologyKind;

    fn sample_report() -> Report {
        let mut cfg = RuntimeConfig::new(4, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        cfg.record_ops = true;
        Simulation::build(cfg, |rank| {
            ScriptProgram::new(if rank == Rank(0) {
                vec![]
            } else {
                vec![Action::Op(Op::fetch_add(Rank(0), 1))]
            })
        })
        .run()
        .unwrap()
    }

    #[test]
    fn op_trace_has_one_row_per_op() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_op_trace(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 3); // header + three fadds
        assert!(lines[0].starts_with("rank,kind"));
        assert!(lines[1].contains(",fadd,"));
    }

    #[test]
    fn fault_summary_is_all_zero_without_faults() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_fault_summary(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.trim().lines().skip(1) {
            if let Some(v) = line.strip_prefix("availability,") {
                assert_eq!(v, "1.000000");
            } else {
                assert!(line.ends_with(",0"), "non-zero counter: {line}");
            }
        }
        assert!(!text.contains("failure,"));
    }

    #[test]
    fn coalesce_summary_is_all_zero_when_disabled() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_coalesce_summary(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for line in text.trim().lines().skip(1) {
            let (name, value) = line.split_once(',').unwrap();
            match name {
                "envelopes" | "coalesced_requests" | "agg_acks" | "largest_envelope"
                | "deepest_fold" => assert_eq!(value, "0", "counter {name}"),
                _ => {}
            }
        }
        assert!(text.contains("fwd_messages,"));
    }

    #[test]
    fn save_helpers_round_trip_through_files() {
        let report = sample_report();
        let dir = std::env::temp_dir().join("vt_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let ops = dir.join("ops.csv");
        let ranks = dir.join("ranks.csv");
        let faults = dir.join("faults.csv");
        save_op_trace(&report, &ops).unwrap();
        save_rank_summary(&report, &ranks).unwrap();
        save_fault_summary(&report, &faults).unwrap();
        assert!(std::fs::read_to_string(&ops)
            .unwrap()
            .starts_with("rank,kind"));
        assert!(std::fs::read_to_string(&ranks)
            .unwrap()
            .starts_with("rank,ops"));
        assert!(std::fs::read_to_string(&faults)
            .unwrap()
            .starts_with("counter,value"));
        // Saving into a missing directory is an error, not a panic.
        assert!(save_op_trace(&report, &dir.join("missing/x.csv")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rank_summary_covers_all_ranks() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_rank_summary(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.trim().lines().count(), 1 + 4);
        // Rank 0 did nothing.
        assert!(text.lines().nth(1).unwrap().starts_with("0,0,"));
    }
}
