//! Trace export: operation records and per-rank summaries as CSV, for
//! offline analysis of simulation runs.

use crate::engine::Report;
use std::io::{self, Write};

/// Writes the full operation trace as CSV (`rank,kind,issued_us,
/// completed_us,latency_us`). Requires the run to have had
/// [`record_ops`](crate::RuntimeConfig::record_ops) enabled; otherwise only
/// the header is produced.
pub fn write_op_trace<W: Write>(report: &Report, mut w: W) -> io::Result<()> {
    writeln!(w, "rank,kind,issued_us,completed_us,latency_us")?;
    for op in &report.metrics.ops {
        writeln!(
            w,
            "{},{},{:.3},{:.3},{:.3}",
            op.rank.0,
            op.kind.name(),
            op.issued.as_micros_f64(),
            op.completed.as_micros_f64(),
            op.latency().as_micros_f64(),
        )?;
    }
    Ok(())
}

/// Writes per-rank aggregates as CSV (`rank,ops,mean_us,std_us,min_us,
/// max_us,done_at_us`).
pub fn write_rank_summary<W: Write>(report: &Report, mut w: W) -> io::Result<()> {
    writeln!(w, "rank,ops,mean_us,std_us,min_us,max_us,done_at_us")?;
    for (rank, s) in report.metrics.per_rank.iter().enumerate() {
        writeln!(
            w,
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
            rank,
            s.ops,
            s.latency_us.mean(),
            s.latency_us.std_dev(),
            s.latency_us.min(),
            s.latency_us.max(),
            s.done_at.as_micros_f64(),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Rank;
    use crate::ops::Op;
    use crate::workload::{Action, ScriptProgram};
    use crate::{RuntimeConfig, Simulation};
    use vt_core::TopologyKind;

    fn sample_report() -> Report {
        let mut cfg = RuntimeConfig::new(4, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        cfg.record_ops = true;
        Simulation::build(cfg, |rank| {
            ScriptProgram::new(if rank == Rank(0) {
                vec![]
            } else {
                vec![Action::Op(Op::fetch_add(Rank(0), 1))]
            })
        })
        .run()
        .unwrap()
    }

    #[test]
    fn op_trace_has_one_row_per_op() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_op_trace(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.trim().lines().collect();
        assert_eq!(lines.len(), 1 + 3); // header + three fadds
        assert!(lines[0].starts_with("rank,kind"));
        assert!(lines[1].contains(",fadd,"));
    }

    #[test]
    fn rank_summary_covers_all_ranks() {
        let report = sample_report();
        let mut buf = Vec::new();
        write_rank_summary(&report, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.trim().lines().count(), 1 + 4);
        // Rank 0 did nothing.
        assert!(text.lines().nth(1).unwrap().starts_with("0,0,"));
    }
}
