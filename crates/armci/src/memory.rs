//! Runtime memory accounting (the simulated `/proc` VmRSS of paper §V-A).

use crate::config::RuntimeConfig;
use serde::{Deserialize, Serialize};
use vt_core::{MemoryModel, VirtualTopology};

/// Memory report for one node / its master process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMemory {
    /// Bytes of CHT request buffers (in-degree × ppn × M × B).
    pub cht_pool_bytes: u64,
    /// Topology-independent per-remote-process bookkeeping bytes.
    pub bookkeeping_bytes: u64,
    /// Modelled VmRSS of the master process (base + pool + bookkeeping).
    pub master_vmrss_bytes: u64,
}

impl NodeMemory {
    /// VmRSS increment over the base process footprint.
    pub fn increment_bytes(&self) -> u64 {
        self.cht_pool_bytes + self.bookkeeping_bytes
    }
}

/// Builds the [`MemoryModel`] implied by a runtime configuration.
pub fn model_for(cfg: &RuntimeConfig) -> MemoryModel {
    MemoryModel {
        buffer_bytes: cfg.buffer_bytes,
        buffers_per_proc: cfg.buffers_per_proc,
        procs_per_node: cfg.procs_per_node,
        ..MemoryModel::default()
    }
}

/// Memory report for `node` under `cfg`'s topology.
pub fn node_memory(cfg: &RuntimeConfig, topo: &dyn VirtualTopology, node: u32) -> NodeMemory {
    let model = model_for(cfg);
    NodeMemory {
        cht_pool_bytes: model.cht_pool_bytes(topo, node),
        bookkeeping_bytes: model.bookkeeping_bytes(topo),
        master_vmrss_bytes: model.master_vmrss_bytes(topo, node),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use vt_core::TopologyKind;

    #[test]
    fn node_memory_matches_model() {
        let cfg = RuntimeConfig::new(48, TopologyKind::Mfcg);
        let topo = cfg.topology.build(cfg.num_nodes());
        let mem = node_memory(&cfg, &topo, 0);
        let model = model_for(&cfg);
        assert_eq!(mem.cht_pool_bytes, model.cht_pool_bytes(&topo, 0));
        assert_eq!(
            mem.master_vmrss_bytes,
            model.base_process_bytes + mem.increment_bytes()
        );
    }

    #[test]
    fn fcg_pool_larger_than_mfcg() {
        let mut cfg = RuntimeConfig::new(4096, TopologyKind::Fcg);
        let fcg = node_memory(&cfg, &cfg.topology.build(cfg.num_nodes()), 0);
        cfg.topology = TopologyKind::Mfcg;
        let mfcg = node_memory(&cfg, &cfg.topology.build(cfg.num_nodes()), 0);
        assert!(fcg.cht_pool_bytes > 10 * mfcg.cht_pool_bytes);
        assert_eq!(fcg.bookkeeping_bytes, mfcg.bookkeeping_bytes);
    }

    #[test]
    fn model_uses_config_constants() {
        let mut cfg = RuntimeConfig::new(64, TopologyKind::Fcg);
        cfg.buffer_bytes = 1024;
        cfg.buffers_per_proc = 2;
        cfg.procs_per_node = 8;
        let m = model_for(&cfg);
        assert_eq!(m.buffer_bytes, 1024);
        assert_eq!(m.buffers_per_proc, 2);
        assert_eq!(m.procs_per_node, 8);
    }
}
