//! Communication helper thread (CHT) state.
//!
//! One CHT per node (created by the node's master process, paper §II)
//! services one-sided requests on behalf of all local processes: it is a
//! *serial* FIFO server. Requests that must travel further are forwarded to
//! the next server on the LDF route; a forward needs a downstream buffer
//! credit.
//!
//! **Parking, not head-of-line blocking.** When the head-of-line request
//! cannot get its downstream credit, the CHT *parks* it (the request keeps
//! holding its upstream buffer — that is the genuine channel dependency the
//! LDF order keeps acyclic) and continues with the rest of its queue. This
//! is not an optimisation but a correctness requirement discovered by this
//! reproduction's deadlock audit: a serial server that blocks wholesale on
//! one credit can deadlock *even under a cycle-free forwarding order*,
//! because the request that would release the awaited credit may be stuck
//! behind the blocked head in the peer's queue. With parking, the only
//! wait-for relationships are buffer-chain dependencies, and those are
//! exactly what the paper's LDF argument covers.

use crate::ids::ReqId;
use std::collections::VecDeque;
use vt_simnet::SimTime;

/// Aggregated per-CHT activity counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChtCounters {
    /// Requests terminally serviced here.
    pub serviced: u64,
    /// Requests forwarded to another server.
    pub forwarded: u64,
    /// Times the CHT had to be woken from idle.
    pub wakeups: u64,
    /// Forwards parked waiting for a downstream credit.
    pub parked: u64,
    /// Largest queue depth observed.
    pub max_queue: usize,
    /// Physical forwarding messages sent (each envelope counts once; with
    /// coalescing off this equals `forwarded`).
    pub fwd_messages: u64,
    /// Coalesced envelopes assembled here.
    pub envelopes: u64,
    /// Member requests carried inside those envelopes.
    pub coalesced: u64,
}

/// The runtime state of one node's CHT.
#[derive(Debug)]
pub struct Cht {
    queue: VecDeque<ReqId>,
    /// `true` while a service is scheduled and not yet completed.
    busy: bool,
    /// End of the most recent service (for the polling-window model).
    last_service_end: SimTime,
    /// Counters for reports.
    pub counters: ChtCounters,
}

impl Default for Cht {
    fn default() -> Self {
        Self::new()
    }
}

impl Cht {
    /// An idle CHT with an empty queue.
    pub fn new() -> Self {
        Cht {
            queue: VecDeque::new(),
            busy: false,
            last_service_end: SimTime::ZERO,
            counters: ChtCounters::default(),
        }
    }

    /// Enqueues an arrived request; returns `true` if the engine should
    /// schedule a service attempt (the CHT is idle).
    pub fn enqueue(&mut self, req: ReqId) -> bool {
        self.queue.push_back(req);
        self.counters.max_queue = self.counters.max_queue.max(self.queue.len());
        !self.busy
    }

    /// Re-enqueues a previously parked request at the *front* (it is older
    /// than anything queued); returns `true` if the CHT is idle and a
    /// service attempt should be scheduled.
    pub fn enqueue_front(&mut self, req: ReqId) -> bool {
        self.queue.push_front(req);
        self.counters.max_queue = self.counters.max_queue.max(self.queue.len());
        !self.busy
    }

    /// The head-of-line request, if any.
    pub fn head(&self) -> Option<ReqId> {
        self.queue.front().copied()
    }

    /// Pops the head request (service start or parking).
    pub fn pop_head(&mut self) -> Option<ReqId> {
        self.queue.pop_front()
    }

    /// Current queue depth.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Whether a service is in progress.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Marks the start of a service; returns the wakeup penalty to charge
    /// (zero when the CHT was still polling).
    pub fn begin_service(
        &mut self,
        now: SimTime,
        poll_window: SimTime,
        wakeup: SimTime,
    ) -> SimTime {
        debug_assert!(!self.busy, "service overlap");
        self.busy = true;
        if now.saturating_sub(self.last_service_end) > poll_window {
            self.counters.wakeups += 1;
            wakeup
        } else {
            SimTime::ZERO
        }
    }

    /// Marks the end of a service.
    pub fn end_service(&mut self, now: SimTime) {
        debug_assert!(self.busy);
        self.busy = false;
        self.last_service_end = now;
    }

    /// Records that a forward was parked on an exhausted credit.
    pub fn note_parked(&mut self) {
        self.counters.parked += 1;
    }

    /// The queued requests behind the head, oldest first (the coalescing
    /// scan's candidate set).
    pub fn iter(&self) -> impl Iterator<Item = ReqId> + '_ {
        self.queue.iter().copied()
    }

    /// Removes the given requests from anywhere in the queue, preserving the
    /// order of the rest (used when queued requests fold into an envelope).
    pub fn remove_many(&mut self, ids: &[ReqId]) {
        if ids.is_empty() {
            return;
        }
        self.queue.retain(|r| !ids.contains(r));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn enqueue_signals_start_only_when_idle() {
        let mut cht = Cht::new();
        assert!(cht.enqueue(1));
        let wake = cht.begin_service(
            SimTime::ZERO,
            SimTime::from_micros(60),
            SimTime::from_micros(8),
        );
        assert_eq!(wake, SimTime::ZERO); // t = 0 counts as within the window
        assert!(!cht.enqueue(2)); // busy: no new start
        assert_eq!(cht.queue_len(), 2);
        assert_eq!(cht.counters.max_queue, 2);
    }

    #[test]
    fn wakeup_charged_after_long_idle() {
        let mut cht = Cht::new();
        cht.enqueue(1);
        let w = cht.begin_service(
            SimTime::from_micros(100),
            SimTime::from_micros(60),
            SimTime::from_micros(8),
        );
        assert_eq!(w, SimTime::from_micros(8));
        assert_eq!(cht.counters.wakeups, 1);
        cht.pop_head();
        cht.end_service(SimTime::from_micros(105));
        // Within the window now: no wakeup.
        cht.enqueue(2);
        let w = cht.begin_service(
            SimTime::from_micros(110),
            SimTime::from_micros(60),
            SimTime::from_micros(8),
        );
        assert_eq!(w, SimTime::ZERO);
        assert_eq!(cht.counters.wakeups, 1);
    }

    #[test]
    fn enqueue_front_puts_request_first() {
        let mut cht = Cht::new();
        cht.enqueue(1);
        cht.enqueue(2);
        cht.enqueue_front(7);
        assert_eq!(cht.pop_head(), Some(7));
        assert_eq!(cht.pop_head(), Some(1));
        assert_eq!(cht.pop_head(), Some(2));
    }

    #[test]
    fn parked_counter_increments() {
        let mut cht = Cht::new();
        cht.note_parked();
        cht.note_parked();
        assert_eq!(cht.counters.parked, 2);
    }

    #[test]
    fn remove_many_keeps_relative_order() {
        let mut cht = Cht::new();
        for i in 0..6 {
            cht.enqueue(i);
        }
        cht.remove_many(&[1, 4]);
        let rest: Vec<ReqId> = cht.iter().collect();
        assert_eq!(rest, vec![0, 2, 3, 5]);
        cht.remove_many(&[]);
        assert_eq!(cht.queue_len(), 4);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut cht = Cht::new();
        for i in 0..5 {
            cht.enqueue(i);
        }
        for i in 0..5 {
            assert_eq!(cht.head(), Some(i));
            assert_eq!(cht.pop_head(), Some(i));
        }
        assert_eq!(cht.pop_head(), None);
    }
}
