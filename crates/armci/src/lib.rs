//! # vt-armci — an ARMCI-like GAS runtime model
//!
//! This crate models the Aggregate Remote Memory Copy Interface runtime the
//! paper instruments, at the level of detail its evaluation depends on:
//!
//! * **Processes and nodes** — ranks packed densely onto nodes
//!   ([`Layout`]); the lowest rank per node is the master hosting the
//!   communication helper thread.
//! * **The CHT** ([`cht`]) — a serial FIFO server per node handling the
//!   operations Portals cannot do one-sidedly (vectored/strided transfers,
//!   accumulate, atomics, locks), with a polling-window/wakeup model.
//! * **Request buffers as credits** ([`buffers`]) — each sender owns `M`
//!   request-buffer slots at every node it is directly connected to in the
//!   virtual topology; requests genuinely block on exhausted credits and
//!   buffers are returned by explicit acknowledgements, so deadlock freedom
//!   of the forwarding order is *observable*, not assumed.
//! * **Virtual-topology forwarding** — CHT-path requests travel the LDF
//!   route of the configured [`TopologyKind`](vt_core::TopologyKind); the
//!   contiguous put/get fast path goes straight to RDMA, untouched by the
//!   topology (paper §II).
//! * **Request coalescing** ([`CoalesceConfig`]) — optionally, a
//!   forwarding CHT folds queued (and credit-parked) requests sharing the
//!   same next LDF hop and escape class into one bounded envelope on a
//!   single downstream credit, with assembly pipelined against the
//!   in-flight send and one aggregated ack on the return path. Off by
//!   default and byte-for-byte free when off.
//! * **Workloads** ([`workload`]) — per-rank [`Program`]s built from
//!   blocking/async one-sided [`Op`]s, compute blocks, fences and barriers.
//! * **Self-healing under faults** — when a [`FaultPlan`] is installed
//!   ([`Simulation::with_faults`](Simulation)), every remote operation
//!   carries a sequence number and a per-request timer: lost messages are
//!   retransmitted with exponential backoff ([`RetryConfig`]), a
//!   target-side dedup table keeps retried fetch-&-add / accumulate / lock
//!   requests exactly-once, forwarding routes around dead nodes with
//!   escape-class buffers that provably keep the credit-dependency graph
//!   acyclic, and unrecoverable operations degrade gracefully into
//!   [`SimError::Unreachable`] / [`SimError::TimedOut`] diagnostics plus
//!   [`FaultStats`] counters instead of hanging the job.
//! * **Open-system serving** ([`ServeConfig`]) — optionally, ranks double
//!   as serving clients fed by deterministic arrival processes
//!   ([`ArrivalProcess`]): bounded admission queues shed excess load as
//!   typed [`SimError::Overloaded`] diagnostics, retransmissions draw
//!   capped decorrelated jitter under per-client retry budgets, a
//!   metastability guard suppresses retry storms past saturation, and a
//!   sustained hot-spot skew can commit a live epoch re-pack onto a
//!   higher-attenuation topology kind. Off by default and byte-for-byte
//!   free when off.
//! * **Measurement** ([`metrics`], [`memory`]) — per-rank latency series
//!   (Figs. 6/7), runtime memory accounting (Fig. 5) and network/CHT
//!   counters.
//!
//! Everything runs on the deterministic `vt-simnet` machine model; a given
//! configuration and seed reproduces bit-identical timelines.
//!
//! Entry point: [`Simulation`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Panic policy for the engine hot paths: reachable failures (routing,
// faults, exhausted budgets) must surface as typed `SimError`s; `unwrap`
// and `expect` are reserved for protocol-state invariants whose violation
// means the simulation is already corrupt, each carrying an `#[allow]`
// with its justification. Test modules are exempt wholesale.
#![warn(clippy::unwrap_used, clippy::expect_used)]
pub mod buffers;
pub mod cht;
pub mod config;
pub mod engine;
pub mod ids;
pub mod layout;
pub mod memory;
pub mod metrics;
pub mod ops;
pub mod sim;
pub mod trace;
pub mod workload;

pub use config::{
    ChtConfig, CoalesceConfig, MembershipConfig, RetryConfig, RuntimeConfig, ServeConfig,
};
pub use engine::{forward_decision, RepairCertifier, Report, SimError};
pub use ids::{NodeId, Rank, Sender};
pub use layout::Layout;
pub use memory::{node_memory, NodeMemory};
pub use metrics::{
    CoalesceStats, FaultStats, Metrics, OpRecord, RankStats, RepairStats, ServeStats,
};
pub use ops::{Op, OpKind};
pub use sim::Simulation;
pub use workload::{Action, ClosureProgram, IdleProgram, ProcCtx, Program, ScriptProgram};

// Re-exported so workloads don't need a direct vt-simnet dependency for
// time arithmetic, fault scheduling or arrival-process construction.
pub use vt_simnet::{ArrivalKind, ArrivalProcess, FaultPlan, LoadPhase, SimTime};
