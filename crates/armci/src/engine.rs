//! The event-driven runtime engine.
//!
//! Ties everything together: processes run [`Program`]s; CHT-path requests
//! acquire buffer credits, travel the virtual topology hop by hop (LDF),
//! queue at serial CHT servers and are forwarded or terminally serviced;
//! every hop's buffer is returned to its sender by an explicit
//! acknowledgement once the downstream server has dealt with the request
//! (paper §IV: "if an intermediate server (or the target) detects that the
//! request is forwarded from an upstream server, it sends an acknowledgment
//! to the upstream server"); the target's response goes *directly* back to
//! the origin process.
//!
//! Because requests genuinely block on credits, a cyclic forwarding order
//! deadlocks. The engine detects quiescence-with-blocked-work and returns
//! [`SimError::Deadlock`] with diagnostics instead of hanging.

use crate::buffers::{CreditKey, CreditManager, Waiter};
use crate::cht::{Cht, ChtCounters};
use crate::config::RuntimeConfig;
use crate::ids::{NodeId, Rank, ReqId, Sender};
use crate::layout::Layout;
use crate::metrics::{CoalesceStats, FaultStats, Metrics, RepairStats, ServeStats};
use crate::ops::{Op, OpKind};
use crate::workload::{Action, ProcCtx, Program};
use vt_core::ldf::{self, HopDecision};
use vt_core::{FxHashMap, FxHashSet, Grid, Shape, SurvivorPacking, TopologyKind, VirtualTopology};
use vt_simnet::fault::{NodeCrash, NodeRestart, PartitionWindow};
use vt_simnet::{
    ArrivalGen, Delivery, DetRng, EventQueue, FaultPlan, Network, SendOutcome, SimTime,
};

/// Engine events.
#[derive(Clone, Copy, Debug)]
enum Event {
    /// A process is ready to take its next action.
    ProcReady(Rank),
    /// A request message finished arriving at a node.
    RequestArrive { req: ReqId, node: NodeId },
    /// A CHT should try to start servicing its head-of-line request.
    ChtTryStart { node: NodeId },
    /// A CHT finished servicing or forwarding a request.
    ChtDone { node: NodeId, req: ReqId },
    /// A buffer-release acknowledgement arrived at the credit holder's node.
    AckArrive { key: CreditKey },
    /// The target's response arrived at the origin process.
    ResponseArrive { req: ReqId },
    /// A notifying operation landed in `target`'s address space.
    NotifyArrive { target: Rank },
    /// All ranks entered the barrier; release them.
    BarrierRelease,
    /// A per-request response timer expired at the origin (fault runs only).
    Timeout { req: ReqId },
    /// A scheduled node (CHT + NIC) crash fires (fault runs only).
    NodeCrash { node: NodeId },
    /// A scheduled node reboot fires: revive the node's NIC and Lost
    /// resident ranks (fault runs with restarts only).
    NodeRestart { node: NodeId },
    /// A scheduled partition window heals (fault runs with partitions
    /// only).
    PartitionHeal { idx: u32 },
    /// A rebooted node announces itself to a live peer so the membership
    /// layer gathers rejoin evidence (membership runs with restarts only).
    RejoinAnnounce { node: NodeId },
    /// A CHT finished assembling and dispatching a coalesced envelope
    /// (coalescing runs only).
    ChtEnvDone { node: NodeId, env: u32 },
    /// A coalesced envelope finished arriving at a node (coalescing runs
    /// only).
    EnvelopeArrive { env: u32, node: NodeId },
    /// The failure detector's periodic evidence sweep (membership runs
    /// only).
    MembershipTick,
    /// An idle heartbeat probe from `prober` landed at `node` (membership
    /// runs only).
    ProbeArrive { node: NodeId, prober: NodeId },
    /// A probe acknowledgement arrived: fresh liveness evidence for `node`
    /// (membership runs only).
    ProbeAck { node: NodeId },
    /// The drain window after a confirmed crash elapsed: re-pack the
    /// survivors and bump the membership epoch (membership runs only).
    EpochCommit,
    /// The next open-system client request for `rank` arrives (serving runs
    /// only).
    ClientArrival { rank: Rank },
    /// The serving-mode overload detector's periodic sweep: metastability
    /// guard + hot-spot skew detection (serving runs only).
    ServeTick,
}

/// Wire size of a failure-detector heartbeat probe (and its ack).
const PROBE_BYTES: u64 = 16;

/// An in-flight one-sided request.
#[derive(Clone, Copy, Debug)]
struct Request {
    op: Op,
    origin: Rank,
    origin_node: NodeId,
    target_node: NodeId,
    issued: SimTime,
    /// Sender of the hop currently in flight or in service (whose credit the
    /// next ChtDone releases).
    prev_sender: Sender,
    prev_node: NodeId,
    /// Whether the issuing process blocks until the response.
    blocking: bool,
    /// Fetch-&-add result carried by the response.
    resp_value: Option<i64>,
    /// Set when a parked forward was granted its downstream credit (so the
    /// service start must not acquire again).
    credit_held: bool,
    /// Slab liveness flag.
    live: bool,
    /// Logical-operation sequence number: shared by every retransmission of
    /// the same operation, unique per (origin, operation). The target-side
    /// dedup table is keyed on `(origin, seq)`.
    seq: u64,
    /// Retransmission attempt this copy belongs to (0 = original send).
    attempt: u32,
    /// Escape buffer class of the hop currently in flight (0 unless
    /// route-around descended; see `vt_core::ldf::route_avoiding_classed`).
    vc_class: u8,
    /// Next hop chosen at credit-acquire time, consumed at forward time so
    /// the acquired credit and the sent hop can never disagree.
    fwd_next: NodeId,
    /// Escape class of the chosen next hop.
    fwd_class: u8,
    /// Envelope slab slot this copy is travelling in, or [`NO_ENV`] for an
    /// individual message. Consumed (reset to [`NO_ENV`]) by the downstream
    /// node when it accounts the member against the envelope's single
    /// shared buffer credit.
    env_slot: u32,
    /// Membership epoch the copy was issued (or retransmitted) in. Copies
    /// from an earlier epoch than the receiver's are rejected
    /// deterministically after a repair — their routing was chosen against
    /// a packing that no longer exists. Always 0 with membership off.
    epoch: u64,
    /// An open-system client request (serving runs only): its origin rank
    /// is `Done` from the start, its retries draw on the client's budget,
    /// and exhaustion abandons the operation instead of failing the rank.
    serve: bool,
    /// The wait the previous retransmission attempt actually used — the
    /// `prev` of the decorrelated-jitter recurrence. `retry.timeout` for
    /// attempt 0.
    backoff_prev: SimTime,
}

/// Sentinel: the request is not an envelope member.
const NO_ENV: u32 = u32::MAX;

/// An in-flight coalesced envelope: member requests that shared the same
/// outgoing LDF edge and escape class at a forwarding CHT, travelling as one
/// wire message on one downstream buffer credit.
#[derive(Clone, Debug)]
struct EnvState {
    /// Member requests in queue order.
    members: Vec<ReqId>,
    /// Assembling (sending) node.
    from: NodeId,
    /// Receiving node.
    to: NodeId,
    /// Escape buffer class of the shared credit.
    class: u8,
    /// Members the receiver has not yet accounted; the envelope's credit is
    /// released (one aggregated ack) when this reaches zero.
    pending: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Executing (an event will call back into the program).
    Running,
    /// Blocking operation in flight.
    WaitingResponse,
    /// Blocked acquiring a credit to issue.
    WaitingCredit,
    /// Waiting for all outstanding async ops.
    Fencing,
    /// Waiting for the notification counter to reach a threshold.
    WaitingNotify,
    /// Waiting in the global barrier.
    InBarrier,
    /// Program finished.
    Done,
    /// The process's node crashed; the rank will never finish.
    Lost,
    /// An operation failed terminally (timed out / unreachable); the rank
    /// stopped executing its program.
    Failed,
}

#[derive(Clone, Copy, Debug)]
struct ProcState {
    node: NodeId,
    phase: Phase,
    outstanding: u32,
    last_fetch: Option<i64>,
    /// A request created but not yet sent because its credit was exhausted.
    pending: Option<PendingIssue>,
    completed_ops: u64,
    /// Cumulative notifications received.
    notified: u64,
    /// Threshold a WaitNotify is blocked on.
    notify_threshold: u64,
    /// CHT busy time on this node already charged to this process's compute
    /// (interference bookkeeping).
    cht_busy_seen: SimTime,
    /// The phase this process was in when its node crashed — restored (or
    /// resolved) by the node's reboot. Meaningful only while `phase` is
    /// [`Phase::Lost`] on a node the plan restarts.
    saved_phase: Phase,
    /// The barrier generation at crash time: a revived rank re-joins the
    /// barrier only if the generation it was waiting in has not released.
    saved_barrier_gen: u64,
}

#[derive(Clone, Copy, Debug)]
struct PendingIssue {
    req: ReqId,
    first_hop: NodeId,
}

/// State of one simulated ARMCI mutex (owned by a target rank).
#[derive(Debug, Default)]
struct LockState {
    held_by: Option<Rank>,
    waiting: std::collections::VecDeque<ReqId>,
}

/// Why a simulation — or, under fault injection, a single operation — failed.
///
/// `Deadlock` aborts the whole run. `Unreachable` and `TimedOut` are
/// *per-operation* diagnostics produced by fault-tolerant runs: the issuing
/// rank stops with phase `Failed`, the error is recorded in
/// [`Report::failures`], and the rest of the job keeps running (graceful
/// degradation — the availability number of the resilience experiment).
#[derive(Debug)]
pub enum SimError {
    /// The event queue drained while work was still blocked — a genuine
    /// buffer-dependency deadlock (impossible under LDF; reachable with
    /// custom routers or in adversarial tests).
    Deadlock {
        /// Simulated time of quiescence.
        at: SimTime,
        /// Human-readable description of each blocked entity.
        blocked: Vec<String>,
    },
    /// No live route to the operation's target existed: the target node is
    /// dead, or every legal route-around hop is dead.
    Unreachable {
        /// When the routing decision failed.
        at: SimTime,
        /// The issuing rank.
        rank: Rank,
        /// The operation's sequence number.
        seq: u64,
        /// The node the route was attempted from.
        from: NodeId,
        /// The unreachable target node.
        to: NodeId,
        /// The dead set at decision time.
        dead: Vec<NodeId>,
    },
    /// An arriving open-system client request was shed by admission
    /// control: the client already had its full quota of requests in
    /// flight. A serving-mode diagnostic — the client keeps running (the
    /// next arrival may be admitted); only the first few sheds of a run
    /// are recorded in [`Report::failures`], the rest are counted.
    Overloaded {
        /// When the arrival was shed.
        at: SimTime,
        /// The client rank whose arrival was rejected.
        rank: Rank,
        /// The shed arrival's would-be sequence number.
        seq: u64,
        /// Requests the client had in flight at the decision.
        depth: u32,
        /// The admission bound ([`queue_cap`](crate::config::ServeConfig)).
        cap: u32,
    },
    /// An operation exhausted its retransmission budget without a response.
    TimedOut {
        /// When the final timer expired.
        at: SimTime,
        /// The issuing rank.
        rank: Rank,
        /// The operation's sequence number.
        seq: u64,
        /// Total attempts made (original send + retransmissions).
        attempts: u32,
        /// When the operation was first issued.
        issued: SimTime,
        /// The operation's target node.
        target: NodeId,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock { at, blocked } => {
                write!(f, "deadlock at {at}: {} blocked [", blocked.len())?;
                for (i, b) in blocked.iter().take(8).enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{b}")?;
                }
                write!(f, "]")
            }
            SimError::Unreachable {
                at,
                rank,
                seq,
                from,
                to,
                dead,
            } => write!(
                f,
                "{rank} op #{seq} unreachable at {at}: no live route from \
                 node{from} to node{to} (dead: {dead:?})"
            ),
            SimError::TimedOut {
                at,
                rank,
                seq,
                attempts,
                issued,
                target,
            } => write!(
                f,
                "{rank} op #{seq} to node{target} timed out at {at} after \
                 {attempts} attempts (issued {issued})"
            ),
            SimError::Overloaded {
                at,
                rank,
                seq,
                depth,
                cap,
            } => write!(
                f,
                "{rank} request #{seq} shed at {at}: {depth} in flight \
                 against admission cap {cap}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The engine's forwarding decision procedure, exposed so the static
/// analyzer (`vt-analyze`) can build its buffer-dependency graph from the
/// *same* code path the runtime executes rather than a re-derivation of it.
///
/// Given a request at `current` that arrived over the topology edge
/// `prev → current` (`prev == current` for a request originating here) in
/// escape buffer class `base_class`, returns the next hop on the (extended,
/// route-around) LDF route to `dest` and the class the request travels on —
/// escalated by one exactly when the outgoing edge crosses a lower dimension
/// than the incoming one — or `None` when no live hop exists (the engine
/// then discards the copy and lets the origin's timeout machinery diagnose
/// the operation). With an empty `dead` set this is plain extended LDF and
/// the class never escalates above `base_class`.
///
/// # Panics
/// Panics if `current`/`dest` are out of range or `prev`/`current` are not
/// topology neighbours (unless equal).
pub fn forward_decision(
    shape: &Shape,
    n: u32,
    prev: NodeId,
    current: NodeId,
    dest: NodeId,
    base_class: u8,
    dead: &[NodeId],
) -> Option<(NodeId, u8)> {
    match ldf::next_hop_avoiding(shape, n, current, dest, dead) {
        HopDecision::Hop(h) => Some((h, ldf::forward_class(shape, prev, current, h, base_class))),
        HopDecision::Unreachable | HopDecision::Arrived => None,
    }
}

/// Results of a completed run.
#[derive(Debug)]
pub struct Report {
    /// Time the last rank finished its program.
    pub finish_time: SimTime,
    /// Per-rank and per-op measurements.
    pub metrics: Metrics,
    /// Network traffic counters.
    pub net: vt_simnet::net::NetCounters,
    /// CHT activity aggregated over all nodes.
    pub cht_totals: ChtCounters,
    /// Memory report for node 0's master (the paper's Fig. 5 quantity).
    pub memory_node0: crate::memory::NodeMemory,
    /// Total events processed.
    pub events: u64,
    /// The eight busiest physical links `(slot, direction, bytes)` —
    /// tree saturation around hot nodes made visible.
    pub top_links: Vec<(u32, u8, u64)>,
    /// Fault-recovery activity (all zero without a fault plan).
    pub faults: FaultStats,
    /// Request-coalescing activity (all zero with coalescing off).
    pub coalesce: CoalesceStats,
    /// Membership / live-repair activity (all zero with membership off).
    pub repair: RepairStats,
    /// Open-system serving activity (all zero with serving off).
    pub serve: ServeStats,
    /// Per-request latency samples (µs) of every completed serve request,
    /// in completion order — the raw series the p50/p99/p99.9 report
    /// quantiles are computed from. Empty with serving off.
    pub serve_latencies_us: Vec<f64>,
    /// Final fetch-&-add counter value per rank — the ground truth the
    /// differential (coalescing on vs off) tests compare.
    pub fetch_finals: Vec<i64>,
    /// Per-operation terminal failures (timed out / unreachable), in the
    /// order they occurred.
    pub failures: Vec<SimError>,
    /// Ranks whose node crashed mid-run.
    pub lost_ranks: Vec<u32>,
    /// Credits still in flight at quiescence on accounts whose sender is
    /// alive — a live sender holding a buffer after everything drained is
    /// a protocol leak. Credits stranded by dead senders (the crashed
    /// node's buffers die with it) are excluded. Must be zero; the model
    /// checker in `vt-analyze` proves the same property exhaustively for
    /// small N.
    pub credit_leaks: u64,
}

impl Report {
    /// Fraction of ranks that completed their program (neither lost to a
    /// crash nor failed on an operation) — the resilience experiment's
    /// availability metric.
    pub fn availability(&self) -> f64 {
        let n = self.metrics.per_rank.len();
        if n == 0 {
            return 1.0;
        }
        let failed: std::collections::BTreeSet<u32> = self
            .failures
            .iter()
            .filter_map(|e| match e {
                SimError::Unreachable { rank, .. } | SimError::TimedOut { rank, .. } => {
                    Some(rank.0)
                }
                // A shed arrival is flow control, not a failed rank: the
                // client stays up and keeps offering load.
                SimError::Deadlock { .. } | SimError::Overloaded { .. } => None,
            })
            .chain(self.lost_ranks.iter().copied())
            .collect();
        (n - failed.len()) as f64 / n as f64
    }
}

/// The runtime engine. Use [`crate::Simulation`] for the friendly façade.
pub struct Engine {
    cfg: RuntimeConfig,
    topo: Grid,
    layout: Layout,
    net: Network,
    queue: EventQueue<Event>,
    programs: Vec<Box<dyn Program>>,
    procs: Vec<ProcState>,
    chts: Vec<Cht>,
    credits: CreditManager,
    requests: Vec<Request>,
    free_reqs: Vec<ReqId>,
    /// Coalesced-envelope slab (coalescing runs only).
    envelopes: Vec<EnvState>,
    free_envs: Vec<u32>,
    /// Run-wide coalescing counters.
    coalesce: CoalesceStats,
    /// Ranks currently waiting in the barrier.
    barrier_waiting: Vec<Rank>,
    barrier_scheduled: bool,
    done_count: u32,
    fetch_counters: Vec<i64>,
    /// Mutex state per target rank: current holder and FIFO of queued lock
    /// requests (their responses are deferred until the grant).
    locks: FxHashMap<Rank, LockState>,
    metrics: Metrics,
    /// Per-node extra CHT cost from buffer-pool cache pressure.
    cht_pool_extra: Vec<SimTime>,
    /// Per-node accumulated CHT busy time (interference source).
    cht_busy_total: Vec<SimTime>,
    /// The topology's grid shape (cached clone: route-around needs it while
    /// the rest of the engine is mutably borrowed).
    shape: Shape,
    /// Node crashes scheduled by the fault plan.
    crash_plan: Vec<NodeCrash>,
    /// Node reboots scheduled by the fault plan.
    restart_plan: Vec<NodeRestart>,
    /// Reboot instant per node, from the plan (`None` = never reboots).
    /// Consulted by the timeout machinery: a Lost origin whose node has a
    /// reboot still ahead keeps its timers alive so the revived rank
    /// retransmits with the same sequence numbers.
    restart_time: Vec<Option<SimTime>>,
    /// Partition windows scheduled by the fault plan, in plan order (heal
    /// events index into this; the failure detector's grace shield scans
    /// it).
    partition_plan: Vec<PartitionWindow>,
    /// Barrier generations released so far (see `ProcState::
    /// saved_barrier_gen`).
    barrier_gen: u64,
    /// Rebooted nodes un-confirmed since the last epoch commit; the commit
    /// that re-admits them counts them as rejoins.
    pending_rejoins: u64,
    /// Nodes that have crashed so far, sorted (the route-around dead set).
    dead: Vec<NodeId>,
    /// Ranks lost to crashes / failed on an operation.
    lost_count: u32,
    failed_count: u32,
    /// Next logical-operation sequence number.
    next_seq: u64,
    /// Origin-side completion set: `(rank, seq)` of every operation whose
    /// first response arrived. Later (duplicate) responses and stale
    /// timeouts check here. Fault runs only.
    op_done: FxHashSet<(u32, u64)>,
    /// Target-side dedup table for exactly-once execution of retried
    /// non-idempotent operations. Fault runs only.
    seen: FxHashMap<(u32, u64), DedupState>,
    failures: Vec<SimError>,
    faults: FaultStats,
    /// Failure detector + epoch/repair state (inert unless
    /// `cfg.membership.enabled` and a fault plan is installed).
    membership: MembershipState,
    /// Open-system serving state (inert unless `cfg.serve.enabled`).
    serve: ServeState,
}

/// Live serving-mode state: per-client arrival generators and retry
/// budgets, the metastability guard, the skew detector, and the counters
/// the serve report is built from. Inert (empty vectors, zero counters)
/// with serving off.
struct ServeState {
    /// Activity counters for the report.
    stats: ServeStats,
    /// Per-client arrival generators, indexed by rank. Empty with serving
    /// off.
    gens: Vec<ArrivalGen>,
    /// Remaining retry budget per client.
    budget: Vec<u32>,
    /// Arrivals seen in the current detector tick window.
    win_arrivals: u64,
    /// Admission sheds in the current detector tick window.
    win_sheds: u64,
    /// The metastability guard is engaged: retransmissions are suppressed
    /// until the windowed shed fraction falls back under the threshold.
    guard_active: bool,
    /// Admitted serve requests still in flight (keeps the detector ticking
    /// through the post-horizon drain).
    active: u32,
    /// Clients whose arrival stream has passed the horizon.
    arrivals_done: u32,
    /// Consecutive detector ticks that saw hot-spot skew at or above the
    /// threshold.
    skew_streak: u32,
    /// A load-triggered re-pack was already requested this run (one per
    /// run: the escalation is a step, not a control loop).
    repacked: bool,
    /// A load-triggered `EpochCommit` is in flight; the commit that lands
    /// it counts toward `stats.load_repacks`.
    pending_load_repack: bool,
    /// Per-node CHT busy time as of the previous detector tick (the skew
    /// signal is the busy-time *delta* per tick: queueing hides inside the
    /// network's time reservations, so CHT queue length alone stays flat
    /// even at a saturated hot spot). Lazily sized on the first tick.
    busy_seen: Vec<SimTime>,
    /// Completed-request latencies (µs), in completion order.
    latencies_us: Vec<f64>,
}

impl ServeState {
    fn inert() -> Self {
        ServeState {
            stats: ServeStats::default(),
            gens: Vec::new(),
            budget: Vec::new(),
            win_arrivals: 0,
            win_sheds: 0,
            guard_active: false,
            active: 0,
            arrivals_done: 0,
            skew_streak: 0,
            repacked: false,
            pending_load_repack: false,
            busy_seen: Vec::new(),
            latencies_us: Vec::new(),
        }
    }
}

/// The next rung up the contention-attenuation ladder from `kind`, if one
/// exists and covers `n` nodes: each step trades edge degree for forwarding
/// depth, attenuating many-to-one convergence at a hot node. `None` from
/// the hypercube (already minimal-degree) or when the candidate cannot
/// cover `n`.
fn escalate_kind(kind: TopologyKind, n: u32) -> Option<TopologyKind> {
    let next = match kind {
        TopologyKind::Fcg => Some(TopologyKind::Mfcg),
        TopologyKind::Mfcg => Some(TopologyKind::Cfcg),
        TopologyKind::Cfcg => Some(TopologyKind::KFcg(4)),
        TopologyKind::KFcg(k) => k.checked_add(1).map(TopologyKind::KFcg),
        TopologyKind::Hypercube => None,
    };
    next.filter(|k| k.supports(n))
}

/// Certifier consulted on every rung of the repair fallback ladder before
/// an epoch commits: given a topology kind and a survivor count, accept the
/// repaired packing or refuse it (falling the repair to the next-lower
/// rung, ultimately the FCG over the survivors).
///
/// A plain function pointer so the layers above `vt-armci` can inject
/// `vt_analyze::certify_repair` without a dependency cycle (`vt-analyze`
/// depends on this crate). Without a certifier installed, repairs use the
/// structural `TopologyKind::supports`/`try_build` checks only.
pub type RepairCertifier = fn(TopologyKind, u32) -> Result<(), String>;

/// Live membership view: the failure detector's evidence, the current
/// epoch, and the post-repair survivor packing (once one committed).
struct MembershipState {
    /// Current membership epoch; requests are stamped with it at issue.
    epoch: u64,
    /// Last liveness evidence per node.
    last_heard: Vec<SimTime>,
    /// EWMA of inter-evidence intervals per node (ns) — the phi-accrual
    /// expectation a silence is judged against.
    mean_interval_ns: Vec<f64>,
    /// Nodes currently over the phi threshold (de-dupes suspicion counts
    /// until fresh evidence clears the doubt).
    suspected: Vec<bool>,
    /// Confirmed-dead nodes, sorted — the set the next repair packs
    /// around. Lags the engine's omniscient `dead` set by detection time.
    confirmed: Vec<NodeId>,
    /// An `EpochCommit` is scheduled (a drain window is running).
    pending_commit: bool,
    /// The committed survivor packing; `None` until the first repair.
    packing: Option<SurvivorPacking>,
    /// Repair activity counters.
    stats: RepairStats,
    /// External per-rung repair certifier (see [`RepairCertifier`]).
    certifier: Option<RepairCertifier>,
    /// The topology kind the next epoch commit packs into. Starts as the
    /// configured kind (crash repairs re-pack in place); a load-triggered
    /// re-pack escalates it one rung up the attenuation ladder.
    repack_kind: TopologyKind,
}

impl MembershipState {
    fn new(n_nodes: u32, expected_interval: SimTime, repack_kind: TopologyKind) -> Self {
        MembershipState {
            epoch: 0,
            last_heard: vec![SimTime::ZERO; n_nodes as usize],
            mean_interval_ns: vec![expected_interval.as_nanos() as f64; n_nodes as usize],
            suspected: vec![false; n_nodes as usize],
            confirmed: Vec::new(),
            pending_commit: false,
            packing: None,
            stats: RepairStats::default(),
            certifier: None,
            repack_kind,
        }
    }
}

/// Target-side record of an operation that already arrived at least once.
#[derive(Clone, Copy, Debug)]
enum DedupState {
    /// The first copy is still being handled (e.g. a queued lock): drop
    /// duplicates silently, the original will respond.
    Pending,
    /// The operation was applied and responded to with this value:
    /// re-respond to duplicates without re-applying.
    Done(Option<i64>),
}

impl Engine {
    /// Builds an engine for `cfg` with one program per rank.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or `programs` does not have
    /// exactly one entry per rank.
    pub fn new(cfg: RuntimeConfig, programs: Vec<Box<dyn Program>>) -> Self {
        Self::with_faults(cfg, programs, &FaultPlan::default())
    }

    /// Builds an engine that runs `cfg` under the deterministic fault
    /// schedule `plan`. An empty plan produces an engine whose timeline is
    /// byte-identical to [`Engine::new`]'s — the fault layer costs nothing
    /// when disabled.
    ///
    /// # Panics
    /// Panics if the configuration or the fault plan is invalid.
    pub fn with_faults(
        cfg: RuntimeConfig,
        programs: Vec<Box<dyn Program>>,
        plan: &FaultPlan,
    ) -> Self {
        cfg.validate();
        assert_eq!(
            programs.len(),
            cfg.n_procs as usize,
            "need exactly one program per rank"
        );
        let layout = Layout::new(cfg.n_procs, cfg.procs_per_node);
        let n_nodes = layout.num_nodes();
        let topo = cfg.topology.build(n_nodes);
        let net = Network::with_faults(cfg.net, n_nodes, plan);
        let procs = (0..cfg.n_procs)
            .map(|r| ProcState {
                node: layout.node_of(Rank(r)),
                phase: Phase::Running,
                outstanding: 0,
                last_fetch: None,
                pending: None,
                completed_ops: 0,
                notified: 0,
                notify_threshold: 0,
                cht_busy_seen: SimTime::ZERO,
                saved_phase: Phase::Running,
                saved_barrier_gen: 0,
            })
            .collect();
        let chts = (0..n_nodes).map(|_| Cht::new()).collect();
        let metrics = Metrics::new(cfg.n_procs, cfg.record_ops);
        let cht_pool_extra = (0..n_nodes)
            .map(|node| {
                let pool = crate::memory::node_memory(&cfg, &topo, node).cht_pool_bytes;
                let mib = pool as f64 / (1024.0 * 1024.0);
                SimTime::from_nanos((mib * cfg.cht.cache_ns_per_pool_mib).round() as u64)
            })
            .collect();
        let shape = topo.shape().clone();
        let serve = if cfg.serve.enabled {
            // Per-client arrival streams on forked sub-streams: adding or
            // reordering clients never perturbs another client's arrivals.
            let root = DetRng::new(cfg.seed);
            ServeState {
                gens: (0..cfg.n_procs)
                    .map(|r| {
                        ArrivalGen::new(
                            cfg.serve.arrivals,
                            root.fork(0x5345_5256_0000_0000 | u64::from(r)),
                        )
                    })
                    .collect(),
                budget: vec![cfg.serve.retry_budget; cfg.n_procs as usize],
                ..ServeState::inert()
            }
        } else {
            ServeState::inert()
        };
        Engine {
            serve,
            credits: CreditManager::new(cfg.buffers_per_proc),
            procs,
            chts,
            requests: Vec::new(),
            free_reqs: Vec::new(),
            envelopes: Vec::new(),
            free_envs: Vec::new(),
            coalesce: CoalesceStats::default(),
            barrier_waiting: Vec::new(),
            barrier_scheduled: false,
            done_count: 0,
            fetch_counters: vec![0; cfg.n_procs as usize],
            locks: FxHashMap::default(),
            metrics,
            cht_pool_extra,
            cht_busy_total: vec![SimTime::ZERO; n_nodes as usize],
            queue: EventQueue::new(),
            programs,
            shape,
            crash_plan: plan.node_crashes.clone(),
            restart_plan: plan.node_restarts.clone(),
            restart_time: (0..n_nodes).map(|n| plan.restart_time(n)).collect(),
            partition_plan: plan.partitions.clone(),
            barrier_gen: 0,
            pending_rejoins: 0,
            dead: Vec::new(),
            lost_count: 0,
            failed_count: 0,
            next_seq: 0,
            op_done: FxHashSet::default(),
            seen: FxHashMap::default(),
            failures: Vec::new(),
            faults: FaultStats::default(),
            membership: MembershipState::new(
                n_nodes,
                cfg.membership.heartbeat_period,
                cfg.topology,
            ),
            net,
            topo,
            layout,
            cfg,
        }
    }

    /// Whether a fault plan is active (gates every piece of recovery
    /// machinery so fault-free runs schedule exactly the same events as
    /// before the fault layer existed).
    fn faults_on(&self) -> bool {
        self.net.faults_enabled()
    }

    /// Whether the membership layer is live: it needs both the config
    /// switch and a fault plan (a fault-free run has nothing to detect and
    /// must stay byte-identical to a build without the subsystem).
    fn membership_on(&self) -> bool {
        self.cfg.membership.enabled && self.faults_on()
    }

    /// Whether open-system serving is live.
    fn serve_on(&self) -> bool {
        self.cfg.serve.enabled
    }

    /// Whether the recovery machinery (per-request timers, target-side
    /// dedup, no-reuse slab discipline) is live. Serving needs it even
    /// without a fault plan: past saturation, responses outlive their
    /// timeouts routinely, and retransmissions must stay exactly-once.
    /// Without a plan the network's faulted paths degrade to the plain
    /// ones, so this substitution alone changes no timing.
    fn recovery_on(&self) -> bool {
        self.faults_on() || self.serve_on()
    }

    /// Whether membership *epochs* (stale-copy rejection, epoch stamping)
    /// are live: under the membership detector, or under serving with
    /// load-triggered re-packing (which commits epochs without a failure
    /// detector).
    fn epochs_on(&self) -> bool {
        self.membership_on() || (self.serve_on() && self.cfg.serve.load_repack)
    }

    /// Whether serving still has arrivals to generate or admitted work in
    /// flight — the liveness condition for the detector tick.
    fn serve_live(&self) -> bool {
        self.serve.arrivals_done < self.cfg.n_procs || self.serve.active > 0
    }

    /// Installs the external topology certifier consulted on every rung of
    /// the repair fallback ladder before an epoch commits (typically
    /// `vt_analyze::certify_repair`, injected from the layers above to
    /// avoid a dependency cycle). Without one, repairs rely on structural
    /// checks only.
    pub fn set_repair_certifier(&mut self, certifier: RepairCertifier) {
        self.membership.certifier = Some(certifier);
    }

    /// Ranks that can no longer enter the barrier or finish.
    fn finished_count(&self) -> u32 {
        self.done_count + self.lost_count + self.failed_count
    }

    /// The virtual topology in use.
    pub fn topology(&self) -> &Grid {
        &self.topo
    }

    /// The rank/node layout.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Runs to completion.
    ///
    /// # Errors
    /// Returns [`SimError::Deadlock`] if the system quiesces with blocked
    /// work.
    pub fn run(mut self) -> Result<Report, SimError> {
        for r in 0..self.cfg.n_procs {
            self.queue
                .schedule(SimTime::ZERO, Event::ProcReady(Rank(r)));
        }
        let crashes = std::mem::take(&mut self.crash_plan);
        for c in &crashes {
            self.queue.schedule(c.at, Event::NodeCrash { node: c.node });
        }
        let restarts = std::mem::take(&mut self.restart_plan);
        for r in &restarts {
            self.queue
                .schedule(r.at, Event::NodeRestart { node: r.node });
        }
        // The plan stays resident (the detector's grace shield scans it);
        // only the heal events are scheduled here.
        for (idx, w) in self.partition_plan.iter().enumerate() {
            self.queue
                .schedule(w.until, Event::PartitionHeal { idx: idx as u32 });
        }
        if self.membership_on() {
            self.queue
                .schedule(self.cfg.membership.heartbeat_period, Event::MembershipTick);
        }
        if self.serve_on() {
            for r in 0..self.cfg.n_procs {
                self.schedule_next_arrival(Rank(r));
            }
            self.queue.schedule(self.cfg.serve.tick, Event::ServeTick);
        }
        while let Some((now, ev)) = self.queue.pop() {
            self.dispatch(now, ev);
        }
        if self.finished_count() < self.cfg.n_procs {
            return Err(self.deadlock_report());
        }
        // Serving clients are `Done` from the start; the serving makespan is
        // when the last admitted request drained, i.e. quiescence.
        let finish_time = if self.serve_on() {
            self.queue.now()
        } else {
            self.metrics
                .per_rank
                .iter()
                .map(|s| s.done_at)
                .max()
                .unwrap_or(SimTime::ZERO)
        };
        let mut cht_totals = ChtCounters::default();
        for c in &self.chts {
            cht_totals.serviced += c.counters.serviced;
            cht_totals.forwarded += c.counters.forwarded;
            cht_totals.wakeups += c.counters.wakeups;
            cht_totals.parked += c.counters.parked;
            cht_totals.max_queue = cht_totals.max_queue.max(c.counters.max_queue);
            cht_totals.fwd_messages += c.counters.fwd_messages;
            cht_totals.envelopes += c.counters.envelopes;
            cht_totals.coalesced += c.counters.coalesced;
        }
        let memory_node0 = crate::memory::node_memory(&self.cfg, &self.topo, 0);
        let top_links = self.net.top_links(8);
        let lost_ranks = (0..self.cfg.n_procs)
            .filter(|&r| self.procs[r as usize].phase == Phase::Lost)
            .collect();
        let fetch_finals = std::mem::take(&mut self.fetch_counters);
        // A credit still held at quiescence is a leak unless its sender or
        // either edge endpoint died — crashed buffers (and the acks that
        // would have released them) legitimately vanish with the node.
        let credit_leaks = self
            .credits
            .accounts()
            .into_iter()
            .filter(|&(key, used)| {
                used > 0
                    && !self.dead.contains(&key.edge.0)
                    && !self.dead.contains(&key.edge.1)
                    && match key.sender {
                        Sender::Cht(n) => !self.dead.contains(&n),
                        Sender::Proc(r) => {
                            !matches!(self.procs[r.idx()].phase, Phase::Lost | Phase::Failed)
                        }
                    }
            })
            .map(|(_, used)| u64::from(used))
            .sum();
        Ok(Report {
            finish_time,
            metrics: self.metrics,
            net: self.net.counters(),
            cht_totals,
            memory_node0,
            events: self.queue.processed(),
            top_links,
            faults: self.faults,
            coalesce: self.coalesce,
            repair: self.membership.stats,
            serve: self.serve.stats,
            serve_latencies_us: self.serve.latencies_us,
            failures: self.failures,
            lost_ranks,
            fetch_finals,
            credit_leaks,
        })
    }

    fn deadlock_report(&self) -> SimError {
        let mut blocked: Vec<String> = self
            .credits
            .blocked()
            .into_iter()
            .map(|(key, waiter)| format!("{waiter:?} on edge {:?}", key.edge))
            .collect();
        for (r, p) in self.procs.iter().enumerate() {
            if !matches!(
                p.phase,
                Phase::Done | Phase::WaitingCredit | Phase::Lost | Phase::Failed
            ) {
                blocked.push(format!("rank{r} stuck in {:?}", p.phase));
            }
        }
        blocked.sort();
        SimError::Deadlock {
            at: self.queue.now(),
            blocked,
        }
    }

    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::ProcReady(rank) => self.proc_ready(now, rank),
            Event::RequestArrive { req, node } => self.request_arrive(now, req, node),
            Event::ChtTryStart { node } => self.cht_try_start(now, node),
            Event::ChtDone { node, req } => self.cht_done(now, node, req),
            Event::AckArrive { key } => self.ack_arrive(now, key),
            Event::ResponseArrive { req } => self.response_arrive(now, req),
            Event::NotifyArrive { target } => self.notify_rank(now, target),
            Event::BarrierRelease => self.barrier_release(now),
            Event::Timeout { req } => self.timeout_fire(now, req),
            Event::NodeCrash { node } => self.node_crash(now, node),
            Event::NodeRestart { node } => self.node_restart(now, node),
            Event::PartitionHeal { idx } => self.partition_heal(now, idx),
            Event::RejoinAnnounce { node } => self.rejoin_announce(now, node),
            Event::ChtEnvDone { node, env } => self.cht_env_done(now, node, env),
            Event::EnvelopeArrive { env, node } => self.envelope_arrive(now, env, node),
            Event::MembershipTick => self.membership_tick(now),
            Event::ProbeArrive { node, prober } => self.probe_arrive(now, node, prober),
            Event::ProbeAck { node } => self.heard_from(node, now),
            Event::EpochCommit => self.epoch_commit(),
            Event::ClientArrival { rank } => self.client_arrival(now, rank),
            Event::ServeTick => self.serve_tick(now),
        }
    }

    // ----- process side ---------------------------------------------------

    fn proc_ready(&mut self, now: SimTime, rank: Rank) {
        if matches!(
            self.procs[rank.idx()].phase,
            Phase::Done | Phase::Lost | Phase::Failed
        ) {
            return;
        }
        self.procs[rank.idx()].phase = Phase::Running;
        let ctx = ProcCtx {
            rank,
            now,
            completed_ops: self.procs[rank.idx()].completed_ops,
            last_fetch: self.procs[rank.idx()].last_fetch,
            notified: self.procs[rank.idx()].notified,
        };
        let action = self.programs[rank.idx()].next(&ctx);
        match action {
            Action::Done => {
                self.procs[rank.idx()].phase = Phase::Done;
                self.done_count += 1;
                self.metrics.rank_done(rank, now);
                self.maybe_release_barrier(now);
            }
            Action::Compute(d) => {
                // CHT interference: stretch compute by this process's share
                // of the CHT busy time accrued since its last compute block.
                let node = self.procs[rank.idx()].node;
                let delta =
                    self.cht_busy_total[node as usize] - self.procs[rank.idx()].cht_busy_seen;
                self.procs[rank.idx()].cht_busy_seen = self.cht_busy_total[node as usize];
                let steal = SimTime::from_nanos(
                    (delta.as_nanos() as f64 * self.cfg.cht.cht_interference
                        / f64::from(self.cfg.procs_per_node))
                    .round() as u64,
                );
                self.queue.schedule(now + d + steal, Event::ProcReady(rank));
            }
            Action::Barrier => {
                self.procs[rank.idx()].phase = Phase::InBarrier;
                self.barrier_waiting.push(rank);
                self.maybe_release_barrier(now);
            }
            Action::Op(op) => self.issue_op(now, rank, op, true),
            Action::OpAsync(op) => {
                self.issue_op(now, rank, op, false);
                // issue_op leaves phase Running unless credit-blocked.
                if self.procs[rank.idx()].phase == Phase::Running {
                    self.queue
                        .schedule(now + self.cfg.issue_overhead, Event::ProcReady(rank));
                }
            }
            Action::WaitAll => {
                if self.procs[rank.idx()].outstanding == 0 {
                    self.queue.schedule(now, Event::ProcReady(rank));
                } else {
                    self.procs[rank.idx()].phase = Phase::Fencing;
                }
            }
            Action::WaitNotify(threshold) => {
                if self.procs[rank.idx()].notified >= threshold {
                    self.queue.schedule(now, Event::ProcReady(rank));
                } else {
                    self.procs[rank.idx()].phase = Phase::WaitingNotify;
                    self.procs[rank.idx()].notify_threshold = threshold;
                }
            }
        }
    }

    fn maybe_release_barrier(&mut self, now: SimTime) {
        if self.barrier_scheduled || self.barrier_waiting.is_empty() {
            return;
        }
        if self.barrier_waiting.len() as u32 + self.finished_count() == self.cfg.n_procs {
            let stages = 32 - (self.cfg.n_procs.max(2) - 1).leading_zeros();
            let latency = self.cfg.barrier_stage * u64::from(stages);
            self.barrier_scheduled = true;
            self.queue.schedule(now + latency, Event::BarrierRelease);
        }
    }

    fn barrier_release(&mut self, now: SimTime) {
        self.barrier_scheduled = false;
        self.barrier_gen += 1;
        let waiting = std::mem::take(&mut self.barrier_waiting);
        for rank in waiting {
            self.queue.schedule(now, Event::ProcReady(rank));
        }
    }

    fn alloc_request(&mut self, req: Request) -> ReqId {
        if let Some(id) = self.free_reqs.pop() {
            self.requests[id as usize] = req;
            id
        } else {
            self.requests.push(req);
            (self.requests.len() - 1) as ReqId
        }
    }

    fn free_request(&mut self, id: ReqId) {
        debug_assert!(self.requests[id as usize].live);
        self.requests[id as usize].live = false;
        // Under the recovery machinery (faults or serving), slab ids are
        // never reused: duplicate copies and stale timeouts may still
        // reference an id after its operation completed, and a recycled
        // slot would let them corrupt a newer request's state.
        if !self.recovery_on() {
            self.free_reqs.push(id);
        }
    }

    fn issue_op(&mut self, now: SimTime, rank: Rank, op: Op, blocking: bool) {
        self.issue_op_inner(now, rank, op, blocking, false);
    }

    fn issue_op_inner(&mut self, now: SimTime, rank: Rank, op: Op, blocking: bool, serve: bool) {
        assert!(
            op.target.0 < self.cfg.n_procs,
            "op targets unknown {}",
            op.target
        );
        let src_node = self.procs[rank.idx()].node;
        let target_node = self.layout.node_of(op.target);
        self.procs[rank.idx()].outstanding += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        let req = self.alloc_request(Request {
            op,
            origin: rank,
            origin_node: src_node,
            target_node,
            issued: now,
            prev_sender: Sender::Proc(rank),
            prev_node: src_node,
            blocking,
            resp_value: None,
            credit_held: false,
            live: true,
            seq,
            attempt: 0,
            vc_class: 0,
            fwd_next: src_node,
            fwd_class: 0,
            env_slot: NO_ENV,
            epoch: self.membership.epoch,
            serve,
            backoff_prev: self.cfg.retry.timeout,
        });

        if target_node == src_node {
            // Intra-node: served through shared memory, no CHT, no credits.
            let copy =
                SimTime::from_nanos((op.bytes as f64 * self.cfg.shm_per_byte_ns).round() as u64);
            let done = now + self.cfg.issue_overhead + self.net.config().shm_latency + copy;
            match op.kind {
                OpKind::FetchAdd => {
                    self.apply_fetch_add(req);
                    self.queue.schedule(done, Event::ResponseArrive { req });
                }
                OpKind::Lock => {
                    let state = self.locks.entry(op.target).or_default();
                    if state.held_by.is_none() {
                        state.held_by = Some(rank);
                        self.queue.schedule(done, Event::ResponseArrive { req });
                    } else {
                        state.waiting.push_back(req);
                    }
                }
                OpKind::Unlock => {
                    let state = self.locks.entry(op.target).or_default();
                    if state.held_by == Some(rank) {
                        state.held_by = None;
                        self.queue.schedule(done, Event::ResponseArrive { req });
                        self.grant_lock_next(now, op.target);
                    } else {
                        self.queue.schedule(done, Event::ResponseArrive { req });
                    }
                }
                _ => {
                    self.queue.schedule(done, Event::ResponseArrive { req });
                }
            }
            if op.notify {
                self.queue
                    .schedule(done, Event::NotifyArrive { target: op.target });
            }
        } else if op.kind.is_direct() {
            // RDMA path: request to the target NIC, hardware-level response.
            let t0 = now + self.cfg.issue_overhead;
            if self.faults_on() {
                if self.node_gone(target_node, now) {
                    self.rank_fail(now, rank, req);
                    return;
                }
                self.send_direct(t0, req);
                self.arm_timeout(t0, req);
            } else {
                let d1 = self.net.send(t0, src_node, target_node, op.request_bytes());
                let d2 = self
                    .net
                    .send(d1.at, target_node, src_node, op.response_bytes());
                self.queue.schedule(d2.at, Event::ResponseArrive { req });
                if op.notify {
                    self.queue
                        .schedule(d1.at, Event::NotifyArrive { target: op.target });
                }
            }
        } else {
            // CHT path over the virtual topology.
            let first = if self.recovery_on() {
                let (decision, rerouted) = self.first_hop(src_node, target_node);
                match decision {
                    HopDecision::Hop(h) => {
                        if rerouted {
                            self.faults.reroutes += 1;
                        }
                        Some(h)
                    }
                    HopDecision::Unreachable => {
                        if (self.membership_on() || self.revival_ahead(now))
                            && !self.node_gone(target_node, now)
                        {
                            // No live route *yet* — the target will live but
                            // an escape-critical node is down. Park the
                            // operation on its retry timer; either the
                            // detector confirms the crash and the repaired
                            // packing routes the retransmission, or the
                            // scheduled reboot restores the original route.
                            self.arm_timeout(now + self.cfg.issue_overhead, req);
                            None
                        } else {
                            self.rank_fail(now, rank, req);
                            return;
                        }
                    }
                    HopDecision::Arrived => unreachable!("distinct nodes"),
                }
            } else {
                match self.topo.next_hop(src_node, target_node) {
                    Some(h) => Some(h),
                    None => {
                        // A total forwarding table has a hop for every
                        // distinct live pair; a miswired custom topology is
                        // diagnosed as unreachable rather than panicking.
                        self.rank_fail(now, rank, req);
                        return;
                    }
                }
            };
            if let Some(first) = first {
                let key = CreditKey {
                    sender: Sender::Proc(rank),
                    edge: (src_node, first),
                    class: 0,
                };
                self.requests[req as usize].fwd_next = first;
                self.requests[req as usize].fwd_class = 0;
                if self.credits.try_acquire(key) {
                    let t0 = now + self.cfg.issue_overhead;
                    self.send_request(t0, req, src_node, first);
                    self.arm_timeout(t0, req);
                } else if serve {
                    // A serve client is `Done` and may have several
                    // requests waiting for first-hop credits at once; the
                    // single-slot `pending` park is a process-blocking
                    // mechanism. Park the request itself, like a
                    // retransmission, with its timer covering the wait.
                    self.credits.wait(key, Waiter::Retry { req });
                    self.arm_timeout(now + self.cfg.issue_overhead, req);
                } else {
                    self.credits.wait(key, Waiter::Proc(rank));
                    self.procs[rank.idx()].pending = Some(PendingIssue {
                        req,
                        first_hop: first,
                    });
                    self.procs[rank.idx()].phase = Phase::WaitingCredit;
                    return;
                }
            }
        }
        if blocking {
            self.procs[rank.idx()].phase = Phase::WaitingResponse;
        }
    }

    /// Fails `rank`'s in-flight operation `req` as unreachable: records the
    /// diagnostic and stops the rank (graceful degradation).
    fn rank_fail(&mut self, now: SimTime, rank: Rank, req: ReqId) {
        let r = self.requests[req as usize];
        self.fail_with(
            now,
            rank,
            SimError::Unreachable {
                at: now,
                rank,
                seq: r.seq,
                from: r.origin_node,
                to: r.target_node,
                dead: self.dead.clone(),
            },
        );
    }

    /// Marks `rank` terminally failed with `err` unless it already finished.
    fn fail_with(&mut self, now: SimTime, rank: Rank, err: SimError) {
        self.faults.failed_ops += 1;
        let phase = self.procs[rank.idx()].phase;
        if matches!(phase, Phase::Done | Phase::Lost | Phase::Failed) {
            // The rank already finished or died; keep the diagnostic only.
            self.failures.push(err);
            return;
        }
        if phase == Phase::InBarrier {
            self.barrier_waiting.retain(|&r| r != rank);
        }
        self.procs[rank.idx()].phase = Phase::Failed;
        self.failed_count += 1;
        self.failures.push(err);
        self.maybe_release_barrier(now);
    }

    /// Arms the per-request response timer for `req`'s current attempt.
    ///
    /// With jitter enabled (always on for serve-mode requests, opt-in via
    /// [`RetryConfig::jitter`](crate::RetryConfig::jitter) otherwise) the
    /// delay is drawn from the capped decorrelated-jitter distribution: a
    /// pure function of `(seed, seq, attempt)`, so replays of the same
    /// timeline redraw identical delays.
    fn arm_timeout(&mut self, now: SimTime, req: ReqId) {
        if !self.recovery_on() {
            return;
        }
        let r = &self.requests[req as usize];
        let jitter = self.cfg.retry.jitter || r.serve;
        let delay = if r.attempt == 0 || !jitter {
            self.cfg.retry.deadline(r.attempt)
        } else {
            let mut rng =
                DetRng::new(self.cfg.seed ^ 0xB0FF).fork(r.seq ^ (u64::from(r.attempt) << 48));
            let d = self.cfg.retry.decorrelated(r.backoff_prev, &mut rng);
            self.requests[req as usize].backoff_prev = d;
            d
        };
        self.queue.schedule(now + delay, Event::Timeout { req });
    }

    /// Sends a direct (RDMA-path) request under faults: dropped messages
    /// are simply lost — the origin's timer recovers them.
    fn send_direct(&mut self, t0: SimTime, req: ReqId) {
        let r = self.requests[req as usize];
        match self
            .net
            .send_faulted(t0, r.origin_node, r.target_node, r.op.request_bytes())
        {
            SendOutcome::Dropped { .. } => {}
            SendOutcome::Delivered(d1) => {
                let Some(d1) = self.checksum(d1) else {
                    return; // Corrupt request: the target discards it.
                };
                if r.op.notify {
                    // Exactly-once notification across retransmissions.
                    let fresh = self
                        .seen
                        .insert((r.origin.0, r.seq), DedupState::Pending)
                        .is_none();
                    if fresh {
                        self.queue.schedule(
                            d1.at,
                            Event::NotifyArrive {
                                target: r.op.target,
                            },
                        );
                    } else {
                        self.faults.dedup_hits += 1;
                    }
                }
                match self.net.send_faulted(
                    d1.at,
                    r.target_node,
                    r.origin_node,
                    r.op.response_bytes(),
                ) {
                    SendOutcome::Dropped { .. } => {}
                    SendOutcome::Delivered(d2) => {
                        if self.checksum(d2).is_some() {
                            self.queue.schedule(d2.at, Event::ResponseArrive { req });
                        }
                    }
                }
            }
        }
    }

    /// Puts a request on the wire towards `to` at time `at`. Under faults a
    /// dropped copy schedules a delayed reclaim of the hop's buffer credit
    /// (the upstream sender's local ack-timeout); the origin's response
    /// timer recovers the operation itself.
    fn send_request(&mut self, at: SimTime, req: ReqId, from: NodeId, to: NodeId) {
        let bytes = self.requests[req as usize].op.request_bytes();
        if !self.faults_on() {
            let d = self.net.send(at, from, to, bytes);
            self.queue
                .schedule(d.at, Event::RequestArrive { req, node: to });
            return;
        }
        let destroyed_at = match self.net.send_faulted(at, from, to, bytes) {
            SendOutcome::Delivered(d) => match self.checksum(d) {
                Some(d) => {
                    self.queue
                        .schedule(d.at, Event::RequestArrive { req, node: to });
                    return;
                }
                // A corrupt request is discarded at delivery: from the
                // credit machinery's view the copy was destroyed then.
                None => d.at,
            },
            SendOutcome::Dropped { at: drop_at, .. } => drop_at,
        };
        let r = self.requests[req as usize];
        self.reclaim_later(
            destroyed_at,
            CreditKey {
                sender: r.prev_sender,
                edge: (from, to),
                class: r.vc_class,
            },
        );
    }

    /// Schedules a delayed credit release modelling the upstream sender's
    /// local buffer-reclaim timer: the request copy holding the credit was
    /// destroyed (dropped message or crashed node), so no ack will ever
    /// come back for it.
    fn reclaim_later(&mut self, destroyed_at: SimTime, key: CreditKey) {
        self.faults.reclaims += 1;
        self.queue.schedule(
            destroyed_at + self.cfg.retry.timeout,
            Event::AckArrive { key },
        );
    }

    // ----- server side ----------------------------------------------------

    fn request_arrive(&mut self, now: SimTime, req: ReqId, node: NodeId) {
        if self.membership_on() {
            // The message physically came from the previous hop: liveness
            // evidence piggybacked on existing traffic.
            let prev = self.requests[req as usize].prev_node;
            self.heard_from(prev, now);
        }
        if self.epochs_on() {
            let epoch = self.requests[req as usize].epoch;
            if epoch < self.membership.epoch {
                // Stale-epoch copy: its route was chosen against a packing
                // that no longer exists. Reject deterministically (freeing
                // the upstream buffer) and let the origin's timer replay
                // the operation under the new epoch.
                self.membership.stats.replayed_requests += 1;
                self.ack_member(now, node, req);
                return;
            }
        }
        if self.chts[node as usize].enqueue(req) {
            self.queue.schedule(now, Event::ChtTryStart { node });
        }
    }

    /// Attempts to start servicing the CHT's queue: parks forwards whose
    /// downstream credit is exhausted (they keep their upstream buffer) and
    /// starts the first serviceable request, if any.
    fn cht_try_start(&mut self, now: SimTime, node: NodeId) {
        if self.faults_on() && self.net.node_dead(node, now) {
            return;
        }
        if self.chts[node as usize].is_busy() {
            return;
        }
        while let Some(req) = self.chts[node as usize].head() {
            let r = self.requests[req as usize];
            if self.epochs_on() && r.epoch < self.membership.epoch {
                // A pre-repair copy still queued here: reject it like a
                // stale arrival. A parked forward may have been granted its
                // old-edge credit while waiting — release that too, or the
                // repaired run leaks it.
                self.membership.stats.replayed_requests += 1;
                self.chts[node as usize].pop_head();
                if r.credit_held {
                    self.requests[req as usize].credit_held = false;
                    let key = CreditKey {
                        sender: Sender::Cht(node),
                        edge: (node, r.fwd_next),
                        class: r.fwd_class,
                    };
                    self.ack_arrive(now, key);
                }
                self.ack_member(now, node, req);
                continue;
            }
            let terminal = r.target_node == node;
            if !terminal && !r.credit_held {
                let (next, class) = if self.recovery_on() {
                    match self.fwd_hop(r.prev_node, node, r.target_node, r.vc_class) {
                        Some((h, class, rerouted)) => {
                            if rerouted {
                                self.faults.reroutes += 1;
                            }
                            (h, class)
                        }
                        None => {
                            // No live next hop: discard the copy, free the
                            // upstream buffer with a real ack, and let the
                            // origin's timer deal with the operation.
                            self.faults.unreachable += 1;
                            self.chts[node as usize].pop_head();
                            self.ack_member(now, node, req);
                            continue;
                        }
                    }
                } else {
                    match self.topo.next_hop(node, r.target_node) {
                        Some(h) => (h, 0),
                        None => {
                            // Missing hop in a supposedly total table:
                            // discard the copy like an unreachable target
                            // instead of panicking mid-forward.
                            self.faults.unreachable += 1;
                            self.chts[node as usize].pop_head();
                            self.ack_member(now, node, req);
                            continue;
                        }
                    }
                };
                let key = CreditKey {
                    sender: Sender::Cht(node),
                    edge: (node, next),
                    class,
                };
                // Remember the choice: the forward after service must use
                // exactly the edge and class the credit was acquired on.
                self.requests[req as usize].fwd_next = next;
                self.requests[req as usize].fwd_class = class;
                if !self.credits.try_acquire(key) {
                    // Park: set the request aside until an ack returns a
                    // credit, and keep draining the queue.
                    self.chts[node as usize].pop_head();
                    self.chts[node as usize].note_parked();
                    self.credits.wait(key, Waiter::Fwd { node, req });
                    continue;
                }
            }
            self.chts[node as usize].pop_head();
            self.requests[req as usize].credit_held = false;
            if !terminal && self.cfg.coalesce.enabled {
                let members = self.collect_fold(node, req);
                if members.len() > 1 {
                    // Fold: the whole batch travels on the head's single
                    // downstream credit as one wire message.
                    self.chts[node as usize].remove_many(&members[1..]);
                    let ops: Vec<Op> = members
                        .iter()
                        .map(|&m| self.requests[m as usize].op)
                        .collect();
                    let head = self.requests[req as usize];
                    let env = self.alloc_env(EnvState {
                        members,
                        from: node,
                        to: head.fwd_next,
                        class: head.fwd_class,
                        pending: 0,
                    });
                    let wake = self.chts[node as usize].begin_service(
                        now,
                        self.cfg.cht.poll_window,
                        self.cfg.cht.wakeup_latency,
                    );
                    // Assembly is pipelined with the in-flight send: each
                    // extra member costs `envelope_fold`, not a second
                    // `forward_base`.
                    let dur = self.cht_pool_extra[node as usize]
                        + self.cfg.cht.envelope_forward_time(&ops);
                    self.cht_busy_total[node as usize] += wake + dur;
                    self.queue
                        .schedule(now + wake + dur, Event::ChtEnvDone { node, env });
                    return;
                }
            }
            let wake = self.chts[node as usize].begin_service(
                now,
                self.cfg.cht.poll_window,
                self.cfg.cht.wakeup_latency,
            );
            let dur = self.cht_pool_extra[node as usize]
                + if terminal {
                    self.cfg.cht.service_time(&r.op)
                } else {
                    self.cfg.cht.forward_time(&r.op)
                };
            self.cht_busy_total[node as usize] += wake + dur;
            self.queue
                .schedule(now + wake + dur, Event::ChtDone { node, req });
            return;
        }
    }

    /// Scans the queue behind `head` (already popped, downstream credit in
    /// hand) for requests whose next LDF hop and escape class match the
    /// head's, folding them into one envelope as long as the wire message
    /// fits the request-buffer bound. Returns the members, head first.
    fn collect_fold(&mut self, node: NodeId, head: ReqId) -> Vec<ReqId> {
        let hnext = self.requests[head as usize].fwd_next;
        let hclass = self.requests[head as usize].fwd_class;
        let max_bytes = self.cfg.envelope_max_bytes();
        let sub = self.net.config().env_sub_header;
        let mut wire = self.requests[head as usize].op.request_bytes();
        let mut members = vec![head];
        // Forwards parked on the head's own credit account already chose
        // this exact (edge, class); they are the oldest candidates and ride
        // the head's credit instead of each waiting for one of their own —
        // the coalescing win under credit exhaustion at a hot spot.
        let key = CreditKey {
            sender: Sender::Cht(node),
            edge: (node, hnext),
            class: hclass,
        };
        let cur_epoch = self.membership.epoch;
        let membership_on = self.epochs_on();
        let requests = &self.requests;
        let parked = self.credits.take_waiters(key, |w| match w {
            Waiter::Fwd { req, .. } => {
                // Stale-epoch parkers stay parked: once their old account
                // releases they surface at head-of-line and are rejected
                // with the proper bookkeeping there.
                if membership_on && requests[*req as usize].epoch < cur_epoch {
                    return false;
                }
                let rb = requests[*req as usize].op.request_bytes();
                if wire + rb + sub <= max_bytes {
                    wire += rb + sub;
                    true
                } else {
                    false
                }
            }
            _ => false,
        });
        for w in parked {
            match w {
                Waiter::Fwd { req, .. } => members.push(req),
                _ => unreachable!("only Fwd waiters park on a CHT account"),
            }
        }
        let candidates: Vec<ReqId> = self.chts[node as usize].iter().collect();
        for c in candidates {
            let rc = self.requests[c as usize];
            // Terminal-here requests are serviced, not forwarded; a
            // credit-held request already owns a (possibly different)
            // downstream credit that would leak if it rode the head's.
            if rc.target_node == node || rc.credit_held {
                continue;
            }
            // Stale-epoch candidates stay queued for the head-of-line
            // rejection pass; folding them into a fresh-epoch envelope
            // would smuggle them past it.
            if membership_on && rc.epoch < cur_epoch {
                continue;
            }
            let rb = rc.op.request_bytes();
            if wire + rb + sub > max_bytes {
                continue;
            }
            let (cnext, cclass, rerouted) = if self.recovery_on() {
                match self.fwd_hop(rc.prev_node, node, rc.target_node, rc.vc_class) {
                    Some(choice) => choice,
                    // Unreachable candidates stay queued; the head-of-line
                    // pass discards them with the proper ack.
                    None => continue,
                }
            } else {
                match self.topo.next_hop(node, rc.target_node) {
                    Some(h) => (h, 0, false),
                    // A hop-less candidate stays queued; the head-of-line
                    // pass discards it with the proper ack.
                    None => continue,
                }
            };
            if (cnext, cclass) != (hnext, hclass) {
                continue;
            }
            wire += rb + sub;
            self.requests[c as usize].fwd_next = cnext;
            self.requests[c as usize].fwd_class = cclass;
            members.push(c);
            if rerouted {
                self.faults.reroutes += 1;
            }
        }
        members
    }

    fn alloc_env(&mut self, env: EnvState) -> u32 {
        if let Some(id) = self.free_envs.pop() {
            self.envelopes[id as usize] = env;
            id
        } else {
            self.envelopes.push(env);
            (self.envelopes.len() - 1) as u32
        }
    }

    fn free_env(&mut self, id: u32) {
        // Like request slots, envelope slots are never reused under faults:
        // in-flight drops may leave stale references behind.
        if !self.recovery_on() {
            self.free_envs.push(id);
        }
    }

    /// A CHT finished assembling an envelope: ack every member's upstream
    /// buffer, restamp the members for the shared hop and put the envelope
    /// on the wire as one message.
    fn cht_env_done(&mut self, now: SimTime, node: NodeId, env: u32) {
        if self.faults_on() && self.net.node_dead(node, now) {
            // The assembling node died mid-service: every member copy dies
            // with it; their upstream buffers come back via reclaim timers.
            // The envelope slot is abandoned, so its member list moves out.
            let members = std::mem::take(&mut self.envelopes[env as usize].members);
            for m in members {
                self.reclaim_member(now, node, m);
            }
            return;
        }
        self.chts[node as usize].end_service(now);
        // Move the member list out while the slab is borrowed mutably; it is
        // restored below — the arrival side unpacks from the same slot.
        let members = std::mem::take(&mut self.envelopes[env as usize].members);
        let to = self.envelopes[env as usize].to;
        let class = self.envelopes[env as usize].class;
        let n = members.len() as u32;
        let payload: u64 = members
            .iter()
            .map(|&m| self.requests[m as usize].op.request_bytes())
            .sum();
        for &m in &members {
            self.chts[node as usize].counters.forwarded += 1;
            // Ack BEFORE restamping: the upstream release is keyed on the
            // member's previous hop (and possibly its previous envelope).
            self.ack_member(now, node, m);
            let slot = &mut self.requests[m as usize];
            slot.prev_sender = Sender::Cht(node);
            slot.prev_node = node;
            slot.vc_class = class;
            slot.env_slot = env;
        }
        let counters = &mut self.chts[node as usize].counters;
        counters.fwd_messages += 1;
        counters.envelopes += 1;
        counters.coalesced += u64::from(n);
        self.coalesce.envelopes += 1;
        self.coalesce.coalesced_requests += u64::from(n);
        self.coalesce.largest_envelope = self.coalesce.largest_envelope.max(payload);
        self.coalesce.deepest_fold = self.coalesce.deepest_fold.max(n);
        self.envelopes[env as usize].members = members;
        if !self.faults_on() {
            let d = self.net.send_envelope(now, node, to, payload, n);
            self.queue
                .schedule(d.at, Event::EnvelopeArrive { env, node: to });
        } else {
            match self.net.send_envelope_faulted(now, node, to, payload, n) {
                SendOutcome::Delivered(d) => match self.checksum(d) {
                    Some(d) => {
                        self.queue
                            .schedule(d.at, Event::EnvelopeArrive { env, node: to });
                    }
                    // A corrupt envelope fails its checksum as a unit:
                    // recovered exactly like a dropped one.
                    None => self.reclaim_later(d.at, CreditKey::cht(node, to, class)),
                },
                SendOutcome::Dropped { at, .. } => {
                    // The envelope (and every member copy inside it) is
                    // destroyed; its single downstream credit comes back via
                    // the sender's reclaim timer and the origins' response
                    // timers recover the operations.
                    self.reclaim_later(at, CreditKey::cht(node, to, class));
                }
            }
        }
        if self.chts[node as usize].queue_len() > 0 {
            self.queue.schedule(now, Event::ChtTryStart { node });
        }
    }

    /// A coalesced envelope landed: unpack the members into the CHT queue.
    /// The envelope's single credit stays held until every member has been
    /// dealt with here (serviced, forwarded or discarded).
    fn envelope_arrive(&mut self, now: SimTime, env: u32, node: NodeId) {
        // Unpacking is the member list's last use: move it out of the slot
        // (the remaining envelope bookkeeping is the `pending` count).
        let members = std::mem::take(&mut self.envelopes[env as usize].members);
        self.envelopes[env as usize].pending = members.len() as u32;
        if self.membership_on() {
            let from = self.envelopes[env as usize].from;
            self.heard_from(from, now);
        }
        let mut start = false;
        for m in members {
            // Stale-epoch members are rejected here exactly as individual
            // requests are at arrival; ack_member keeps the envelope's
            // pending count and single aggregated ack correct.
            if self.epochs_on() && self.requests[m as usize].epoch < self.membership.epoch {
                self.membership.stats.replayed_requests += 1;
                self.ack_member(now, node, m);
                continue;
            }
            start |= self.chts[node as usize].enqueue(m);
        }
        if start {
            self.queue.schedule(now, Event::ChtTryStart { node });
        }
    }

    /// Frees the upstream buffer held by `req`'s last hop into `node`. An
    /// individual request gets its own ack ([`Engine::ack_upstream`]); an
    /// envelope member instead decrements its envelope's pending count, and
    /// the last member out sends ONE aggregated ack releasing the
    /// envelope's single credit — the paper's reply aggregation on the
    /// return path.
    fn ack_member(&mut self, now: SimTime, node: NodeId, req: ReqId) {
        let slot = self.requests[req as usize].env_slot;
        if slot == NO_ENV {
            self.ack_upstream(now, node, req);
            return;
        }
        self.requests[req as usize].env_slot = NO_ENV;
        let env = &mut self.envelopes[slot as usize];
        debug_assert_eq!(env.to, node, "member acked away from its envelope");
        debug_assert!(env.pending > 0);
        env.pending -= 1;
        if env.pending > 0 {
            return;
        }
        let (from, class) = (env.from, env.class);
        let key = CreditKey::cht(from, node, class);
        self.coalesce.agg_acks += 1;
        if !self.faults_on() {
            let ack = self.net.send(now, node, from, Op::ack_bytes());
            self.queue.schedule(ack.at, Event::AckArrive { key });
            self.free_env(slot);
            return;
        }
        match self.net.send_faulted(now, node, from, Op::ack_bytes()) {
            SendOutcome::Delivered(ack) => match self.checksum(ack) {
                Some(ack) => self.queue.schedule(ack.at, Event::AckArrive { key }),
                None => self.reclaim_later(ack.at, key),
            },
            SendOutcome::Dropped { at, .. } => self.reclaim_later(at, key),
        }
    }

    /// Fault-path sibling of [`Engine::ack_member`]: the copy of `req` at
    /// `node` was destroyed, so its upstream buffer comes back via a
    /// reclaim timer instead of an ack. For an envelope member the timer is
    /// armed once — by the last member destroyed — for the envelope's
    /// single credit.
    fn reclaim_member(&mut self, at: SimTime, node: NodeId, req: ReqId) {
        let r = self.requests[req as usize];
        if r.env_slot == NO_ENV {
            self.reclaim_later(
                at,
                CreditKey {
                    sender: r.prev_sender,
                    edge: (r.prev_node, node),
                    class: r.vc_class,
                },
            );
            return;
        }
        self.requests[req as usize].env_slot = NO_ENV;
        let env = &mut self.envelopes[r.env_slot as usize];
        debug_assert!(env.pending > 0);
        env.pending -= 1;
        if env.pending == 0 {
            let key = CreditKey::cht(env.from, env.to, env.class);
            self.reclaim_later(at, key);
        }
    }

    /// Returns the upstream sender's buffer credit for `req`'s last hop
    /// into `node` with an explicit ack message.
    fn ack_upstream(&mut self, now: SimTime, node: NodeId, req: ReqId) {
        let r = self.requests[req as usize];
        let up_key = CreditKey {
            sender: r.prev_sender,
            edge: (r.prev_node, node),
            class: r.vc_class,
        };
        if !self.faults_on() {
            let ack = self.net.send(now, node, r.prev_node, Op::ack_bytes());
            self.queue
                .schedule(ack.at, Event::AckArrive { key: up_key });
            return;
        }
        match self
            .net
            .send_faulted(now, node, r.prev_node, Op::ack_bytes())
        {
            SendOutcome::Delivered(ack) => match self.checksum(ack) {
                Some(ack) => {
                    self.queue
                        .schedule(ack.at, Event::AckArrive { key: up_key });
                }
                None => self.reclaim_later(ack.at, up_key),
            },
            // A lost ack still frees the buffer eventually: the upstream
            // sender's reclaim timer fires instead.
            SendOutcome::Dropped { at, .. } => self.reclaim_later(at, up_key),
        }
    }

    fn cht_done(&mut self, now: SimTime, node: NodeId, req: ReqId) {
        if self.faults_on() && self.net.node_dead(node, now) {
            // The node died while this request was in service: the copy is
            // destroyed with it, and the upstream buffer is reclaimed by
            // its owner's local timer.
            self.reclaim_member(now, node, req);
            return;
        }
        self.chts[node as usize].end_service(now);
        let r = self.requests[req as usize];

        // Return the upstream sender's buffer credit with an explicit ack.
        self.ack_member(now, node, req);

        if r.target_node == node {
            // Terminal service: apply and respond directly to the origin.
            self.chts[node as usize].counters.serviced += 1;
            if self.recovery_on() {
                // Target-side dedup: retried non-idempotent operations must
                // execute exactly once even when an earlier copy got
                // through and only its response was lost.
                match self.seen.get(&(r.origin.0, r.seq)).copied() {
                    Some(DedupState::Done(value)) => {
                        self.faults.dedup_hits += 1;
                        self.requests[req as usize].resp_value = value;
                        self.respond(now, req);
                        if self.chts[node as usize].queue_len() > 0 {
                            self.queue.schedule(now, Event::ChtTryStart { node });
                        }
                        return;
                    }
                    Some(DedupState::Pending) => {
                        // The first copy is still queued (e.g. on a lock):
                        // swallow the duplicate, the original will respond.
                        self.faults.dedup_hits += 1;
                        if self.chts[node as usize].queue_len() > 0 {
                            self.queue.schedule(now, Event::ChtTryStart { node });
                        }
                        return;
                    }
                    None => {
                        self.seen.insert((r.origin.0, r.seq), DedupState::Pending);
                    }
                }
            }
            if r.op.notify {
                self.notify_rank(now, r.op.target);
            }
            match r.op.kind {
                OpKind::FetchAdd => {
                    self.apply_fetch_add(req);
                    self.respond(now, req);
                }
                OpKind::Lock => {
                    let state = self.locks.entry(r.op.target).or_default();
                    if state.held_by.is_none() {
                        state.held_by = Some(r.origin);
                        self.respond(now, req);
                    } else {
                        // Queued: the response (grant) is deferred until the
                        // holder unlocks. The request has been absorbed into
                        // CHT memory, so the upstream buffer was still freed.
                        state.waiting.push_back(req);
                    }
                }
                OpKind::Unlock => {
                    let state = self.locks.entry(r.op.target).or_default();
                    if state.held_by == Some(r.origin) {
                        state.held_by = None;
                        self.respond(now, req);
                        self.grant_lock_next(now, r.op.target);
                    } else {
                        // Unlock of a mutex not held by the caller: no-op.
                        self.respond(now, req);
                    }
                }
                _ => self.respond(now, req),
            }
        } else {
            // Forward the hop chosen (and credited) at service start.
            let next = r.fwd_next;
            self.chts[node as usize].counters.forwarded += 1;
            self.chts[node as usize].counters.fwd_messages += 1;
            let slot = &mut self.requests[req as usize];
            slot.prev_sender = Sender::Cht(node);
            slot.prev_node = node;
            slot.vc_class = slot.fwd_class;
            self.send_request(now, req, node, next);
        }

        if self.chts[node as usize].queue_len() > 0 {
            self.queue.schedule(now, Event::ChtTryStart { node });
        }
    }

    /// Sends `req`'s response from its target node to its origin.
    fn respond(&mut self, now: SimTime, req: ReqId) {
        let r = self.requests[req as usize];
        if self.recovery_on() {
            // Record the applied result so duplicates of this operation can
            // be re-answered without re-applying it.
            self.seen
                .insert((r.origin.0, r.seq), DedupState::Done(r.resp_value));
        }
        if r.target_node == r.origin_node {
            let at = now + self.net.config().shm_latency;
            self.queue.schedule(at, Event::ResponseArrive { req });
        } else if self.faults_on() {
            match self
                .net
                .send_faulted(now, r.target_node, r.origin_node, r.op.response_bytes())
            {
                SendOutcome::Delivered(resp) => {
                    if self.checksum(resp).is_some() {
                        self.queue.schedule(resp.at, Event::ResponseArrive { req });
                    }
                }
                // A lost (or corrupt) response is recovered by the origin's
                // timer; the retransmitted request will hit the dedup table
                // and be re-answered.
                SendOutcome::Dropped { .. } => {}
            }
        } else {
            let resp = self
                .net
                .send(now, r.target_node, r.origin_node, r.op.response_bytes());
            self.queue.schedule(resp.at, Event::ResponseArrive { req });
        }
    }

    /// Grants the mutex owned by `target` to the next queued lock request,
    /// if any.
    fn grant_lock_next(&mut self, now: SimTime, target: Rank) {
        let state = self.locks.entry(target).or_default();
        debug_assert!(state.held_by.is_none());
        if let Some(next_req) = state.waiting.pop_front() {
            state.held_by = Some(self.requests[next_req as usize].origin);
            self.respond(now, next_req);
        }
    }

    /// Raises `target`'s notification counter and wakes it if its
    /// WaitNotify threshold is now met.
    fn notify_rank(&mut self, now: SimTime, target: Rank) {
        let proc = &mut self.procs[target.idx()];
        proc.notified += 1;
        if proc.phase == Phase::WaitingNotify && proc.notified >= proc.notify_threshold {
            proc.phase = Phase::Running;
            self.queue.schedule(now, Event::ProcReady(target));
        }
    }

    fn apply_fetch_add(&mut self, req: ReqId) {
        let (target, amount) = {
            let r = &self.requests[req as usize];
            (r.op.target, r.op.amount)
        };
        let old = self.fetch_counters[target.idx()];
        self.fetch_counters[target.idx()] += amount;
        self.requests[req as usize].resp_value = Some(old);
    }

    // A waiter is only ever registered together with its pending issue, so
    // a granted proc without one is a protocol-state corruption: crash
    // loudly rather than silently dropping the credit.
    #[allow(clippy::expect_used)]
    fn ack_arrive(&mut self, now: SimTime, key: CreditKey) {
        match self.credits.release(key) {
            None => {}
            Some(Waiter::Proc(rank)) => {
                if self.faults_on()
                    && matches!(self.procs[rank.idx()].phase, Phase::Lost | Phase::Failed)
                {
                    // The waiter died while blocked: pass the credit on.
                    self.procs[rank.idx()].pending = None;
                    self.ack_arrive(now, key);
                    return;
                }
                // The credit transferred to the blocked process: send its
                // pending request now.
                let Some(pending) = self.procs[rank.idx()].pending.take() else {
                    // The waiter's node crashed (clearing the parked issue)
                    // and rebooted before this grant landed: the revived
                    // rank re-drives the operation through its retry
                    // timer, so the credit just passes on. Any other
                    // grant without a pending issue is protocol-state
                    // corruption.
                    assert!(
                        self.restart_time[self.procs[rank.idx()].node as usize].is_some(),
                        "granted proc must have a pending issue"
                    );
                    self.ack_arrive(now, key);
                    return;
                };
                let node = self.procs[rank.idx()].node;
                debug_assert_eq!(key.edge, (node, pending.first_hop));
                self.send_request(now, pending.req, node, pending.first_hop);
                self.arm_timeout(now, pending.req);
                if self.requests[pending.req as usize].blocking {
                    self.procs[rank.idx()].phase = Phase::WaitingResponse;
                } else {
                    self.procs[rank.idx()].phase = Phase::Running;
                    self.queue
                        .schedule(now + self.cfg.issue_overhead, Event::ProcReady(rank));
                }
            }
            Some(Waiter::Fwd { node, req }) => {
                if self.faults_on() && self.net.node_dead(node, now) {
                    // The forwarder died while parked: the copy it held is
                    // gone. Reclaim its upstream buffer and pass the
                    // just-granted downstream credit on.
                    self.reclaim_member(now, node, req);
                    self.ack_arrive(now, key);
                    return;
                }
                // The parked forward now holds its downstream credit; put it
                // back at the front of the queue (it is the oldest work).
                self.requests[req as usize].credit_held = true;
                if self.chts[node as usize].enqueue_front(req) {
                    self.queue.schedule(now, Event::ChtTryStart { node });
                }
            }
            Some(Waiter::Retry { req }) => {
                let r = self.requests[req as usize];
                if self.op_done.contains(&(r.origin.0, r.seq))
                    || matches!(
                        self.procs[r.origin.idx()].phase,
                        Phase::Lost | Phase::Failed
                    )
                {
                    // The operation resolved while the retry waited.
                    self.ack_arrive(now, key);
                    return;
                }
                debug_assert_eq!(key.edge, (r.origin_node, r.fwd_next));
                self.send_request(now, req, r.origin_node, r.fwd_next);
            }
        }
    }

    fn response_arrive(&mut self, now: SimTime, req: ReqId) {
        let r = self.requests[req as usize];
        let rank = r.origin;
        if self.membership_on() {
            // The response proves the target's CHT was alive to serve it.
            self.heard_from(r.target_node, now);
        }
        if self.recovery_on() {
            if !self.op_done.insert((rank.0, r.seq)) {
                // A duplicate response (an earlier attempt already
                // completed this operation): first one won, drop this.
                return;
            }
            if matches!(self.procs[rank.idx()].phase, Phase::Lost | Phase::Failed) {
                // The origin died or gave up on another operation before
                // this response landed.
                return;
            }
        }
        debug_assert!(r.live);
        let proc = &mut self.procs[rank.idx()];
        proc.outstanding -= 1;
        proc.completed_ops += 1;
        if let Some(v) = r.resp_value {
            proc.last_fetch = Some(v);
        }
        let fencing_done = proc.phase == Phase::Fencing && proc.outstanding == 0;
        self.metrics.complete_op(rank, r.op.kind, r.issued, now);
        if r.serve {
            self.serve.active -= 1;
            self.serve.stats.completed += 1;
            self.serve
                .latencies_us
                .push((now - r.issued).as_micros_f64());
        }
        self.free_request(req);
        if r.blocking || fencing_done {
            self.queue.schedule(now, Event::ProcReady(rank));
        }
    }

    // ----- fault recovery -------------------------------------------------

    /// A per-request response timer expired: retransmit with backoff, or
    /// fail the operation once the retry budget is spent.
    fn timeout_fire(&mut self, now: SimTime, req: ReqId) {
        let r = self.requests[req as usize];
        if self.op_done.contains(&(r.origin.0, r.seq)) {
            return; // Stale: the operation completed in time.
        }
        let phase = self.procs[r.origin.idx()].phase;
        if matches!(phase, Phase::Lost | Phase::Failed) {
            if r.serve {
                // The client died with the request in flight: close out the
                // serve-side accounting so the run can quiesce.
                self.serve_give_up(now, req);
            }
            return; // The origin is gone; nobody is waiting.
        }
        if phase == Phase::Done && !r.serve {
            return; // Program finished; a serve client is Done by design.
        }
        self.faults.timeouts += 1;
        if r.serve {
            if r.attempt >= self.cfg.retry.max_retries {
                self.serve_give_up(now, req);
                return;
            }
            let budget = &mut self.serve.budget[r.origin.idx()];
            if self.serve.guard_active || *budget == 0 {
                // The metastability guard (or an exhausted per-client retry
                // budget) sheds the retransmission instead of amplifying an
                // already-overloaded system.
                self.serve.stats.shed_retries += 1;
                self.serve_give_up(now, req);
                return;
            }
            *budget -= 1;
            self.serve.stats.retries += 1;
            self.serve.stats.retries_by_phase[self.cfg.serve.arrivals.phase_at(now).index()] += 1;
            self.retransmit(now, req);
            return;
        }
        if r.attempt >= self.cfg.retry.max_retries {
            self.fail_with(
                now,
                r.origin,
                SimError::TimedOut {
                    at: now,
                    rank: r.origin,
                    seq: r.seq,
                    attempts: r.attempt + 1,
                    issued: r.issued,
                    target: r.target_node,
                },
            );
            return;
        }
        self.retransmit(now, req);
    }

    /// Clones `req` into a fresh slab slot for the next attempt (same
    /// sequence number — the dedup key) and re-issues it from the origin.
    fn retransmit(&mut self, now: SimTime, req: ReqId) {
        self.faults.retries += 1;
        let old = self.requests[req as usize];
        let rank = old.origin;
        let new_req = self.alloc_request(Request {
            prev_sender: Sender::Proc(rank),
            prev_node: old.origin_node,
            resp_value: None,
            credit_held: false,
            live: true,
            attempt: old.attempt + 1,
            vc_class: 0,
            fwd_next: old.origin_node,
            fwd_class: 0,
            env_slot: NO_ENV,
            // Replays are re-stamped: a retransmission after an epoch
            // commit carries the new epoch (same seq, so dedup still
            // collapses it with any surviving old-epoch copy's response).
            epoch: self.membership.epoch,
            ..old
        });
        // The timer for the new attempt starts now and covers any time the
        // retransmit spends waiting for a first-hop credit.
        self.arm_timeout(now, new_req);
        if old.op.kind.is_direct() {
            if self.node_gone(old.target_node, now) {
                self.rank_fail(now, rank, new_req);
                return;
            }
            self.send_direct(now, new_req);
            return;
        }
        let (decision, rerouted) = self.first_hop(old.origin_node, old.target_node);
        match decision {
            HopDecision::Hop(first) => {
                if rerouted {
                    self.faults.reroutes += 1;
                }
                self.requests[new_req as usize].fwd_next = first;
                let key = CreditKey {
                    sender: Sender::Proc(rank),
                    edge: (old.origin_node, first),
                    class: 0,
                };
                if self.credits.try_acquire(key) {
                    self.send_request(now, new_req, old.origin_node, first);
                } else {
                    // Unlike an initial issue the process is already
                    // blocked (or running async work): queue the retry
                    // itself rather than the process.
                    self.credits.wait(key, Waiter::Retry { req: new_req });
                }
            }
            HopDecision::Unreachable => {
                // With membership on (or a reboot still ahead) and a
                // recoverable target, unreachability is a symptom of a
                // not-yet-repaired topology: the attempt's timer (armed
                // above) will retry after the epoch commits — or the
                // reboot lands — and an escape route exists again.
                if !(self.membership_on() || self.revival_ahead(now))
                    || self.node_gone(old.target_node, now)
                {
                    self.rank_fail(now, rank, new_req);
                }
            }
            HopDecision::Arrived => unreachable!("remote op"),
        }
    }

    /// A scheduled node crash fires: the node's CHT, NIC and resident ranks
    /// die. Queued requests on the node are destroyed (their upstream
    /// buffers come back via reclaim timers) and in-flight traffic to the
    /// node is dropped by the network layer from here on.
    fn node_crash(&mut self, now: SimTime, node: NodeId) {
        self.net.kill_node(node);
        if let Err(pos) = self.dead.binary_search(&node) {
            self.dead.insert(pos, node);
        }
        for r in 0..self.cfg.n_procs {
            let rank = Rank(r);
            if self.layout.node_of(rank) != node {
                continue;
            }
            let phase = self.procs[rank.idx()].phase;
            if matches!(phase, Phase::Done | Phase::Lost | Phase::Failed) {
                continue;
            }
            if phase == Phase::InBarrier {
                self.barrier_waiting.retain(|&w| w != rank);
            }
            // Snapshot what the crash interrupted: a scheduled reboot
            // restores (or resolves) it.
            self.procs[rank.idx()].saved_phase = phase;
            self.procs[rank.idx()].saved_barrier_gen = self.barrier_gen;
            self.procs[rank.idx()].phase = Phase::Lost;
            self.procs[rank.idx()].pending = None;
            self.lost_count += 1;
        }
        while let Some(req) = self.chts[node as usize].pop_head() {
            self.reclaim_member(now, node, req);
        }
        self.maybe_release_barrier(now);
    }

    /// Whether `node` is dead *and staying dead*: inside an outage window
    /// with no reboot still ahead. A node that the plan revives later is
    /// treated as recoverable — operations aimed at it keep their retry
    /// timers instead of failing fast.
    fn node_gone(&self, node: NodeId, now: SimTime) -> bool {
        self.net.node_dead(node, now) && self.restart_time[node as usize].is_none_or(|r| r <= now)
    }

    /// Whether any currently-dead node has a reboot still ahead of `now`
    /// (transient outages justify parking unreachable work on its timer
    /// even without the membership detector).
    fn revival_ahead(&self, now: SimTime) -> bool {
        self.dead
            .iter()
            .any(|&n| self.restart_time[n as usize].is_some_and(|r| r > now))
    }

    /// A scheduled node reboot fires: revive the NIC, drop the node from
    /// the route-around dead set, restore its Lost resident ranks to the
    /// phase the crash interrupted, and re-drive their in-flight
    /// operations. Re-issued attempts keep their original sequence
    /// numbers, so the target-side dedup table keeps every operation
    /// exactly-once across the crash→reboot cycle. With membership on the
    /// node also starts announcing itself, feeding the detector the
    /// evidence that grows the view back (see [`Engine::rejoin_announce`]).
    fn node_restart(&mut self, now: SimTime, node: NodeId) {
        self.net.revive_node(node);
        if let Ok(pos) = self.dead.binary_search(&node) {
            self.dead.remove(pos);
        }
        // Scan the slab for the node's unfinished work *before* restoring
        // phases (the filter keys on `Lost`). The slab is append-ordered,
        // so keeping the last live entry per (origin, seq) picks each
        // operation's newest attempt and minimises redundant chains.
        let mut rearm: FxHashMap<(u32, u64), ReqId> = FxHashMap::default();
        let mut lost_completions: Vec<ReqId> = Vec::new();
        for (id, r) in self.requests.iter().enumerate() {
            if !r.live || r.serve || r.origin_node != node {
                continue;
            }
            if self.procs[r.origin.idx()].phase != Phase::Lost {
                continue;
            }
            if self.op_done.contains(&(r.origin.0, r.seq)) {
                // Completed during the outage (an intra-node response that
                // landed while its rank was down): finalise at revival.
                lost_completions.push(id as ReqId);
            } else if r.target_node != r.origin_node {
                // Intra-node operations have no timers — their shared-
                // memory responses are still queued and complete normally.
                rearm.insert((r.origin.0, r.seq), id as ReqId);
            }
        }
        for r in 0..self.cfg.n_procs {
            let rank = Rank(r);
            if self.layout.node_of(rank) != node || self.procs[rank.idx()].phase != Phase::Lost {
                continue;
            }
            self.lost_count -= 1;
            let saved = self.procs[rank.idx()].saved_phase;
            let phase = match saved {
                Phase::InBarrier => {
                    if self.procs[rank.idx()].saved_barrier_gen == self.barrier_gen {
                        // Its barrier has not released (lost ranks are
                        // excluded from the count, so it *can* release
                        // mid-outage — the generation check catches that):
                        // rejoin the rendezvous.
                        self.barrier_waiting.push(rank);
                        Phase::InBarrier
                    } else {
                        // The barrier released during the outage: the rank
                        // missed the rendezvous; resume past it.
                        self.queue.schedule(now, Event::ProcReady(rank));
                        Phase::Running
                    }
                }
                Phase::WaitingCredit => {
                    // The crash destroyed the parked issue; the re-armed
                    // timer re-drives the operation through the retry
                    // path, so the rank waits on its response instead.
                    let blocking = rearm
                        .iter()
                        .filter(|((o, _), _)| *o == rank.0)
                        .max_by_key(|((_, s), _)| *s)
                        .map(|(_, &id)| self.requests[id as usize].blocking)
                        .unwrap_or(false);
                    if blocking {
                        Phase::WaitingResponse
                    } else {
                        self.queue.schedule(now, Event::ProcReady(rank));
                        Phase::Running
                    }
                }
                Phase::Running => {
                    self.queue.schedule(now, Event::ProcReady(rank));
                    Phase::Running
                }
                other => other,
            };
            self.procs[rank.idx()].phase = phase;
        }
        // Finalise operations that completed while the rank was down, now
        // that its phase is restored (the crash-time response handler
        // early-returned before touching the rank's accounting).
        for req in lost_completions {
            let r = self.requests[req as usize];
            let rank = r.origin;
            let proc = &mut self.procs[rank.idx()];
            proc.outstanding -= 1;
            proc.completed_ops += 1;
            if let Some(v) = r.resp_value {
                proc.last_fetch = Some(v);
            }
            let fencing_done = proc.phase == Phase::Fencing && proc.outstanding == 0;
            self.metrics.complete_op(rank, r.op.kind, r.issued, now);
            self.free_request(req);
            if r.blocking || fencing_done {
                self.queue.schedule(now, Event::ProcReady(rank));
            }
        }
        // Fresh response timers for the surviving in-flight work: the old
        // timers died with the node (their firings found a Lost origin).
        let mut rearm_ids: Vec<ReqId> = rearm.into_values().collect();
        rearm_ids.sort_unstable();
        for req in rearm_ids {
            self.arm_timeout(now, req);
        }
        if self.membership_on() {
            self.queue.schedule(now, Event::RejoinAnnounce { node });
        }
    }

    /// A rebooted node announces itself so the membership layer gathers
    /// rejoin evidence: the failure detector never probes a *confirmed*
    /// node and the revived ranks' own traffic is unroutable until the
    /// grow-back epoch commits, so without this the view would never heal.
    /// The announcement is an ordinary droppable probe to the lowest-id
    /// live peer still in the view; it re-arms each heartbeat period until
    /// the node is no longer confirmed dead.
    fn rejoin_announce(&mut self, now: SimTime, node: NodeId) {
        if !self.membership_on()
            || self.membership.confirmed.binary_search(&node).is_err()
            || self.net.node_dead(node, now)
        {
            return; // Re-admitted (or crashed again): nothing to announce.
        }
        if self.finished_count() >= self.cfg.n_procs && !(self.serve_on() && self.serve_live()) {
            return; // Quiescent: let the run end.
        }
        let n_nodes = self.layout.num_nodes();
        let peer = (0..n_nodes).find(|&p| {
            p != node
                && self.membership.confirmed.binary_search(&p).is_err()
                && !self.net.node_dead(p, now)
        });
        if let Some(peer) = peer {
            self.membership.stats.probes += 1;
            if let SendOutcome::Delivered(d) = self.net.send_probe(now, node, peer, PROBE_BYTES) {
                if self.checksum(d).is_some() {
                    self.queue.schedule(
                        d.at,
                        Event::ProbeArrive {
                            node: peer,
                            prober: node,
                        },
                    );
                }
            }
        }
        self.queue.schedule(
            now + self.cfg.membership.heartbeat_period,
            Event::RejoinAnnounce { node },
        );
    }

    /// A partition window ends: count the heal and (with membership on)
    /// reset the evidence clocks of the nodes the cut involved — the
    /// detector grants them a fresh grace period instead of charging them
    /// for the backlog of silence the cut caused.
    fn partition_heal(&mut self, now: SimTime, idx: u32) {
        self.faults.partitions_healed += 1;
        if !self.membership_on() {
            return;
        }
        for node in 0..self.layout.num_nodes() {
            if self.partition_plan[idx as usize].involves(node)
                && self.membership.confirmed.binary_search(&node).is_err()
            {
                self.membership.last_heard[node as usize] = now;
                self.membership.suspected[node as usize] = false;
            }
        }
    }

    /// Whether any partition window is active at `now` with `node` on
    /// either side of the cut (the detector's grace shield).
    fn partition_involves(&self, now: SimTime, node: NodeId) -> bool {
        self.partition_plan
            .iter()
            .any(|w| now >= w.from && now < w.until && w.involves(node))
    }

    /// End-to-end envelope checksum at the receiver: a corrupt frame is
    /// discarded on arrival. Callers treat `None` exactly like a network
    /// drop at the delivery instant — sender-side reclaim timers and
    /// origin response timers recover whatever the frame carried.
    fn checksum(&mut self, d: Delivery) -> Option<Delivery> {
        if d.corrupt {
            self.faults.corrupt_detected += 1;
            None
        } else {
            Some(d)
        }
    }

    // ----- membership: detection, epochs, live re-packing ----------------

    /// Dead physical nodes that are still *inside* the committed packing
    /// (crashed after the repair, not yet confirmed), as repacked slots —
    /// the route-around set for the repaired grid.
    fn dead_slots(&self, p: &SurvivorPacking) -> Vec<NodeId> {
        self.dead.iter().filter_map(|&d| p.slot_of(d)).collect()
    }

    /// First-hop decision from `src` towards `dest` under the current
    /// membership view (the committed survivor packing when one exists,
    /// the original topology otherwise). Returns the decision plus whether
    /// it deviated from the healthy LDF hop (a reroute).
    fn first_hop(&self, src: NodeId, dest: NodeId) -> (HopDecision, bool) {
        if let Some(p) = &self.membership.packing {
            let (Some(s), Some(d)) = (p.slot_of(src), p.slot_of(dest)) else {
                return (HopDecision::Unreachable, false);
            };
            let dead = self.dead_slots(p);
            match ldf::next_hop_avoiding(p.grid().shape(), p.num_live(), s, d, &dead) {
                HopDecision::Hop(h) => {
                    let rerouted = p.grid().next_hop(s, d) != Some(h);
                    (HopDecision::Hop(p.node_of(h)), rerouted)
                }
                other => (other, false),
            }
        } else {
            match ldf::next_hop_avoiding(
                &self.shape,
                self.layout.num_nodes(),
                src,
                dest,
                &self.dead,
            ) {
                HopDecision::Hop(h) => {
                    let rerouted = self.topo.next_hop(src, dest) != Some(h);
                    (HopDecision::Hop(h), rerouted)
                }
                other => (other, false),
            }
        }
    }

    /// Forwarding decision at `node` under the current membership view:
    /// [`forward_decision`] over the committed survivor packing (physical
    /// ids mapped through the slot table) when one exists, over the
    /// original topology otherwise. Returns `(next_phys_node, class,
    /// rerouted)`.
    fn fwd_hop(
        &self,
        prev: NodeId,
        node: NodeId,
        dest: NodeId,
        base_class: u8,
    ) -> Option<(NodeId, u8, bool)> {
        if let Some(p) = &self.membership.packing {
            let s_node = p.slot_of(node)?;
            let s_dest = p.slot_of(dest)?;
            // `prev` outside the packing can only be the origin-here
            // convention (prev == node); same-epoch forwards always chose
            // packing members.
            let s_prev = p.slot_of(prev).unwrap_or(s_node);
            let dead = self.dead_slots(p);
            let (h, class) = forward_decision(
                p.grid().shape(),
                p.num_live(),
                s_prev,
                s_node,
                s_dest,
                base_class,
                &dead,
            )?;
            let rerouted = p.grid().next_hop(s_node, s_dest) != Some(h);
            Some((p.node_of(h), class, rerouted))
        } else {
            let (h, class) = forward_decision(
                &self.shape,
                self.layout.num_nodes(),
                prev,
                node,
                dest,
                base_class,
                &self.dead,
            )?;
            Some((h, class, self.topo.next_hop(node, dest) != Some(h)))
        }
    }

    /// Records fresh liveness evidence for `node` and updates its
    /// phi-accrual expectation. No-op with membership off.
    fn heard_from(&mut self, node: NodeId, now: SimTime) {
        if !self.membership_on() {
            return;
        }
        if let Ok(pos) = self.membership.confirmed.binary_search(&node) {
            if self.net.node_dead(node, now) {
                // Stale in-flight evidence sent before the crash: a buried
                // node must stay buried.
                return;
            }
            // Fresh evidence from a node the view declared dead: it
            // rebooted. Un-confirm it and schedule a grow-back epoch that
            // re-admits it — the commit re-packs the enlarged survivor
            // set back up the fallback ladder towards the original kind,
            // certified rung by rung like any crash repair.
            self.membership.confirmed.remove(pos);
            self.membership.suspected[node as usize] = false;
            self.membership.last_heard[node as usize] = now;
            self.pending_rejoins += 1;
            if !self.membership.pending_commit {
                self.membership.pending_commit = true;
                self.queue
                    .schedule(now + self.cfg.membership.drain_window, Event::EpochCommit);
            }
            return;
        }
        let m = &mut self.membership;
        let idx = node as usize;
        let interval = (now - m.last_heard[idx]).as_nanos() as f64;
        m.mean_interval_ns[idx] = 0.8 * m.mean_interval_ns[idx] + 0.2 * interval;
        m.last_heard[idx] = now;
        m.suspected[idx] = false;
    }

    /// The failure detector's periodic sweep: probe silent peers, accrue
    /// suspicion against the expected evidence interval, and confirm
    /// crashes (scheduling an epoch commit after the drain window).
    fn membership_tick(&mut self, now: SimTime) {
        if self.finished_count() >= self.cfg.n_procs && !(self.serve_on() && self.serve_live()) {
            return; // Quiescent: stop ticking so the run can end.
        }
        let n_nodes = self.layout.num_nodes();
        let period = self.cfg.membership.heartbeat_period;
        for node in 0..n_nodes {
            if self.membership.confirmed.binary_search(&node).is_ok() {
                continue;
            }
            let idx = node as usize;
            let elapsed = now - self.membership.last_heard[idx];
            if elapsed < period {
                continue;
            }
            // Idle-probe fallback: the lowest-id other unconfirmed node
            // pings the silent peer; a live peer's ack restores its
            // evidence stream. Probes are real droppable messages.
            let prober = (0..n_nodes)
                .find(|&p| p != node && self.membership.confirmed.binary_search(&p).is_err());
            if let Some(prober) = prober {
                self.membership.stats.probes += 1;
                if let SendOutcome::Delivered(d) =
                    self.net.send_probe(now, prober, node, PROBE_BYTES)
                {
                    if self.checksum(d).is_some() {
                        self.queue
                            .schedule(d.at, Event::ProbeArrive { node, prober });
                    }
                }
            }
            let expected = self.membership.mean_interval_ns[idx].max(period.as_nanos() as f64);
            let phi = elapsed.as_nanos() as f64 / expected;
            if phi >= self.cfg.membership.phi_threshold && !self.membership.suspected[idx] {
                if self.partition_involves(now, node) {
                    // Grace shield: an active cut explains the silence, so
                    // the suspicion is held rather than raised — a
                    // partition that heals in time never reaches the
                    // confirmation round, let alone a spurious epoch. The
                    // evidence clock restarts so the charge doesn't re-
                    // accrue until another full period of real silence.
                    self.membership.stats.false_suspicions_suppressed += 1;
                    self.membership.last_heard[idx] = now;
                    continue;
                }
                self.membership.suspected[idx] = true;
                self.membership.stats.suspicions += 1;
                if self.net.node_dead(node, now) {
                    // Confirmation round: indirect probes agree the peer is
                    // gone. Record it and schedule the repair once the
                    // drain window elapses.
                    if let Err(pos) = self.membership.confirmed.binary_search(&node) {
                        self.membership.confirmed.insert(pos, node);
                    }
                    if !self.membership.pending_commit {
                        self.membership.pending_commit = true;
                        self.queue
                            .schedule(now + self.cfg.membership.drain_window, Event::EpochCommit);
                    }
                } else {
                    // Confirmation round exonerated the peer (a SWIM-style
                    // indirect probe got through): false alarm, reset.
                    self.membership.stats.false_suspicions += 1;
                    self.membership.suspected[idx] = false;
                    self.membership.last_heard[idx] = now;
                }
            }
        }
        self.queue.schedule(now + period, Event::MembershipTick);
    }

    /// A heartbeat probe landed: a live node acks it (the ack is the
    /// detector's evidence); a dead node stays silent.
    fn probe_arrive(&mut self, now: SimTime, node: NodeId, prober: NodeId) {
        if self.net.node_dead(node, now) {
            return;
        }
        // Receiving a probe is itself evidence that the prober is alive.
        self.heard_from(prober, now);
        if let SendOutcome::Delivered(d) = self.net.send_faulted(now, node, prober, PROBE_BYTES) {
            if self.checksum(d).is_some() {
                self.queue.schedule(d.at, Event::ProbeAck { node });
            }
        }
    }

    /// The drain window after a confirmed crash elapsed: recompute the
    /// lowest-dimension-first packing over the survivors (walking the
    /// fallback ladder past any rung the installed certifier refuses),
    /// re-derive the per-node buffer pools, and bump the epoch so stale
    /// copies routed against the old packing are rejected on arrival.
    fn epoch_commit(&mut self) {
        self.membership.pending_commit = false;
        let n_nodes = self.layout.num_nodes();
        let dead = self.membership.confirmed.clone();
        // A load-triggered re-pack switches the target kind; crash repairs
        // leave it at the configured topology.
        let kind = self.membership.repack_kind;
        let repacked = match self.membership.certifier {
            Some(cert) => vt_core::repack_with(kind, n_nodes, &dead, cert),
            None => vt_core::repack(kind, n_nodes, &dead),
        };
        let Ok(packing) = repacked else {
            // Every rung refused (only possible with a certifier that
            // rejects even the FCG terminal): keep the previous view — the
            // retry machinery keeps diagnosing unreachable operations.
            return;
        };
        let new_epoch = self.membership.epoch + 1;
        // Old-epoch operations still in flight at the commit: they drain
        // through stale rejection + origin retransmission, not blocking.
        let mut drained: FxHashSet<(u32, u64)> = FxHashSet::default();
        for r in &self.requests {
            // Serve-mode origins are `Done` by design; their in-flight
            // requests still drain through the stale-rejection machinery.
            if r.live
                && r.epoch < new_epoch
                && !self.op_done.contains(&(r.origin.0, r.seq))
                && (r.serve
                    || !matches!(
                        self.procs[r.origin.idx()].phase,
                        Phase::Done | Phase::Lost | Phase::Failed
                    ))
            {
                drained.insert((r.origin.0, r.seq));
            }
        }
        self.membership.epoch = new_epoch;
        self.membership.stats.epoch_bumps += 1;
        self.membership.stats.final_epoch = new_epoch;
        self.membership.stats.rejoins_committed += std::mem::take(&mut self.pending_rejoins);
        self.membership.stats.fallback_depth = self
            .membership
            .stats
            .fallback_depth
            .max(packing.fallback_depth());
        self.membership.stats.drained_requests += drained.len() as u64;
        // Re-derive the survivors' buffer pools for the repaired grid: the
        // CHT cache-pressure term now reflects the new edge set.
        for phys in 0..n_nodes {
            if let Some(slot) = packing.slot_of(phys) {
                let pool =
                    crate::memory::node_memory(&self.cfg, packing.grid(), slot).cht_pool_bytes;
                let mib = pool as f64 / (1024.0 * 1024.0);
                self.cht_pool_extra[phys as usize] =
                    SimTime::from_nanos((mib * self.cfg.cht.cache_ns_per_pool_mib).round() as u64);
            }
        }
        self.membership.packing = Some(packing);
        if std::mem::take(&mut self.serve.pending_load_repack) {
            self.serve.stats.load_repacks += 1;
            self.serve.stats.repack_kind = Some(kind);
        }
    }

    // ----- open-system serving --------------------------------------------

    /// Draws `rank`'s next inter-arrival gap and schedules the arrival if
    /// it still lands inside the serving horizon.
    fn schedule_next_arrival(&mut self, rank: Rank) {
        let at = self.serve.gens[rank.idx()].next_arrival();
        if at < self.cfg.serve.horizon {
            self.queue.schedule(at, Event::ClientArrival { rank });
        } else {
            self.serve.arrivals_done += 1;
        }
    }

    /// A client request arrives from the open world: admit it (bounded by
    /// the per-client in-flight cap) or shed it deterministically.
    fn client_arrival(&mut self, now: SimTime, rank: Rank) {
        self.schedule_next_arrival(rank);
        if matches!(self.procs[rank.idx()].phase, Phase::Lost | Phase::Failed) {
            return; // A dead client generates no load.
        }
        let phase_idx = self.cfg.serve.arrivals.phase_at(now).index();
        self.serve.stats.arrivals += 1;
        self.serve.stats.arrivals_by_phase[phase_idx] += 1;
        self.serve.win_arrivals += 1;
        if self.procs[rank.idx()].outstanding >= self.cfg.serve.queue_cap {
            // Admission control: the client's in-flight window is full. The
            // shed arrival still consumes a sequence number so admitted
            // timelines are insensitive to diagnostic bookkeeping.
            let seq = self.next_seq;
            self.next_seq += 1;
            self.serve.stats.sheds += 1;
            self.serve.stats.sheds_by_phase[phase_idx] += 1;
            self.serve.win_sheds += 1;
            self.faults.sheds += 1;
            // Keep a bounded sample of shed diagnostics: a saturated run
            // sheds millions of arrivals and the vector is per-failure.
            if self.serve.stats.sheds <= 8 {
                self.failures.push(SimError::Overloaded {
                    at: now,
                    rank,
                    seq,
                    depth: self.procs[rank.idx()].outstanding,
                    cap: self.cfg.serve.queue_cap,
                });
            }
            return;
        }
        self.serve.stats.admitted += 1;
        self.serve.active += 1;
        let hot = Rank(self.cfg.serve.hot_rank);
        self.issue_op_inner(now, rank, Op::fetch_add(hot, 1), false, true);
    }

    /// Periodic serving-control tick: evaluates the metastability guard
    /// over the last window and the hot-spot skew detector that triggers a
    /// load re-pack, then re-arms itself while the open system is live.
    fn serve_tick(&mut self, now: SimTime) {
        if !self.serve_live() {
            return; // All arrivals landed and drained: stop ticking.
        }
        // Metastability guard: when the shed fraction over the last tick
        // window crosses the threshold, suppress retransmissions until the
        // window looks healthy again (retry storms are what tip an
        // overloaded open system into the metastable regime).
        let (arr, sheds) = (self.serve.win_arrivals, self.serve.win_sheds);
        self.serve.win_arrivals = 0;
        self.serve.win_sheds = 0;
        #[allow(clippy::cast_precision_loss)]
        let frac = if arr == 0 {
            0.0
        } else {
            sheds as f64 / arr as f64
        };
        if frac >= self.cfg.serve.guard_threshold {
            if !self.serve.guard_active {
                self.serve.guard_active = true;
                self.serve.stats.guard_trips += 1;
            }
        } else {
            self.serve.guard_active = false;
        }
        // Hot-spot skew detector: a sustained imbalance of per-tick CHT
        // busy time (queue depth hides inside the network's time
        // reservations) escalates the topology kind one rung up the
        // attenuation ladder and commits it as a membership epoch under
        // live traffic.
        if self.cfg.serve.load_repack && !self.serve.repacked && !self.membership.pending_commit {
            let n_nodes = self.layout.num_nodes();
            self.serve.busy_seen.resize(n_nodes as usize, SimTime::ZERO);
            let (mut total, mut max) = (0u64, 0u64);
            for node in 0..n_nodes as usize {
                let seen = self.cht_busy_total[node];
                let delta = seen.saturating_sub(self.serve.busy_seen[node]).as_nanos();
                self.serve.busy_seen[node] = seen;
                total += delta;
                max = max.max(delta);
            }
            #[allow(clippy::cast_precision_loss)]
            let skewed = total > 0
                && max as f64
                    >= self.cfg.serve.skew_threshold * (total as f64 / f64::from(n_nodes));
            if skewed {
                self.serve.skew_streak += 1;
            } else {
                self.serve.skew_streak = 0;
            }
            if self.serve.skew_streak >= self.cfg.serve.skew_ticks {
                let current = self
                    .membership
                    .packing
                    .as_ref()
                    .map_or(self.cfg.topology, SurvivorPacking::kind);
                match escalate_kind(current, n_nodes) {
                    Some(kind) => {
                        self.serve.repacked = true;
                        self.serve.pending_load_repack = true;
                        self.membership.repack_kind = kind;
                        self.membership.pending_commit = true;
                        self.queue
                            .schedule(now + self.cfg.membership.drain_window, Event::EpochCommit);
                    }
                    // Already at the top of the ladder: stop probing.
                    None => self.serve.repacked = true,
                }
            }
        }
        self.queue
            .schedule(now + self.cfg.serve.tick, Event::ServeTick);
    }

    /// Abandons serve-mode request `req`: the client stops waiting, the
    /// operation is marked resolved (squelching late responses and parked
    /// retries), and the accounting that keeps the open system drainable is
    /// closed out. Never fails the client rank — giving up on one request
    /// is normal overload behaviour, not a crash.
    fn serve_give_up(&mut self, now: SimTime, req: ReqId) {
        let _ = now;
        let r = self.requests[req as usize];
        if !self.op_done.insert((r.origin.0, r.seq)) {
            return; // Already resolved by a racing path.
        }
        self.serve.stats.gave_up += 1;
        self.faults.failed_ops += 1;
        self.procs[r.origin.idx()].outstanding -= 1;
        self.serve.active -= 1;
        self.free_request(req);
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::workload::{ClosureProgram, ScriptProgram};
    use vt_core::TopologyKind;

    fn small_cfg(n_procs: u32, topo: TopologyKind) -> RuntimeConfig {
        let mut cfg = RuntimeConfig::new(n_procs, topo);
        cfg.record_ops = true;
        cfg
    }

    fn run_all(cfg: RuntimeConfig, mk: impl Fn(Rank) -> Box<dyn Program>) -> Report {
        let programs = (0..cfg.n_procs).map(|r| mk(Rank(r))).collect();
        Engine::new(cfg, programs).run().expect("no deadlock")
    }

    #[test]
    fn all_idle_finishes_at_zero() {
        let report = run_all(small_cfg(8, TopologyKind::Fcg), |_| {
            Box::new(ScriptProgram::new(vec![]))
        });
        assert_eq!(report.finish_time, SimTime::ZERO);
        assert_eq!(report.metrics.total_ops(), 0);
    }

    #[test]
    fn single_blocking_putv_completes() {
        // 8 procs, 4 ppn -> 2 nodes; rank 4 sends a vectored put to rank 0.
        let report = run_all(small_cfg(8, TopologyKind::Fcg), |r| {
            if r == Rank(4) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::put_v(
                    Rank(0),
                    4,
                    1024,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.metrics.per_rank[4].ops, 1);
        let lat = report.metrics.per_rank[4].latency_us.mean();
        // Sane magnitude: tens of microseconds, not zero, not seconds.
        assert!(lat > 5.0 && lat < 200.0, "latency {lat}us");
        assert_eq!(report.cht_totals.serviced, 1);
        assert_eq!(report.cht_totals.forwarded, 0);
    }

    #[test]
    fn local_op_bypasses_cht() {
        let report = run_all(small_cfg(4, TopologyKind::Fcg), |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::acc(Rank(0), 4096))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.cht_totals.serviced, 0);
        assert_eq!(report.net.messages, 0);
        assert_eq!(report.metrics.per_rank[1].ops, 1);
        let lat = report.metrics.per_rank[1].latency_us.mean();
        assert!(lat < 10.0, "intra-node op should be fast, got {lat}us");
    }

    #[test]
    fn direct_put_bypasses_cht_but_uses_network() {
        let report = run_all(small_cfg(8, TopologyKind::Fcg), |r| {
            if r == Rank(4) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::put(Rank(0), 8192))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.cht_totals.serviced, 0);
        assert_eq!(report.net.messages, 2); // payload + hardware ack
    }

    #[test]
    fn mfcg_forwards_non_neighbor_requests() {
        // 9 nodes on a 3x3 MFCG at 1 ppn: rank 8 -> rank 0 needs one forward.
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(8) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(0),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.cht_totals.forwarded, 1);
        assert_eq!(report.cht_totals.serviced, 1);
    }

    #[test]
    fn fetch_add_returns_running_counter() {
        // Three ranks each fetch-add 1 on rank 0's counter; the returned
        // values must be a permutation of {0, 1, 2}.
        let mut cfg = small_cfg(4, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::<i64>::new()));
        let programs: Vec<Box<dyn Program>> = (0..4)
            .map(|_| {
                let seen = seen.clone();
                let mut fired = false;
                Box::new(ClosureProgram::new(move |ctx: &ProcCtx| {
                    if ctx.rank == Rank(0) {
                        return Action::Done;
                    }
                    if !fired {
                        fired = true;
                        return Action::Op(Op::fetch_add(Rank(0), 1));
                    }
                    if let Some(v) = ctx.last_fetch {
                        seen.lock().unwrap().push(v);
                    }
                    Action::Done
                })) as Box<dyn Program>
            })
            .collect();
        let report = Engine::new(cfg, programs).run().unwrap();
        assert_eq!(report.metrics.total_ops(), 3);
        let mut vals = seen.lock().unwrap().clone();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2]);
    }

    #[test]
    fn async_ops_fence_with_waitall() {
        let mut cfg = small_cfg(4, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(3) {
                Box::new(ScriptProgram::new(vec![
                    Action::OpAsync(Op::acc(Rank(0), 1024)),
                    Action::OpAsync(Op::acc(Rank(1), 1024)),
                    Action::OpAsync(Op::acc(Rank(2), 1024)),
                    Action::WaitAll,
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.metrics.per_rank[3].ops, 3);
        assert_eq!(report.cht_totals.serviced, 3);
    }

    #[test]
    fn barrier_synchronises_all_ranks() {
        // Rank 0 computes 1 ms then barriers; everyone else barriers
        // immediately. All must finish at (or after) the release.
        let cfg = small_cfg(8, TopologyKind::Fcg);
        let report = run_all(cfg, |r| {
            if r == Rank(0) {
                Box::new(ScriptProgram::new(vec![
                    Action::Compute(SimTime::from_millis(1)),
                    Action::Barrier,
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![Action::Barrier]))
            }
        });
        assert!(report.finish_time >= SimTime::from_millis(1));
        for s in &report.metrics.per_rank {
            assert!(s.done_at >= SimTime::from_millis(1));
        }
    }

    #[test]
    fn credit_exhaustion_blocks_then_recovers() {
        // One sender with M = 1 credit fires 5 async accs at the same
        // remote target: issues must serialise on the credit but all
        // complete.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        cfg.buffers_per_proc = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![
                    Action::OpAsync(Op::acc(Rank(0), 512)),
                    Action::OpAsync(Op::acc(Rank(0), 512)),
                    Action::OpAsync(Op::acc(Rank(0), 512)),
                    Action::OpAsync(Op::acc(Rank(0), 512)),
                    Action::OpAsync(Op::acc(Rank(0), 512)),
                    Action::WaitAll,
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.metrics.per_rank[1].ops, 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = |cfg: RuntimeConfig| {
            run_all(cfg, |r| {
                Box::new(ScriptProgram::new(vec![
                    Action::Op(Op::put_v(Rank((r.0 + 1) % 16), 4, 512)),
                    Action::Barrier,
                    Action::Op(Op::fetch_add(Rank(0), 1)),
                ]))
            })
        };
        let a = mk(small_cfg(16, TopologyKind::Mfcg));
        let b = mk(small_cfg(16, TopologyKind::Mfcg));
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.net, b.net);
        assert_eq!(
            a.metrics.mean_latency_by_rank_us(),
            b.metrics.mean_latency_by_rank_us()
        );
    }

    #[test]
    fn lock_is_granted_fifo_and_excludes() {
        // Ranks 1 and 2 both lock rank 0's mutex, hold it for 1 ms of
        // compute, then unlock. The second lock must be delayed by the
        // first holder's critical section.
        let mut cfg = small_cfg(3, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(0) {
                Box::new(ScriptProgram::new(vec![]))
            } else {
                Box::new(ScriptProgram::new(vec![
                    Action::Op(Op::lock(Rank(0))),
                    Action::Compute(SimTime::from_millis(1)),
                    Action::Op(Op::unlock(Rank(0))),
                ]))
            }
        });
        let locks: Vec<_> = report
            .metrics
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::Lock)
            .collect();
        assert_eq!(locks.len(), 2);
        let mut lat: Vec<SimTime> = locks.iter().map(|o| o.latency()).collect();
        lat.sort_unstable();
        // One immediate grant, one delayed by at least the 1 ms hold.
        assert!(lat[0] < SimTime::from_millis(1));
        assert!(
            lat[1] >= SimTime::from_millis(1),
            "second lock {:?}",
            lat[1]
        );
        // Both critical sections completed: 2 locks + 2 unlocks.
        assert_eq!(report.metrics.total_ops(), 4);
    }

    #[test]
    fn unheld_unlock_is_a_noop() {
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::unlock(Rank(0)))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.metrics.total_ops(), 1);
    }

    #[test]
    fn intra_node_lock_contention_respects_mutex() {
        // Two ranks on the same node as the mutex owner: the local path
        // must still serialise the critical sections.
        let report = run_all(small_cfg(4, TopologyKind::Fcg), |r| {
            if r == Rank(1) || r == Rank(2) {
                Box::new(ScriptProgram::new(vec![
                    Action::Op(Op::lock(Rank(0))),
                    Action::Compute(SimTime::from_millis(2)),
                    Action::Op(Op::unlock(Rank(0))),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        // Total time covers two back-to-back 2 ms critical sections.
        assert!(report.finish_time >= SimTime::from_millis(4));
    }

    #[test]
    fn blocked_lock_holder_shows_as_deadlock_if_never_released() {
        // A rank that locks and never unlocks leaves a queued second lock
        // with no pending events: the engine must report the quiescence
        // instead of hanging or mis-completing.
        let mut cfg = small_cfg(3, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let programs: Vec<Box<dyn Program>> = (0..3)
            .map(|r| {
                Box::new(ScriptProgram::new(if r == 0 {
                    vec![]
                } else {
                    vec![Action::Op(Op::lock(Rank(0)))]
                })) as Box<dyn Program>
            })
            .collect();
        let err = Engine::new(cfg, programs).run().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("deadlock"), "unexpected: {msg}");
    }

    #[test]
    fn notify_wakes_a_waiting_consumer() {
        // Rank 1 waits for two notifications; rank 2 computes 1 ms, then
        // sends two notifying puts. Rank 1 must finish after the producer's
        // compute block.
        let mut cfg = small_cfg(3, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| match r.0 {
            1 => Box::new(ScriptProgram::new(vec![Action::WaitNotify(2)])),
            2 => Box::new(ScriptProgram::new(vec![
                Action::Compute(SimTime::from_millis(1)),
                Action::Op(Op::put(Rank(1), 4096).with_notify()),
                Action::Op(Op::put_v(Rank(1), 4, 256).with_notify()),
            ])),
            _ => Box::new(ScriptProgram::new(vec![])),
        });
        let consumer_done = report.metrics.per_rank[1].done_at;
        assert!(consumer_done >= SimTime::from_millis(1));
        assert!(report.finish_time >= consumer_done);
    }

    #[test]
    fn wait_notify_already_satisfied_is_immediate() {
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(0) {
                Box::new(ScriptProgram::new(vec![Action::WaitNotify(0)]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.metrics.per_rank[0].done_at, SimTime::ZERO);
    }

    #[test]
    fn missing_notification_is_reported_as_deadlock() {
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let programs: Vec<Box<dyn Program>> = vec![
            Box::new(ScriptProgram::new(vec![Action::WaitNotify(1)])),
            Box::new(ScriptProgram::new(vec![])),
        ];
        let err = Engine::new(cfg, programs).run().unwrap_err();
        assert!(err.to_string().contains("deadlock"));
    }

    #[test]
    fn notify_counts_accumulate_across_waits() {
        // A two-stage pipeline: rank 0 waits for 1, then for 2 cumulative
        // notifications.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(0) {
                Box::new(ScriptProgram::new(vec![
                    Action::WaitNotify(1),
                    Action::Compute(SimTime::from_micros(10)),
                    Action::WaitNotify(2),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![
                    Action::Op(Op::acc(Rank(0), 128).with_notify()),
                    Action::Compute(SimTime::from_millis(2)),
                    Action::Op(Op::acc(Rank(0), 128).with_notify()),
                ]))
            }
        });
        assert!(report.metrics.per_rank[0].done_at >= SimTime::from_millis(2));
    }

    fn run_all_faulted(
        cfg: RuntimeConfig,
        plan: &FaultPlan,
        mk: impl Fn(Rank) -> Box<dyn Program>,
    ) -> Report {
        let programs = (0..cfg.n_procs).map(|r| mk(Rank(r))).collect();
        Engine::with_faults(cfg, programs, plan)
            .run()
            .expect("fault run must terminate cleanly")
    }

    /// A non-empty plan that injects nothing: probability-zero drop window.
    /// Enables the whole recovery machinery without perturbing traffic.
    fn inert_plan() -> FaultPlan {
        FaultPlan::new().drop_window(SimTime::ZERO, SimTime::from_secs(3600), 0.0)
    }

    #[test]
    fn empty_fault_plan_is_byte_identical() {
        let mk = |r: Rank| -> Box<dyn Program> {
            Box::new(ScriptProgram::new(vec![
                Action::Op(Op::put_v(Rank((r.0 + 3) % 16), 4, 768)),
                Action::Barrier,
                Action::Op(Op::fetch_add(Rank(0), 1)),
            ]))
        };
        let a = run_all(small_cfg(16, TopologyKind::Cfcg), mk);
        let b = run_all_faulted(small_cfg(16, TopologyKind::Cfcg), &FaultPlan::default(), mk);
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.net, b.net);
        assert_eq!(a.events, b.events);
        assert_eq!(
            a.metrics.mean_latency_by_rank_us(),
            b.metrics.mean_latency_by_rank_us()
        );
        assert_eq!(b.faults, crate::metrics::FaultStats::default());
        assert!(b.failures.is_empty());
        assert_eq!(b.availability(), 1.0);
    }

    #[test]
    fn forwarder_crash_is_routed_around() {
        // 3x3 MFCG at 1 ppn: the healthy route 8 -> 0 forwards through
        // node 6. Kill node 6 before the op issues: the request must escape
        // through node 2 instead and still execute exactly once.
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 6);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(8) {
                Box::new(ScriptProgram::new(vec![
                    Action::Compute(SimTime::from_millis(1)),
                    Action::Op(Op::fetch_add(Rank(0), 1)),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![Action::Compute(
                    SimTime::from_millis(2),
                )]))
            }
        });
        assert_eq!(report.metrics.per_rank[8].ops, 1);
        assert!(report.faults.reroutes >= 1, "{:?}", report.faults);
        assert_eq!(report.cht_totals.serviced, 1);
        assert_eq!(report.lost_ranks, vec![6]);
        assert!(report.failures.is_empty());
        let expected = (9.0 - 1.0) / 9.0;
        assert!((report.availability() - expected).abs() < 1e-12);
    }

    #[test]
    fn dead_target_is_reported_unreachable() {
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 0);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(8) {
                Box::new(ScriptProgram::new(vec![
                    Action::Compute(SimTime::from_millis(1)),
                    Action::Op(Op::fetch_add(Rank(0), 1)),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![Action::Compute(
                    SimTime::from_millis(2),
                )]))
            }
        });
        assert_eq!(report.failures.len(), 1);
        let msg = report.failures[0].to_string();
        assert!(msg.contains("unreachable"), "unexpected: {msg}");
        assert!(msg.contains("node0"), "diagnostic names the target: {msg}");
        assert_eq!(report.faults.failed_ops, 1);
        // Rank 0 lost with its node, rank 8 failed: 7 of 9 available.
        let expected = (9.0 - 2.0) / 9.0;
        assert!((report.availability() - expected).abs() < 1e-12);
    }

    #[test]
    fn membership_repairs_boundary_victim_crash() {
        // 5x5 MFCG with 23 populated: node 2 is the *sole* escape hop
        // between (3,0) = node 3 and (2,4) = node 22, so retry and
        // route-around alone cannot survive its crash (the static
        // analyzer refuses the configuration — see vt-analyze's
        // boundary_crash_on_partial_packing_is_refused). With membership
        // on, the failure detector confirms the crash, an epoch commits a
        // survivor re-packing, and the deferred operation completes over
        // the repaired grid.
        let mut cfg = small_cfg(23, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.membership = crate::config::MembershipConfig::on();
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 2);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(3) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(22),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.metrics.per_rank[3].ops, 1);
        assert_eq!(report.credit_leaks, 0);
        assert_eq!(report.repair.epoch_bumps, 1, "{:?}", report.repair);
        assert_eq!(report.repair.final_epoch, 1);
        assert!(report.repair.suspicions >= 1);
        // MFCG supports 22 nodes as a partial packing: no fallback rung.
        assert_eq!(report.repair.fallback_depth, 0);
    }

    #[test]
    fn membership_off_boundary_victim_crash_still_fails() {
        // The contrast pin: the same crash without membership exhausts
        // the retry budget and is diagnosed, exactly as before this
        // subsystem existed.
        let mut cfg = small_cfg(23, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 2);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(3) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(22),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.repair, crate::metrics::RepairStats::default());
    }

    #[test]
    fn membership_repairs_cfcg_boundary_victim() {
        // The CFCG sibling: 4x3x3 with 29 populated, node 24 = (0,0,2)
        // is the sole in-slice forwarder toward (0,1,2) = node 28.
        let mut cfg = small_cfg(29, TopologyKind::Cfcg);
        cfg.procs_per_node = 1;
        cfg.membership = crate::config::MembershipConfig::on();
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 24);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(25) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(28),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.metrics.per_rank[25].ops, 1);
        assert_eq!(report.credit_leaks, 0);
        assert!(report.repair.epoch_bumps >= 1, "{:?}", report.repair);
    }

    #[test]
    fn stale_epoch_copies_are_rejected_and_replayed_exactly_once() {
        // A mid-flight crash: traffic is flowing through the victim when
        // it dies, so old-epoch copies are genuinely in flight across the
        // commit. The fetch-add chain must still execute exactly once
        // per op (final counter equals the op count) with zero leaks.
        let mut cfg = small_cfg(23, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.membership = crate::config::MembershipConfig::on();
        let plan = FaultPlan::new().crash_node(SimTime::from_micros(50), 2);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r.0 % 3 == 0 && r != Rank(22) && r != Rank(2) {
                Box::new(ScriptProgram::new(vec![
                    Action::Op(Op::fetch_add(Rank(22), 1)),
                    Action::Op(Op::fetch_add(Rank(22), 1)),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.credit_leaks, 0);
        let issuers = (0..23u32).filter(|r| r % 3 == 0 && *r != 2).count() as i64;
        assert_eq!(report.fetch_finals[22], issuers * 2);
        assert_eq!(report.repair.final_epoch, 1);
    }

    #[test]
    fn membership_with_empty_plan_is_byte_identical() {
        // Enabling membership without any scheduled fault must not
        // change a single event: the detector is gated on faults_on().
        let mk = |r: Rank| -> Box<dyn Program> {
            Box::new(ScriptProgram::new(vec![
                Action::Op(Op::put_v(Rank((r.0 + 3) % 16), 4, 768)),
                Action::Barrier,
                Action::Op(Op::fetch_add(Rank(0), 1)),
            ]))
        };
        let a = run_all(small_cfg(16, TopologyKind::Cfcg), mk);
        let mut cfg = small_cfg(16, TopologyKind::Cfcg);
        cfg.membership = crate::config::MembershipConfig::on();
        let b = run_all_faulted(cfg, &FaultPlan::default(), mk);
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.events, b.events);
        assert_eq!(a.net, b.net);
        assert_eq!(b.repair, crate::metrics::RepairStats::default());
    }

    #[test]
    fn repair_certifier_refusal_falls_down_the_ladder() {
        // A certifier that rejects everything except the FCG terminal
        // rung forces the repair to fall the whole ladder; the run still
        // completes, with the depth recorded.
        fn fcg_only(kind: TopologyKind, _survivors: u32) -> Result<(), String> {
            if kind == TopologyKind::Fcg {
                Ok(())
            } else {
                Err("synthetic refusal".to_string())
            }
        }
        let mut cfg = small_cfg(23, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.membership = crate::config::MembershipConfig::on();
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 2);
        let programs: Vec<Box<dyn Program>> = (0..23)
            .map(|r| {
                Box::new(ScriptProgram::new(if r == 3 {
                    vec![Action::Op(Op::fetch_add(Rank(22), 1))]
                } else {
                    vec![]
                })) as Box<dyn Program>
            })
            .collect();
        let mut engine = Engine::with_faults(cfg, programs, &plan);
        engine.set_repair_certifier(fcg_only);
        let report = engine.run().unwrap();
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.metrics.per_rank[3].ops, 1);
        // Mfcg -> Fcg is one rung down the ladder.
        assert_eq!(report.repair.fallback_depth, 1, "{:?}", report.repair);
    }

    #[test]
    fn dropped_request_is_retransmitted_with_backoff() {
        // A probability-1 drop window swallows the first attempt; it closes
        // before the first retransmission (issue + timeout = ~5 ms), so the
        // retry gets through and the op completes.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let plan = FaultPlan::new().drop_window(SimTime::ZERO, SimTime::from_millis(2), 1.0);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::acc(Rank(0), 2048))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert_eq!(report.metrics.per_rank[1].ops, 1);
        assert!(report.faults.retries >= 1, "{:?}", report.faults);
        assert!(report.net.dropped >= 1);
        assert!(report.failures.is_empty());
        // The drop cost at least one 5 ms timeout round.
        assert!(report.finish_time >= SimTime::from_millis(5));
        // Buffer credits held by the dropped copy were reclaimed.
        assert!(report.faults.reclaims >= 1);
    }

    #[test]
    fn premature_timeout_duplicates_are_deduplicated() {
        // A timeout shorter than the op's round trip guarantees a
        // retransmission even though nothing was dropped: both copies reach
        // the target, the dedup table must apply the fetch-&-add exactly
        // once, and the running counter seen by back-to-back ops proves it.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        cfg.retry.timeout = SimTime::from_micros(15);
        cfg.retry.max_retries = 8;
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Vec::<i64>::new()));
        let programs: Vec<Box<dyn Program>> = (0..2)
            .map(|_| {
                let seen = seen.clone();
                let mut fired = 0;
                Box::new(ClosureProgram::new(move |ctx: &ProcCtx| {
                    if ctx.rank == Rank(0) {
                        return Action::Done;
                    }
                    if let Some(v) = ctx.last_fetch {
                        let mut s = seen.lock().unwrap();
                        if s.len() < fired {
                            s.push(v);
                        }
                    }
                    if fired < 2 {
                        fired += 1;
                        return Action::Op(Op::fetch_add(Rank(0), 1));
                    }
                    if let Some(v) = ctx.last_fetch {
                        let mut s = seen.lock().unwrap();
                        if s.len() < 2 {
                            s.push(v);
                        }
                    }
                    Action::Done
                })) as Box<dyn Program>
            })
            .collect();
        let report = Engine::with_faults(cfg, programs, &inert_plan())
            .run()
            .unwrap();
        assert!(report.faults.retries >= 1, "{:?}", report.faults);
        assert!(report.faults.dedup_hits >= 1, "{:?}", report.faults);
        // Exactly-once: the second fetch sees 1, not the duplicate-inflated
        // counter.
        assert_eq!(*seen.lock().unwrap(), vec![0, 1]);
        assert!(report.failures.is_empty());
    }

    #[test]
    fn barrier_releases_despite_lost_ranks() {
        // Node 1 (ranks 4..8) dies at 1 ms; the survivors' barrier must
        // still release instead of waiting for the dead forever.
        let cfg = small_cfg(8, TopologyKind::Fcg);
        let plan = FaultPlan::new().crash_node(SimTime::from_millis(1), 1);
        let report = run_all_faulted(cfg, &plan, |_| {
            Box::new(ScriptProgram::new(vec![
                Action::Compute(SimTime::from_millis(2)),
                Action::Barrier,
            ]))
        });
        assert_eq!(report.lost_ranks, vec![4, 5, 6, 7]);
        for r in 0..4 {
            assert!(report.metrics.per_rank[r].done_at >= SimTime::from_millis(2));
        }
        assert!((report.availability() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let mk = |r: Rank| -> Box<dyn Program> {
            Box::new(ScriptProgram::new(vec![
                Action::Compute(SimTime::from_micros(u64::from(r.0) * 7)),
                Action::Op(Op::fetch_add(Rank(0), 1)),
                Action::Op(Op::put_v(Rank(0), 2, 512)),
            ]))
        };
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(40), 3)
            .drop_window(SimTime::ZERO, SimTime::from_millis(1), 0.4);
        let run = || {
            let mut cfg = small_cfg(16, TopologyKind::Hypercube);
            cfg.procs_per_node = 1;
            run_all_faulted(cfg, &plan, mk)
        };
        let a = run();
        let b = run();
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.net, b.net);
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.events, b.events);
        assert_eq!(a.lost_ranks, b.lost_ranks);
        assert_eq!(a.failures.len(), b.failures.len());
    }

    #[test]
    fn hypercube_runs_end_to_end() {
        let mut cfg = small_cfg(16, TopologyKind::Hypercube);
        cfg.procs_per_node = 1;
        let report = run_all(cfg, |r| {
            if r == Rank(15) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::get_v(
                    Rank(0),
                    2,
                    256,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        // 15 -> 0 on a 16-node hypercube: 4 hops = 3 forwards + 1 service.
        assert_eq!(report.cht_totals.forwarded, 3);
        assert_eq!(report.cht_totals.serviced, 1);
    }

    fn hotspot_program(r: Rank) -> Box<dyn Program> {
        // Ranks 7 and 8 slam rank 0 with async traffic that all funnels
        // through forwarder node 6 on the 3x3 MFCG — the coalescable
        // pattern. The initial compute block leaves node 6's CHT cold, so
        // its first service pays the wakeup penalty while the rest of the
        // burst queues up behind the head.
        if r == Rank(7) || r == Rank(8) {
            let mut script = vec![Action::Compute(SimTime::from_micros(100))];
            script.extend((0..6).map(|_| Action::OpAsync(Op::fetch_add(Rank(0), 1))));
            script.push(Action::WaitAll);
            Box::new(ScriptProgram::new(script))
        } else {
            Box::new(ScriptProgram::new(vec![]))
        }
    }

    #[test]
    fn coalescing_folds_shared_hop_forwards() {
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        let off = run_all(cfg, hotspot_program);
        let mut cfg_on = cfg;
        cfg_on.coalesce = crate::config::CoalesceConfig::on();
        let on = run_all(cfg_on, hotspot_program);
        // Semantics are identical...
        assert_eq!(off.metrics.total_ops(), on.metrics.total_ops());
        assert_eq!(off.fetch_finals, on.fetch_finals);
        assert_eq!(on.cht_totals.forwarded, off.cht_totals.forwarded);
        assert_eq!(on.cht_totals.serviced, off.cht_totals.serviced);
        // ...but the forwarder sent fewer physical messages.
        assert!(on.coalesce.envelopes >= 1, "{:?}", on.coalesce);
        assert_eq!(on.coalesce.agg_acks, on.coalesce.envelopes);
        assert!(on.coalesce.deepest_fold >= 2);
        assert!(
            on.cht_totals.fwd_messages < on.cht_totals.forwarded,
            "fwd_messages {} forwarded {}",
            on.cht_totals.fwd_messages,
            on.cht_totals.forwarded
        );
        assert_eq!(off.cht_totals.fwd_messages, off.cht_totals.forwarded);
        assert_eq!(off.coalesce, crate::metrics::CoalesceStats::default());
        assert!(on.net.messages < off.net.messages);
    }

    #[test]
    fn coalesced_runs_are_deterministic() {
        let run = || {
            let mut cfg = small_cfg(9, TopologyKind::Mfcg);
            cfg.procs_per_node = 1;
            cfg.coalesce = crate::config::CoalesceConfig::on();
            run_all(cfg, hotspot_program)
        };
        let a = run();
        let b = run();
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.net, b.net);
        assert_eq!(a.events, b.events);
        assert_eq!(a.cht_totals, b.cht_totals);
        assert_eq!(a.coalesce, b.coalesce);
    }

    #[test]
    fn coalescing_composes_with_fault_recovery() {
        // Kill the healthy forwarder: coalesced traffic must route around
        // it and still apply each fetch-&-add exactly once.
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.coalesce = crate::config::CoalesceConfig::on();
        let plan = FaultPlan::new().crash_node(SimTime::ZERO, 6);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(8) {
                let mut script = vec![Action::Compute(SimTime::from_millis(1))];
                script.extend((0..6).map(|_| Action::OpAsync(Op::fetch_add(Rank(0), 1))));
                script.push(Action::WaitAll);
                Box::new(ScriptProgram::new(script))
            } else {
                Box::new(ScriptProgram::new(vec![Action::Compute(
                    SimTime::from_millis(2),
                )]))
            }
        });
        assert_eq!(report.metrics.per_rank[8].ops, 6);
        assert_eq!(report.fetch_finals[0], 6);
        assert!(report.failures.is_empty());
        assert!(report.faults.reroutes >= 1, "{:?}", report.faults);
        assert_eq!(report.lost_ranks, vec![6]);
    }

    #[test]
    fn envelope_respects_byte_bound() {
        // Cap the envelope at exactly two member requests: folds deeper
        // than 2 must never form.
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.coalesce = crate::config::CoalesceConfig::on();
        let rb = Op::fetch_add(Rank(0), 1).request_bytes();
        let sub = cfg.net.env_sub_header;
        cfg.coalesce.max_bytes = Some(2 * rb + sub);
        let report = run_all(cfg, hotspot_program);
        assert!(report.coalesce.envelopes >= 1, "{:?}", report.coalesce);
        assert_eq!(report.coalesce.deepest_fold, 2);
        assert!(report.coalesce.largest_envelope <= 2 * rb);
        assert_eq!(report.fetch_finals[0], 12);
    }

    fn serve_cfg(n_procs: u32, topo: TopologyKind, rate: f64) -> RuntimeConfig {
        let mut cfg = small_cfg(n_procs, topo);
        cfg.serve = crate::config::ServeConfig::on(
            vt_simnet::ArrivalProcess::steady(rate),
            SimTime::from_millis(2),
        );
        cfg
    }

    fn idle_programs(cfg: &RuntimeConfig) -> Vec<Box<dyn Program>> {
        (0..cfg.n_procs)
            .map(|_| Box::new(ScriptProgram::new(vec![])) as Box<dyn Program>)
            .collect()
    }

    #[test]
    fn serve_open_system_drains_and_balances_its_ledger() {
        let cfg = serve_cfg(8, TopologyKind::Fcg, 50_000.0);
        let report = Engine::new(cfg, idle_programs(&cfg))
            .run()
            .expect("serve run completes");
        let s = report.serve;
        assert!(s.arrivals > 50, "expected real load, got {s:?}");
        assert_eq!(s.arrivals, s.admitted + s.sheds);
        assert_eq!(s.admitted, s.completed + s.gave_up);
        assert_eq!(s.completed, report.serve_latencies_us.len() as u64);
        assert_eq!(report.credit_leaks, 0);
        // Exactly-once: the hot counter holds every applied increment —
        // all completions, plus possibly some abandoned ops whose effect
        // landed after the client stopped waiting.
        let hot = report.fetch_finals[0] as u64;
        assert!(hot >= s.completed && hot <= s.admitted, "{hot} vs {s:?}");
        assert!(report.finish_time >= SimTime::from_millis(2));
    }

    #[test]
    fn serve_overload_sheds_deterministically() {
        let run = || {
            let mut cfg = serve_cfg(8, TopologyKind::Fcg, 400_000.0);
            cfg.serve.queue_cap = 2;
            Engine::new(cfg, idle_programs(&cfg))
                .run()
                .expect("overloaded serve run still completes")
        };
        let a = run();
        let b = run();
        assert!(a.serve.sheds > 0, "cap 2 at 400k/s/client must shed");
        assert!(a.faults.sheds == a.serve.sheds);
        assert!(!a.failures.is_empty(), "shed diagnostics recorded");
        assert!(
            a.failures.len() <= 8,
            "diagnostics stay bounded: {}",
            a.failures.len()
        );
        assert!(matches!(a.failures[0], SimError::Overloaded { .. }));
        assert_eq!(a.finish_time, b.finish_time);
        assert_eq!(a.serve, b.serve);
        assert_eq!(a.events, b.events);
        assert_eq!(a.serve_latencies_us, b.serve_latencies_us);
    }

    #[test]
    fn serve_disabled_config_is_byte_identical_to_baseline() {
        let base = run_all(small_cfg(9, TopologyKind::Mfcg), hotspot_program);
        // Same run with serving machinery compiled in but disabled.
        let mut cfg = small_cfg(9, TopologyKind::Mfcg);
        cfg.serve = crate::config::ServeConfig::default();
        assert!(!cfg.serve.enabled);
        let off = run_all(cfg, hotspot_program);
        assert_eq!(base.finish_time, off.finish_time);
        assert_eq!(base.events, off.events);
        assert_eq!(base.net, off.net);
        assert_eq!(off.serve, crate::metrics::ServeStats::default());
        assert!(off.serve_latencies_us.is_empty());
    }

    #[test]
    fn serve_load_repack_commits_epoch_under_traffic() {
        let mut cfg = serve_cfg(16, TopologyKind::Fcg, 100_000.0);
        cfg.procs_per_node = 1;
        cfg.serve.horizon = SimTime::from_millis(4);
        cfg.serve.load_repack = true;
        cfg.serve.tick = SimTime::from_micros(100);
        cfg.serve.skew_ticks = 2;
        let report = Engine::new(cfg, idle_programs(&cfg))
            .run()
            .expect("load-repack run completes");
        let s = report.serve;
        assert_eq!(s.load_repacks, 1, "{s:?}");
        assert_eq!(report.repair.epoch_bumps, 1, "{:?}", report.repair);
        assert_eq!(report.repair.final_epoch, 1);
        assert_eq!(report.credit_leaks, 0);
        assert_eq!(s.admitted, s.completed + s.gave_up);
        let hot = report.fetch_finals[0] as u64;
        assert!(hot >= s.completed && hot <= s.admitted, "{hot} vs {s:?}");
        // Traffic kept flowing across the commit: requests completed both
        // before and after the epoch bump (drained set non-trivial OR
        // completions continued — check completions outnumber what could
        // drain pre-commit is too timing-coupled, so assert drain + flow).
        assert!(s.completed > 0);
    }

    #[test]
    fn serve_escalation_ladder_respects_node_support() {
        assert_eq!(
            escalate_kind(TopologyKind::Fcg, 16),
            Some(TopologyKind::Mfcg)
        );
        assert_eq!(
            escalate_kind(TopologyKind::Mfcg, 16),
            Some(TopologyKind::Cfcg)
        );
        assert_eq!(
            escalate_kind(TopologyKind::Cfcg, 16),
            Some(TopologyKind::KFcg(4))
        );
        // The hypercube is already minimal-degree: no rung above it.
        assert_eq!(escalate_kind(TopologyKind::Hypercube, 16), None);
        // A k-FCG past the dimension bound has nowhere to go.
        assert_eq!(escalate_kind(TopologyKind::KFcg(u8::MAX), 16), None);
    }

    #[test]
    fn serve_retry_budget_and_guard_bound_retransmissions() {
        let run = |budget: u32, guard: f64| {
            let mut cfg = serve_cfg(8, TopologyKind::Fcg, 400_000.0);
            cfg.serve.queue_cap = 8;
            cfg.serve.retry_budget = budget;
            cfg.serve.guard_threshold = guard;
            // A tight timeout forces retries under queueing delay alone.
            cfg.retry.timeout = SimTime::from_micros(20);
            Engine::new(cfg, idle_programs(&cfg))
                .run()
                .expect("serve run completes")
        };
        let strict = run(0, 1.0);
        assert_eq!(strict.serve.retries, 0, "budget 0 must suppress retries");
        assert!(strict.serve.shed_retries > 0, "{:?}", strict.serve);
        let loose = run(16, 1.0);
        assert!(loose.serve.retries > 0, "{:?}", loose.serve);
        // Per-client budgets bound total serve retransmissions.
        assert!(loose.serve.retries <= 16 * 8);
    }

    // ----- transient faults: reboots, partitions, corruption --------------

    #[test]
    fn restarted_node_ranks_resume_and_complete() {
        // Rank 4's node crashes mid-compute and reboots: the rank revives
        // where the crash interrupted it, issues its operation, and the run
        // ends with nothing lost and nothing failed.
        let cfg = small_cfg(8, TopologyKind::Fcg);
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(500), 1)
            .restart_node(SimTime::from_millis(5), 1);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(4) {
                Box::new(ScriptProgram::new(vec![
                    Action::Compute(SimTime::from_millis(1)),
                    Action::Op(Op::fetch_add(Rank(0), 1)),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.lost_ranks.is_empty(), "{:?}", report.lost_ranks);
        assert_eq!(report.metrics.per_rank[4].ops, 1);
        assert_eq!(report.fetch_finals[0], 1);
        assert_eq!(report.availability(), 1.0);
        assert_eq!(report.credit_leaks, 0);
    }

    #[test]
    fn inflight_op_survives_crash_and_reboot_exactly_once() {
        // The origin's node dies with a blocking fetch-&-add in flight and
        // reboots 10 ms later: the revived rank's re-armed timer
        // retransmits with the original sequence number, so the target's
        // dedup table keeps the increment exactly-once no matter whether
        // the first copy had already been applied.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(10), 1)
            .restart_node(SimTime::from_millis(10), 1);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(0),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.lost_ranks.is_empty());
        assert_eq!(report.metrics.per_rank[1].ops, 1);
        assert_eq!(report.fetch_finals[0], 1, "exactly-once across the cycle");
        assert!(report.faults.retries >= 1, "{:?}", report.faults);
        assert_eq!(report.credit_leaks, 0);
    }

    #[test]
    fn rejoin_grows_view_back_to_original_kind() {
        // The PR 4 boundary pin, continued: node 2 (sole escape hop on the
        // 23-node MFCG) crashes, membership commits a 22-survivor repair,
        // then the node reboots. Its announcements feed the detector fresh
        // evidence, a grow-back epoch re-admits it, and the second
        // operation runs over the restored full packing — original kind,
        // fallback depth 0 throughout.
        let mut cfg = small_cfg(23, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.membership = crate::config::MembershipConfig::on();
        let plan = FaultPlan::new()
            .crash_node(SimTime::ZERO, 2)
            .restart_node(SimTime::from_millis(20), 2);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(3) {
                Box::new(ScriptProgram::new(vec![
                    Action::Op(Op::fetch_add(Rank(22), 1)),
                    Action::Compute(SimTime::from_millis(35)),
                    Action::Op(Op::fetch_add(Rank(22), 1)),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.metrics.per_rank[3].ops, 2);
        assert_eq!(report.fetch_finals[22], 2);
        assert_eq!(report.repair.rejoins_committed, 1, "{:?}", report.repair);
        assert_eq!(report.repair.epoch_bumps, 2, "crash repair + grow-back");
        assert_eq!(report.repair.final_epoch, 2);
        assert_eq!(report.repair.fallback_depth, 0);
        assert_eq!(report.credit_leaks, 0);
        assert!(report.lost_ranks.is_empty());
    }

    #[test]
    fn partition_grace_window_suppresses_false_suspicion() {
        // A 15 ms cut severs node 5 from its prober. Without the grace
        // shield the detector would raise (and then have to exonerate) a
        // suspicion; with it the silence is attributed to the active cut
        // and no epoch ever commits.
        let mut cfg = small_cfg(23, TopologyKind::Mfcg);
        cfg.procs_per_node = 1;
        cfg.membership = crate::config::MembershipConfig::on();
        let plan = FaultPlan::new().partition(
            SimTime::ZERO,
            SimTime::from_millis(15),
            vec![(0, 5), (5, 0)],
        );
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(3) {
                Box::new(ScriptProgram::new(vec![Action::Compute(
                    SimTime::from_millis(30),
                )]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(
            report.repair.false_suspicions_suppressed >= 1,
            "{:?}",
            report.repair
        );
        assert_eq!(report.repair.suspicions, 0, "{:?}", report.repair);
        assert_eq!(report.repair.epoch_bumps, 0);
        assert_eq!(report.faults.partitions_healed, 1);
        assert_eq!(report.availability(), 1.0);
    }

    #[test]
    fn partitioned_request_is_retried_after_heal() {
        // The cut drops rank 1's request at the send port; once the window
        // heals, the retransmission goes through.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        let plan = FaultPlan::new().partition(SimTime::ZERO, SimTime::from_millis(3), vec![(1, 0)]);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(0),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert_eq!(report.metrics.per_rank[1].ops, 1);
        assert_eq!(report.fetch_finals[0], 1);
        assert!(report.faults.retries >= 1, "{:?}", report.faults);
        assert_eq!(report.faults.partitions_healed, 1);
        assert!(report.net.dropped >= 1, "{:?}", report.net);
        assert_eq!(report.credit_leaks, 0);
    }

    #[test]
    fn corrupt_frames_are_detected_and_recovered() {
        // Every corrupt delivery must fail an engine checksum (the
        // detected count mirrors the network's corruption count exactly)
        // and the operation still completes exactly once off its retry
        // timer.
        let mut cfg = small_cfg(2, TopologyKind::Fcg);
        cfg.procs_per_node = 1;
        cfg.retry.max_retries = 8;
        let plan = FaultPlan::new().corrupt_window(SimTime::ZERO, SimTime::from_secs(10), 0.5);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r == Rank(1) {
                Box::new(ScriptProgram::new(vec![Action::Op(Op::fetch_add(
                    Rank(0),
                    1,
                ))]))
            } else {
                Box::new(ScriptProgram::new(vec![]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.faults.corrupt_detected >= 1, "{:?}", report.faults);
        assert_eq!(
            report.faults.corrupt_detected, report.net.corrupted,
            "every corrupt delivery passes exactly one checksum site"
        );
        assert_eq!(report.metrics.per_rank[1].ops, 1);
        assert_eq!(report.fetch_finals[0], 1, "corruption never double-applies");
        assert_eq!(report.credit_leaks, 0);
    }

    #[test]
    fn revived_rank_rejoins_an_unreleased_barrier() {
        // Rank 4 enters the barrier, its node crashes and reboots before
        // the other ranks arrive: the revived rank re-enters the same
        // barrier generation and everyone releases together.
        let cfg = small_cfg(8, TopologyKind::Fcg);
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(100), 1)
            .restart_node(SimTime::from_millis(1), 1);
        let report = run_all_faulted(cfg, &plan, |r| {
            if r.0 >= 4 {
                Box::new(ScriptProgram::new(vec![
                    Action::Barrier,
                    Action::Op(Op::fetch_add(Rank(0), 1)),
                ]))
            } else {
                Box::new(ScriptProgram::new(vec![
                    Action::Compute(SimTime::from_millis(4)),
                    Action::Barrier,
                ]))
            }
        });
        assert!(report.failures.is_empty(), "{:?}", report.failures);
        assert!(report.lost_ranks.is_empty(), "{:?}", report.lost_ranks);
        // All four ranks on the rebooted node made it past the barrier and
        // incremented the counter.
        assert_eq!(report.fetch_finals[0], 4);
        assert_eq!(report.availability(), 1.0);
    }
}
