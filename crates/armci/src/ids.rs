//! Identifiers for processes, nodes and requests.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A process rank, global across the job (0-based, dense).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank{}", self.0)
    }
}

/// A node id — re-exported from `vt-core` so the runtime and the topology
/// share one vocabulary.
pub type NodeId = vt_core::NodeId;

/// Index of an in-flight request in the engine's slab.
pub type ReqId = u32;

/// Who holds a buffer credit on a virtual-topology edge: an application
/// process (the origin of a request) or a forwarding communication helper
/// thread.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Sender {
    /// An application process identified by rank.
    Proc(Rank),
    /// The CHT on a node.
    Cht(NodeId),
}

impl fmt::Display for Sender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sender::Proc(r) => write!(f, "{r}"),
            Sender::Cht(n) => write!(f, "cht@node{n}"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn rank_display_and_idx() {
        assert_eq!(Rank(7).to_string(), "rank7");
        assert_eq!(Rank(7).idx(), 7);
    }

    #[test]
    fn sender_equality_distinguishes_kinds() {
        assert_ne!(Sender::Proc(Rank(0)), Sender::Cht(0));
        assert_eq!(Sender::Cht(3), Sender::Cht(3));
        assert_eq!(Sender::Cht(3).to_string(), "cht@node3");
    }
}
