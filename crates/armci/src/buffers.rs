//! Request-buffer credits.
//!
//! A node `j` with an incoming virtual-topology edge from `i` pre-allocates
//! `M` request buffers for **each sender on `i`** — every application
//! process and the forwarding CHT. The sender-side view of those buffers is
//! a *credit*: a sender may have at most `M` requests in flight across an
//! edge and must wait for a buffer-release acknowledgement before reusing a
//! slot. Requests really block on credits in the simulation, so a cyclic
//! forwarding order would genuinely deadlock — the engine detects that
//! instead of hanging, turning the paper's LDF deadlock-freedom claim into a
//! tested property.

use crate::ids::{NodeId, Sender};
use vt_core::FxHashMap;

/// A sender's credit account on one directed virtual-topology edge.
///
/// A coalesced forwarding envelope occupies exactly **one** credit on its
/// `(edge, class)` account regardless of how many member requests it
/// carries, and is released by a single aggregated acknowledgement once the
/// downstream server has dealt with every member. Coalescing therefore only
/// ever *reduces* the credits in flight on an edge — it cannot introduce
/// buffer-dependency cycles the uncoalesced LDF order did not have.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CreditKey {
    /// Who sends.
    pub sender: Sender,
    /// The edge, as (source node, destination node).
    pub edge: (NodeId, NodeId),
    /// The escape buffer class the request travels in. Fault-free traffic is
    /// entirely class 0; route-around escalates the class on every descent
    /// (see `vt_core::ldf::route_avoiding_classed`), giving each class its
    /// own credit pool on the same edge so the buffer-dependency graph over
    /// `(edge, class)` stays acyclic under any dead set.
    pub class: u8,
}

impl CreditKey {
    /// The forwarding CHT of `from`'s account on the edge `from -> to` in
    /// escape class `class` — the account a forwarded request (or a whole
    /// coalesced envelope) draws its downstream buffer from.
    pub fn cht(from: NodeId, to: NodeId, class: u8) -> Self {
        CreditKey {
            sender: Sender::Cht(from),
            edge: (from, to),
            class,
        }
    }
}

/// Tracks in-flight request counts per `(sender, edge)` with a FIFO queue
/// of waiters per account: blocked processes (at most one each, since a
/// process issues one request at a time) and *parked* forwards — requests a
/// CHT set aside because the downstream account was exhausted. Parking
/// instead of head-of-line blocking is essential: a serial server that
/// blocks on one credit while the credit-releasing request sits behind it
/// in its own queue deadlocks even under a cycle-free forwarding order.
#[derive(Debug)]
pub struct CreditManager {
    cap: u32,
    in_flight: FxHashMap<CreditKey, u32>,
    waiters: FxHashMap<CreditKey, std::collections::VecDeque<Waiter>>,
}

/// Who is waiting for a credit to free up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Waiter {
    /// A process blocked trying to issue a request.
    Proc(crate::ids::Rank),
    /// A forward parked at a CHT, identified by the node and the request.
    Fwd {
        /// The forwarding node.
        node: NodeId,
        /// The parked request.
        req: crate::ids::ReqId,
    },
    /// A retransmitted request waiting at its origin for a fresh first-hop
    /// credit (fault-recovery path only; initial issues block the process
    /// itself via [`Waiter::Proc`]).
    Retry {
        /// The retransmit attempt's request.
        req: crate::ids::ReqId,
    },
}

impl CreditManager {
    /// A manager giving every sender `cap` credits per edge (`M`).
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 1, "need at least one credit per sender");
        CreditManager {
            cap,
            in_flight: FxHashMap::default(),
            waiters: FxHashMap::default(),
        }
    }

    /// The per-sender credit cap (`M`).
    pub fn cap(&self) -> u32 {
        self.cap
    }

    /// Attempts to take one credit; returns `false` when the account is
    /// exhausted.
    pub fn try_acquire(&mut self, key: CreditKey) -> bool {
        let used = self.in_flight.entry(key).or_insert(0);
        if *used < self.cap {
            *used += 1;
            true
        } else {
            false
        }
    }

    /// Registers `waiter` at the back of `key`'s wait queue.
    pub fn wait(&mut self, key: CreditKey, waiter: Waiter) {
        self.waiters.entry(key).or_default().push_back(waiter);
    }

    /// Returns one credit to the account. If waiters are queued on it, the
    /// credit is transferred to the oldest one immediately and that waiter
    /// is returned so the engine can resume it.
    ///
    /// # Panics
    /// Panics if the account has no credit in flight (double release).
    pub fn release(&mut self, key: CreditKey) -> Option<Waiter> {
        let used = self
            .in_flight
            .get_mut(&key)
            .unwrap_or_else(|| panic!("release without acquire on {key:?}"));
        assert!(*used > 0, "double release on {key:?}");
        if let Some(queue) = self.waiters.get_mut(&key) {
            if let Some(waiter) = queue.pop_front() {
                if queue.is_empty() {
                    self.waiters.remove(&key);
                }
                // Hand the credit straight to the waiter: `used` stays put.
                return Some(waiter);
            }
            self.waiters.remove(&key);
        }
        *used -= 1;
        None
    }

    /// Removes and returns the waiters on `key` accepted by `take`, in FIFO
    /// order, leaving the rejected ones queued in their original order.
    /// Used by the coalescing layer: forwards parked on an exhausted
    /// account can ride a departing envelope's single credit instead of
    /// each waiting for one of their own.
    pub fn take_waiters(
        &mut self,
        key: CreditKey,
        mut take: impl FnMut(&Waiter) -> bool,
    ) -> Vec<Waiter> {
        let Some(queue) = self.waiters.get_mut(&key) else {
            return Vec::new();
        };
        let mut taken = Vec::new();
        let mut rest = std::collections::VecDeque::new();
        while let Some(w) = queue.pop_front() {
            if take(&w) {
                taken.push(w);
            } else {
                rest.push_back(w);
            }
        }
        *queue = rest;
        if queue.is_empty() {
            self.waiters.remove(&key);
        }
        taken
    }

    /// Number of credits currently in flight for `key`.
    pub fn in_flight(&self, key: CreditKey) -> u32 {
        self.in_flight.get(&key).copied().unwrap_or(0)
    }

    /// Total credits in flight across all accounts.
    pub fn total_in_flight(&self) -> u64 {
        self.in_flight.values().map(|&v| u64::from(v)).sum()
    }

    /// Every account with its current in-flight count, including zeroed
    /// accounts that were touched earlier in the run, in ascending
    /// `CreditKey` order. Introspection hook for end-of-run credit-leak
    /// accounting (`Report::credit_leaks`) and the `vt-analyze` model
    /// checker's zero-leak property — sorted so the hook never leaks the
    /// hash table's insertion-history order to a consumer (vt-lint D1).
    pub fn accounts(&self) -> Vec<(CreditKey, u32)> {
        let mut v: Vec<(CreditKey, u32)> = self.in_flight.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// All currently blocked waiters (for deadlock diagnostics), in
    /// ascending account order; waiters within one account keep their
    /// FIFO queue order.
    pub fn blocked(&self) -> Vec<(CreditKey, Waiter)> {
        let mut v: Vec<(CreditKey, Waiter)> = self
            .waiters
            .iter()
            .flat_map(|(&k, q)| q.iter().map(move |&w| (k, w)))
            .collect();
        v.sort_by_key(|&(k, _)| k);
        v
    }

    /// Number of blocked waiters.
    pub fn blocked_count(&self) -> usize {
        self.waiters
            .values()
            .map(std::collections::VecDeque::len)
            .sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ids::Rank;

    fn key(sender: Sender) -> CreditKey {
        CreditKey {
            sender,
            edge: (0, 1),
            class: 0,
        }
    }

    #[test]
    fn acquire_until_cap() {
        let mut cm = CreditManager::new(4);
        let k = key(Sender::Proc(Rank(0)));
        for _ in 0..4 {
            assert!(cm.try_acquire(k));
        }
        assert!(!cm.try_acquire(k));
        assert_eq!(cm.in_flight(k), 4);
    }

    #[test]
    fn accounts_are_independent() {
        let mut cm = CreditManager::new(1);
        let a = key(Sender::Proc(Rank(0)));
        let b = key(Sender::Proc(Rank(1)));
        let c = CreditKey {
            sender: Sender::Proc(Rank(0)),
            edge: (0, 2),
            class: 0,
        };
        assert!(cm.try_acquire(a));
        assert!(cm.try_acquire(b));
        assert!(cm.try_acquire(c));
        assert!(!cm.try_acquire(a));
        assert_eq!(cm.total_in_flight(), 3);
    }

    #[test]
    fn escape_classes_have_independent_accounts() {
        let mut cm = CreditManager::new(1);
        let k0 = key(Sender::Cht(0));
        let k1 = CreditKey { class: 1, ..k0 };
        assert!(cm.try_acquire(k0));
        assert!(cm.try_acquire(k1), "class 1 must have its own pool");
        assert!(!cm.try_acquire(k0));
        assert_eq!(cm.release(k1), None);
        assert!(cm.try_acquire(k1));
    }

    #[test]
    fn release_without_waiter_frees_credit() {
        let mut cm = CreditManager::new(1);
        let k = key(Sender::Cht(0));
        assert!(cm.try_acquire(k));
        assert_eq!(cm.release(k), None);
        assert!(cm.try_acquire(k));
    }

    #[test]
    fn release_transfers_credit_to_waiter() {
        let mut cm = CreditManager::new(1);
        let k = key(Sender::Proc(Rank(3)));
        assert!(cm.try_acquire(k));
        cm.wait(k, Waiter::Proc(Rank(3)));
        assert_eq!(cm.blocked_count(), 1);
        let granted = cm.release(k);
        assert_eq!(granted, Some(Waiter::Proc(Rank(3))));
        // The credit moved to the waiter: account still full.
        assert_eq!(cm.in_flight(k), 1);
        assert!(!cm.try_acquire(k));
        assert_eq!(cm.blocked_count(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut cm = CreditManager::new(2);
        let k = key(Sender::Cht(5));
        cm.try_acquire(k);
        cm.release(k);
        cm.release(k);
    }

    #[test]
    fn take_waiters_filters_in_fifo_order() {
        let mut cm = CreditManager::new(1);
        let k = key(Sender::Cht(4));
        assert!(cm.try_acquire(k));
        for req in 10..14 {
            cm.wait(k, Waiter::Fwd { node: 4, req });
        }
        // Take the even request ids only.
        let taken = cm.take_waiters(k, |w| matches!(w, Waiter::Fwd { req, .. } if req % 2 == 0));
        assert_eq!(
            taken,
            vec![
                Waiter::Fwd { node: 4, req: 10 },
                Waiter::Fwd { node: 4, req: 12 }
            ]
        );
        // The odd ones are still queued, in order.
        assert_eq!(cm.blocked_count(), 2);
        assert_eq!(cm.release(k), Some(Waiter::Fwd { node: 4, req: 11 }));
        assert_eq!(cm.release(k), Some(Waiter::Fwd { node: 4, req: 13 }));
        assert_eq!(cm.take_waiters(k, |_| true), Vec::new());
    }

    #[test]
    fn waiters_are_served_fifo() {
        let mut cm = CreditManager::new(1);
        let k = key(Sender::Cht(2));
        assert!(cm.try_acquire(k));
        cm.wait(k, Waiter::Fwd { node: 2, req: 10 });
        cm.wait(k, Waiter::Fwd { node: 2, req: 11 });
        assert_eq!(cm.blocked_count(), 2);
        assert_eq!(cm.release(k), Some(Waiter::Fwd { node: 2, req: 10 }));
        assert_eq!(cm.release(k), Some(Waiter::Fwd { node: 2, req: 11 }));
        assert_eq!(cm.blocked_count(), 0);
        // Both grants transferred the single credit; it is still in flight.
        assert!(!cm.try_acquire(k));
        assert_eq!(cm.release(k), None);
        assert!(cm.try_acquire(k));
    }
}
