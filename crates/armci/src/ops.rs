//! One-sided operations.
//!
//! ARMCI's operations fall into two implementation classes on the XT5
//! (paper §II): contiguous put/get map directly onto Portals RDMA and never
//! touch the communication helper thread, while *lock, unlock, accumulate,
//! atomic and noncontiguous* transfers require server-side processing — a
//! request message into the target CHT's pre-allocated buffers, and thus a
//! traversal of the virtual topology. Only the second class is affected by
//! the choice of topology, which is why the paper evaluates vectored
//! transfers and fetch-&-add.

use crate::ids::Rank;
use serde::{Deserialize, Serialize};

/// The kind of a one-sided operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Contiguous put — direct RDMA, bypasses the CHT.
    Put,
    /// Contiguous get — direct RDMA, bypasses the CHT.
    Get,
    /// Vectored put (`ARMCI_PutV`) — CHT path.
    PutV,
    /// Vectored get (`ARMCI_GetV`) — CHT path.
    GetV,
    /// Accumulate (`ARMCI_Acc`, data combined at the target) — CHT path.
    Acc,
    /// Atomic fetch-&-add (`ARMCI_Rmw`) — CHT path.
    FetchAdd,
    /// Mutex lock request — CHT path.
    Lock,
    /// Mutex unlock request — CHT path.
    Unlock,
}

impl OpKind {
    /// Whether the operation is served directly by RDMA (no CHT, no
    /// virtual-topology forwarding).
    pub fn is_direct(self) -> bool {
        matches!(self, OpKind::Put | OpKind::Get)
    }

    /// Short name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::PutV => "putv",
            OpKind::GetV => "getv",
            OpKind::Acc => "acc",
            OpKind::FetchAdd => "fadd",
            OpKind::Lock => "lock",
            OpKind::Unlock => "unlock",
        }
    }
}

/// Message-size constants (bytes).
mod wire {
    /// Fixed request header.
    pub const HEADER: u64 = 96;
    /// Per-segment descriptor in vectored operations.
    pub const SEG_DESC: u64 = 16;
    /// Completion acknowledgement / small response.
    pub const ACK: u64 = 64;
}

/// One one-sided operation issued by a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Op {
    /// What to do.
    pub kind: OpKind,
    /// The target process whose address space is accessed.
    pub target: Rank,
    /// Total payload bytes moved (0 for lock/unlock; 8 for fetch-&-add).
    pub bytes: u64,
    /// Number of noncontiguous segments (1 for contiguous kinds).
    pub segments: u32,
    /// Amount added by fetch-&-add (ignored by other kinds).
    pub amount: i64,
    /// Raise the target's notification counter when the operation lands
    /// (`ARMCI_Put_flag`-style); the target can block on it with
    /// [`Action::WaitNotify`](crate::Action::WaitNotify).
    pub notify: bool,
}

impl Op {
    /// Contiguous put of `bytes` into `target`'s address space.
    pub fn put(target: Rank, bytes: u64) -> Self {
        Op {
            kind: OpKind::Put,
            target,
            bytes,
            segments: 1,
            amount: 0,
            notify: false,
        }
    }

    /// Contiguous get of `bytes` from `target`.
    pub fn get(target: Rank, bytes: u64) -> Self {
        Op {
            kind: OpKind::Get,
            target,
            bytes,
            segments: 1,
            amount: 0,
            notify: false,
        }
    }

    /// Vectored put of `segments` pieces of `seg_bytes` each.
    pub fn put_v(target: Rank, segments: u32, seg_bytes: u64) -> Self {
        assert!(segments >= 1);
        Op {
            kind: OpKind::PutV,
            target,
            bytes: u64::from(segments) * seg_bytes,
            segments,
            amount: 0,
            notify: false,
        }
    }

    /// Vectored get of `segments` pieces of `seg_bytes` each.
    pub fn get_v(target: Rank, segments: u32, seg_bytes: u64) -> Self {
        assert!(segments >= 1);
        Op {
            kind: OpKind::GetV,
            target,
            bytes: u64::from(segments) * seg_bytes,
            segments,
            amount: 0,
            notify: false,
        }
    }

    /// Accumulate `bytes` into `target` (element-wise combine at the CHT).
    pub fn acc(target: Rank, bytes: u64) -> Self {
        Op {
            kind: OpKind::Acc,
            target,
            bytes,
            segments: 1,
            amount: 0,
            notify: false,
        }
    }

    /// Atomic fetch-&-add of `amount` on a counter owned by `target`.
    pub fn fetch_add(target: Rank, amount: i64) -> Self {
        Op {
            kind: OpKind::FetchAdd,
            target,
            bytes: 8,
            segments: 1,
            amount,
            notify: false,
        }
    }

    /// Lock request on a mutex owned by `target`.
    pub fn lock(target: Rank) -> Self {
        Op {
            kind: OpKind::Lock,
            target,
            bytes: 0,
            segments: 1,
            amount: 0,
            notify: false,
        }
    }

    /// Unlock request on a mutex owned by `target`.
    pub fn unlock(target: Rank) -> Self {
        Op {
            kind: OpKind::Unlock,
            target,
            bytes: 0,
            segments: 1,
            amount: 0,
            notify: false,
        }
    }

    /// Marks the operation to notify the target on arrival
    /// (`ARMCI_Put_flag`).
    pub fn with_notify(mut self) -> Self {
        self.notify = true;
        self
    }

    /// Bytes of the request message carried towards the target.
    ///
    /// Data-bearing requests (put-like) carry the payload with the
    /// descriptor; get-like requests carry only the descriptor.
    pub fn request_bytes(&self) -> u64 {
        let desc = wire::HEADER + u64::from(self.segments) * wire::SEG_DESC;
        match self.kind {
            OpKind::Put | OpKind::PutV | OpKind::Acc => desc + self.bytes,
            OpKind::Get | OpKind::GetV => desc,
            OpKind::FetchAdd => desc + 8,
            OpKind::Lock | OpKind::Unlock => desc,
        }
    }

    /// Bytes of the response from the target back to the origin.
    pub fn response_bytes(&self) -> u64 {
        match self.kind {
            OpKind::Get | OpKind::GetV => wire::ACK + self.bytes,
            OpKind::FetchAdd => wire::ACK + 8,
            _ => wire::ACK,
        }
    }

    /// Bytes of a buffer-release acknowledgement between servers.
    pub fn ack_bytes() -> u64 {
        wire::ACK
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn direct_classification_matches_paper() {
        assert!(OpKind::Put.is_direct());
        assert!(OpKind::Get.is_direct());
        for k in [
            OpKind::PutV,
            OpKind::GetV,
            OpKind::Acc,
            OpKind::FetchAdd,
            OpKind::Lock,
            OpKind::Unlock,
        ] {
            assert!(!k.is_direct(), "{k:?} must use the CHT path");
        }
    }

    #[test]
    fn put_v_totals_bytes() {
        let op = Op::put_v(Rank(0), 8, 1024);
        assert_eq!(op.bytes, 8192);
        assert_eq!(op.segments, 8);
        // Request carries descriptor + payload.
        assert_eq!(op.request_bytes(), 96 + 8 * 16 + 8192);
        // Response is a bare ack.
        assert_eq!(op.response_bytes(), 64);
    }

    #[test]
    fn get_v_moves_data_in_response() {
        let op = Op::get_v(Rank(3), 4, 256);
        assert_eq!(op.request_bytes(), 96 + 4 * 16);
        assert_eq!(op.response_bytes(), 64 + 1024);
    }

    #[test]
    fn fetch_add_is_small() {
        let op = Op::fetch_add(Rank(0), 1);
        assert_eq!(op.bytes, 8);
        assert_eq!(op.amount, 1);
        assert!(op.request_bytes() < 256);
        assert_eq!(op.response_bytes(), 72);
    }

    #[test]
    fn lock_unlock_carry_no_payload() {
        assert_eq!(Op::lock(Rank(1)).bytes, 0);
        assert_eq!(Op::unlock(Rank(1)).bytes, 0);
        assert_eq!(Op::lock(Rank(1)).response_bytes(), 64);
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(OpKind::PutV.name(), "putv");
        assert_eq!(OpKind::FetchAdd.name(), "fadd");
    }
}
