//! The [`Simulation`] façade.

use crate::config::RuntimeConfig;
use crate::engine::{Engine, Report, SimError};
use crate::ids::Rank;
use crate::workload::Program;
use vt_simnet::FaultPlan;

/// A configured ARMCI job ready to run.
///
/// ```
/// use vt_armci::{Action, Op, Rank, RuntimeConfig, ScriptProgram, Simulation};
/// use vt_core::TopologyKind;
///
/// let mut cfg = RuntimeConfig::new(8, TopologyKind::Mfcg);
/// cfg.record_ops = true;
/// let sim = Simulation::build(cfg, |rank| {
///     if rank == Rank(7) {
///         ScriptProgram::new(vec![Action::Op(Op::put_v(Rank(0), 4, 1024))])
///     } else {
///         ScriptProgram::new(vec![])
///     }
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.metrics.total_ops(), 1);
/// ```
pub struct Simulation {
    engine: Engine,
}

impl Simulation {
    /// Builds a simulation with an explicit program per rank.
    ///
    /// # Panics
    /// Panics if `programs.len() != cfg.n_procs` or the configuration is
    /// invalid.
    pub fn new(cfg: RuntimeConfig, programs: Vec<Box<dyn Program>>) -> Self {
        Simulation {
            engine: Engine::new(cfg, programs),
        }
    }

    /// Builds a simulation that runs under the deterministic fault schedule
    /// `plan`. With an empty plan the timeline is byte-identical to
    /// [`Simulation::new`]'s.
    ///
    /// # Panics
    /// Panics if the configuration or fault plan is invalid.
    pub fn with_faults(
        cfg: RuntimeConfig,
        programs: Vec<Box<dyn Program>>,
        plan: &FaultPlan,
    ) -> Self {
        Simulation {
            engine: Engine::with_faults(cfg, programs, plan),
        }
    }

    /// Builds a simulation from a per-rank program constructor.
    pub fn build<P, F>(cfg: RuntimeConfig, mk: F) -> Self
    where
        P: Program + 'static,
        F: FnMut(Rank) -> P,
    {
        Self::build_with_faults(cfg, mk, &FaultPlan::default())
    }

    /// [`Simulation::build`] under a fault schedule.
    pub fn build_with_faults<P, F>(cfg: RuntimeConfig, mut mk: F, plan: &FaultPlan) -> Self
    where
        P: Program + 'static,
        F: FnMut(Rank) -> P,
    {
        let programs = (0..cfg.n_procs)
            .map(|r| Box::new(mk(Rank(r))) as Box<dyn Program>)
            .collect();
        Self::with_faults(cfg, programs, plan)
    }

    /// The virtual topology the job runs over.
    pub fn topology(&self) -> &vt_core::Grid {
        self.engine.topology()
    }

    /// Installs a certifier consulted before each membership repair commits
    /// a survivor packing (see [`Engine::set_repair_certifier`]). Builder
    /// style so it chains onto [`Simulation::with_faults`].
    pub fn with_repair_certifier(mut self, certifier: crate::engine::RepairCertifier) -> Self {
        self.engine.set_repair_certifier(certifier);
        self
    }

    /// Runs the job to completion.
    ///
    /// # Errors
    /// [`SimError::Deadlock`] when the system quiesces with blocked work.
    pub fn run(self) -> Result<Report, SimError> {
        self.engine.run()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ops::Op;
    use crate::workload::{Action, ScriptProgram};
    use vt_core::TopologyKind;

    #[test]
    fn build_constructs_per_rank_programs() {
        let cfg = RuntimeConfig::new(4, TopologyKind::Fcg);
        let sim = Simulation::build(cfg, |rank| {
            ScriptProgram::new(if rank == Rank(3) {
                vec![Action::Op(Op::fetch_add(Rank(0), 1))]
            } else {
                vec![]
            })
        });
        let report = sim.run().unwrap();
        assert_eq!(report.metrics.total_ops(), 1);
        assert!(report.finish_time > vt_simnet::SimTime::ZERO);
    }

    #[test]
    fn topology_accessor_reflects_config() {
        let cfg = RuntimeConfig::new(64, TopologyKind::Cfcg);
        let sim = Simulation::build(cfg, |_| ScriptProgram::new(vec![]));
        assert_eq!(
            vt_core::VirtualTopology::kind(sim.topology()),
            TopologyKind::Cfcg
        );
    }
}
