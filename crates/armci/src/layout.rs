//! Process-to-node layout.
//!
//! Ranks are packed densely onto nodes: ranks `0..ppn` on node 0, the next
//! `ppn` on node 1, and so on — matching `aprun`'s default on the XT5. The
//! lowest rank of each node is the *master*, whose address space hosts the
//! CHT and its buffer pools (paper §II).

use crate::ids::{NodeId, Rank};

/// The rank ⇄ node mapping for a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout {
    n_procs: u32,
    ppn: u32,
}

impl Layout {
    /// A layout of `n_procs` ranks at `ppn` processes per node. The last
    /// node may hold fewer than `ppn` ranks.
    ///
    /// # Panics
    /// Panics if either count is zero.
    pub fn new(n_procs: u32, ppn: u32) -> Self {
        assert!(n_procs >= 1, "need at least one process");
        assert!(ppn >= 1, "need at least one process per node");
        Layout { n_procs, ppn }
    }

    /// Total number of ranks.
    pub fn num_procs(&self) -> u32 {
        self.n_procs
    }

    /// Processes per (full) node.
    pub fn ppn(&self) -> u32 {
        self.ppn
    }

    /// Number of nodes used.
    pub fn num_nodes(&self) -> u32 {
        self.n_procs.div_ceil(self.ppn)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: Rank) -> NodeId {
        assert!(rank.0 < self.n_procs, "{rank} out of range");
        rank.0 / self.ppn
    }

    /// Master rank (lowest) of `node`.
    pub fn master_of(&self, node: NodeId) -> Rank {
        assert!(node < self.num_nodes(), "node {node} out of range");
        Rank(node * self.ppn)
    }

    /// All ranks on `node`, ascending.
    pub fn ranks_on(&self, node: NodeId) -> impl Iterator<Item = Rank> {
        let lo = node * self.ppn;
        let hi = (lo + self.ppn).min(self.n_procs);
        (lo..hi).map(Rank)
    }

    /// Number of ranks on `node` (the last node may be short).
    pub fn procs_on(&self, node: NodeId) -> u32 {
        let lo = node * self.ppn;
        (lo + self.ppn).min(self.n_procs) - lo
    }

    /// Whether two ranks share a node.
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn dense_packing() {
        let l = Layout::new(12, 4);
        assert_eq!(l.num_nodes(), 3);
        assert_eq!(l.node_of(Rank(0)), 0);
        assert_eq!(l.node_of(Rank(3)), 0);
        assert_eq!(l.node_of(Rank(4)), 1);
        assert_eq!(l.node_of(Rank(11)), 2);
        assert_eq!(l.master_of(2), Rank(8));
    }

    #[test]
    fn ragged_last_node() {
        let l = Layout::new(10, 4);
        assert_eq!(l.num_nodes(), 3);
        assert_eq!(l.procs_on(0), 4);
        assert_eq!(l.procs_on(2), 2);
        let ranks: Vec<Rank> = l.ranks_on(2).collect();
        assert_eq!(ranks, vec![Rank(8), Rank(9)]);
    }

    #[test]
    fn same_node_detection() {
        let l = Layout::new(8, 4);
        assert!(l.same_node(Rank(0), Rank(3)));
        assert!(!l.same_node(Rank(3), Rank(4)));
    }

    #[test]
    fn every_rank_is_on_a_node_listing_it() {
        let l = Layout::new(23, 5);
        for r in 0..23 {
            let node = l.node_of(Rank(r));
            assert!(l.ranks_on(node).any(|x| x == Rank(r)));
        }
        let total: u32 = (0..l.num_nodes()).map(|n| l.procs_on(n)).sum();
        assert_eq!(total, 23);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_rejects_bad_rank() {
        Layout::new(4, 2).node_of(Rank(4));
    }
}
