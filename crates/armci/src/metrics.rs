//! Measurement collection.

use crate::ids::Rank;
use crate::ops::OpKind;
use vt_simnet::stats::Summary;
use vt_simnet::SimTime;

/// One completed operation (recorded only when
/// [`RuntimeConfig::record_ops`](crate::RuntimeConfig::record_ops) is set).
#[derive(Clone, Copy, Debug)]
pub struct OpRecord {
    /// Issuing rank.
    pub rank: Rank,
    /// Operation kind.
    pub kind: OpKind,
    /// Issue time.
    pub issued: SimTime,
    /// Completion time (response received).
    pub completed: SimTime,
}

impl OpRecord {
    /// Operation latency.
    pub fn latency(&self) -> SimTime {
        self.completed - self.issued
    }
}

/// Per-rank aggregates.
#[derive(Clone, Debug, Default)]
pub struct RankStats {
    /// Latency summary over this rank's completed operations (µs).
    pub latency_us: Summary,
    /// Operations completed.
    pub ops: u64,
    /// Time this rank finished its program.
    pub done_at: SimTime,
}

/// Fault-recovery activity counters. All zero on a fault-free run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Retransmissions issued after a response timeout.
    pub retries: u64,
    /// Timeout events that found their operation still incomplete
    /// (`retries` + operations that exhausted their retry budget).
    pub timeouts: u64,
    /// Forwarding decisions that deviated from the healthy LDF next hop to
    /// route around a dead node.
    pub reroutes: u64,
    /// Duplicate requests suppressed by the target-side dedup table.
    pub dedup_hits: u64,
    /// Buffer credits reclaimed by the local ack-timeout after a message
    /// drop or node crash destroyed the request copy that held them.
    pub reclaims: u64,
    /// Requests discarded at a forwarder because no live next hop existed.
    pub unreachable: u64,
    /// Operations that failed terminally (timed out or unreachable).
    pub failed_ops: u64,
}

/// Membership / live-repair activity counters. All zero when membership is
/// off (or the run is fault-free).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RepairStats {
    /// Nodes whose accrued suspicion crossed the phi threshold.
    pub suspicions: u64,
    /// Suspicions that turned out to be false alarms (the node produced
    /// fresh liveness evidence during confirmation).
    pub false_suspicions: u64,
    /// Membership epochs committed (confirmed crashes repaired).
    pub epoch_bumps: u64,
    /// Old-epoch requests still in flight when an epoch committed.
    pub drained_requests: u64,
    /// Stale-epoch request copies rejected after a commit (each is replayed
    /// by its origin's retransmission timer under the new epoch).
    pub replayed_requests: u64,
    /// Idle heartbeat probes sent by the failure detector.
    pub probes: u64,
    /// How many rungs below the original topology kind the deepest repair
    /// had to fall on the dimension ladder (0 = same kind re-packed).
    pub fallback_depth: u32,
    /// The membership epoch the run finished in (0 = no repairs).
    pub final_epoch: u64,
}

/// Request-coalescing activity counters. All zero when coalescing is off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Envelopes assembled across all CHTs.
    pub envelopes: u64,
    /// Member requests carried inside envelopes.
    pub coalesced_requests: u64,
    /// Aggregated buffer-release acks sent on the return path (one per
    /// envelope instead of one per member).
    pub agg_acks: u64,
    /// Largest envelope assembled, in payload bytes.
    pub largest_envelope: u64,
    /// Most member requests folded into a single envelope.
    pub deepest_fold: u32,
}

/// All measurements from one simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Per-rank aggregates, indexed by rank.
    pub per_rank: Vec<RankStats>,
    /// Full operation trace, when enabled.
    pub ops: Vec<OpRecord>,
    record_ops: bool,
}

impl Metrics {
    /// Collection for `n_procs` ranks; `record_ops` keeps the full trace.
    pub fn new(n_procs: u32, record_ops: bool) -> Self {
        Metrics {
            per_rank: vec![RankStats::default(); n_procs as usize],
            ops: Vec::new(),
            record_ops,
        }
    }

    /// Records one completed operation.
    pub fn complete_op(&mut self, rank: Rank, kind: OpKind, issued: SimTime, completed: SimTime) {
        let stats = &mut self.per_rank[rank.idx()];
        stats.ops += 1;
        stats.latency_us.push((completed - issued).as_micros_f64());
        if self.record_ops {
            self.ops.push(OpRecord {
                rank,
                kind,
                issued,
                completed,
            });
        }
    }

    /// Marks a rank's program finished.
    pub fn rank_done(&mut self, rank: Rank, at: SimTime) {
        self.per_rank[rank.idx()].done_at = at;
    }

    /// Mean operation latency (µs) per rank, in rank order — the series the
    /// paper's Figs. 6 and 7 plot.
    pub fn mean_latency_by_rank_us(&self) -> Vec<f64> {
        self.per_rank.iter().map(|s| s.latency_us.mean()).collect()
    }

    /// Total operations completed across all ranks.
    pub fn total_ops(&self) -> u64 {
        self.per_rank.iter().map(|s| s.ops).sum()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn records_latency_per_rank() {
        let mut m = Metrics::new(2, true);
        m.complete_op(
            Rank(1),
            OpKind::PutV,
            SimTime::from_micros(10),
            SimTime::from_micros(40),
        );
        m.complete_op(
            Rank(1),
            OpKind::PutV,
            SimTime::from_micros(50),
            SimTime::from_micros(60),
        );
        assert_eq!(m.per_rank[1].ops, 2);
        assert_eq!(m.per_rank[1].latency_us.mean(), 20.0);
        assert_eq!(m.ops.len(), 2);
        assert_eq!(m.ops[0].latency(), SimTime::from_micros(30));
        assert_eq!(m.total_ops(), 2);
        assert_eq!(m.mean_latency_by_rank_us(), vec![0.0, 20.0]);
    }

    #[test]
    fn trace_disabled_keeps_aggregates_only() {
        let mut m = Metrics::new(1, false);
        m.complete_op(Rank(0), OpKind::Get, SimTime::ZERO, SimTime::from_micros(5));
        assert!(m.ops.is_empty());
        assert_eq!(m.per_rank[0].ops, 1);
    }

    #[test]
    fn rank_done_records_time() {
        let mut m = Metrics::new(1, false);
        m.rank_done(Rank(0), SimTime::from_secs(3));
        assert_eq!(m.per_rank[0].done_at, SimTime::from_secs(3));
    }
}
