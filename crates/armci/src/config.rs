//! Runtime configuration.

use crate::ops::{Op, OpKind};
use serde::{Deserialize, Serialize};
use vt_core::TopologyKind;
use vt_simnet::{NetworkConfig, SimTime};

/// Timing model of the communication helper thread.
///
/// The CHT is a serial server: it handles one request at a time. A CHT that
/// has been idle longer than `poll_window` has dropped out of its polling
/// loop and pays `wakeup_latency` before the next request — the mechanism
/// behind the paper's observation that *busy forwarders respond faster*
/// (§V-B2: processes actively forwarding "stay in the polling mode ... and
/// therefore have better response time").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChtConfig {
    /// Fixed cost to dispatch any request.
    pub base: SimTime,
    /// Per-byte cost of staging payload through shared memory (ns/byte).
    pub per_byte_ns: f64,
    /// Extra per-segment cost of scatter/gather for vectored operations.
    pub per_segment: SimTime,
    /// Extra cost of an atomic read-modify-write.
    pub atomic_extra: SimTime,
    /// Extra cost of a lock/unlock request.
    pub lock_extra: SimTime,
    /// Fixed cost to forward a request to the next server.
    pub forward_base: SimTime,
    /// Per-byte cost of pass-through forwarding (ns/byte; cheaper than
    /// terminal processing — no scatter).
    pub forward_per_byte_ns: f64,
    /// Latency to wake an idle CHT (scheduling / interrupt path).
    pub wakeup_latency: SimTime,
    /// How long after its last service a CHT keeps polling.
    pub poll_window: SimTime,
    /// Cache/TLB pressure of a large resident buffer pool: extra nanoseconds
    /// per request for every MiB of CHT pool on the node. This is the small
    /// but real cost that makes virtual topologies slightly *faster* than
    /// FCG even without hot spots (paper Fig. 8 at low process counts).
    pub cache_ns_per_pool_mib: f64,
    /// CPU interference of the CHT on co-located application processes: the
    /// fraction of one core's worth of compute stolen from the node while
    /// the CHT is busy (the XT5 CHT shares cores with application ranks).
    /// Each process's compute blocks are stretched by
    /// `interference × cht_busy / ppn`. Forwarding-heavy topologies pay this
    /// across the machine.
    pub cht_interference: f64,
}

impl Default for ChtConfig {
    fn default() -> Self {
        ChtConfig {
            base: SimTime::from_nanos(600),
            per_byte_ns: 0.4,
            per_segment: SimTime::from_nanos(150),
            atomic_extra: SimTime::from_nanos(300),
            lock_extra: SimTime::from_nanos(200),
            forward_base: SimTime::from_nanos(400),
            forward_per_byte_ns: 0.1,
            wakeup_latency: SimTime::from_micros(8),
            poll_window: SimTime::from_micros(60),
            cache_ns_per_pool_mib: 8.0,
            cht_interference: 1.0,
        }
    }
}

impl ChtConfig {
    /// Service time for terminally processing `op` at the target CHT.
    pub fn service_time(&self, op: &Op) -> SimTime {
        let mut t = self.base + per_byte(op.bytes, self.per_byte_ns);
        match op.kind {
            OpKind::PutV | OpKind::GetV => {
                t += self.per_segment * u64::from(op.segments);
            }
            OpKind::Acc => {
                // Combine costs a second pass over the payload.
                t += per_byte(op.bytes, self.per_byte_ns) + self.per_segment;
            }
            OpKind::FetchAdd => t += self.atomic_extra,
            OpKind::Lock | OpKind::Unlock => t += self.lock_extra,
            OpKind::Put | OpKind::Get => {}
        }
        t
    }

    /// Service time for forwarding `op`'s request one hop.
    pub fn forward_time(&self, op: &Op) -> SimTime {
        self.forward_base + per_byte(op.request_bytes(), self.forward_per_byte_ns)
    }
}

fn per_byte(bytes: u64, ns_per_byte: f64) -> SimTime {
    SimTime::from_nanos((bytes as f64 * ns_per_byte).round() as u64)
}

/// Full configuration of a simulated ARMCI job.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Total number of processes (ranks).
    pub n_procs: u32,
    /// Processes per node.
    pub procs_per_node: u32,
    /// The virtual topology governing buffer allocation and forwarding.
    pub topology: TopologyKind,
    /// Machine/interconnect model.
    pub net: NetworkConfig,
    /// CHT timing model.
    pub cht: ChtConfig,
    /// Size of one request buffer (`B`). Paper: 16 KiB.
    pub buffer_bytes: u64,
    /// Request buffers per remote sender (`M`). Paper: 4.
    pub buffers_per_proc: u32,
    /// Process-side software cost to issue any operation.
    pub issue_overhead: SimTime,
    /// Per-byte cost of an intra-node shared-memory copy (ns/byte).
    pub shm_per_byte_ns: f64,
    /// Cost per barrier stage (a dissemination barrier runs ⌈log₂ P⌉
    /// stages).
    pub barrier_stage: SimTime,
    /// Record every operation's latency (needed by the figure harnesses;
    /// disable for big application runs).
    pub record_ops: bool,
    /// Root seed for all stochastic choices.
    pub seed: u64,
}

impl RuntimeConfig {
    /// A configuration for `n_procs` ranks over `topology` with paper-like
    /// defaults (4 processes per node, 16-KiB buffers, M = 4).
    pub fn new(n_procs: u32, topology: TopologyKind) -> Self {
        RuntimeConfig {
            n_procs,
            procs_per_node: 4,
            topology,
            // The full Jaguar torus geometry: jobs occupy a (linear) slice of
            // the machine, so physical hop distance grows with rank distance
            // as in the paper's no-contention curves.
            net: NetworkConfig::jaguar(),
            cht: ChtConfig::default(),
            buffer_bytes: 16 * 1024,
            buffers_per_proc: 4,
            issue_overhead: SimTime::from_nanos(500),
            shm_per_byte_ns: 0.25,
            barrier_stage: SimTime::from_micros(2),
            record_ops: false,
            seed: 0xA2C1,
        }
    }

    /// Number of nodes implied by the process count and ppn.
    pub fn num_nodes(&self) -> u32 {
        self.n_procs.div_ceil(self.procs_per_node)
    }

    /// Checks internal consistency; call before building a simulation.
    ///
    /// # Panics
    /// Panics on zero counts or a topology that cannot cover the node count.
    pub fn validate(&self) {
        assert!(self.n_procs >= 1, "need at least one process");
        assert!(self.procs_per_node >= 1, "need at least one process per node");
        assert!(self.buffers_per_proc >= 1, "need at least one buffer credit");
        assert!(
            self.topology.supports(self.num_nodes()),
            "{} does not support {} nodes",
            self.topology.name(),
            self.num_nodes()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Rank;

    #[test]
    fn service_time_scales_with_payload() {
        let c = ChtConfig::default();
        let small = c.service_time(&Op::put_v(Rank(0), 1, 64));
        let large = c.service_time(&Op::put_v(Rank(0), 1, 16 * 1024));
        assert!(large > small * 2);
    }

    #[test]
    fn vectored_pays_per_segment() {
        let c = ChtConfig::default();
        let one = c.service_time(&Op::put_v(Rank(0), 1, 1024));
        let eight = c.service_time(&Op::put_v(Rank(0), 8, 128));
        assert!(eight > one, "same bytes, more segments must cost more");
    }

    #[test]
    fn forwarding_is_cheaper_than_terminal_service() {
        let c = ChtConfig::default();
        let op = Op::put_v(Rank(0), 8, 2048);
        assert!(c.forward_time(&op) < c.service_time(&op));
    }

    #[test]
    fn acc_costs_more_than_putv_of_same_size() {
        let c = ChtConfig::default();
        assert!(c.service_time(&Op::acc(Rank(0), 4096)) > c.service_time(&Op::put_v(Rank(0), 1, 4096)));
    }

    #[test]
    fn config_validates_topology_support() {
        let mut cfg = RuntimeConfig::new(100, TopologyKind::Mfcg);
        cfg.validate();
        assert_eq!(cfg.num_nodes(), 25);
        cfg.topology = TopologyKind::Hypercube; // 25 nodes: unsupported
        let res = std::panic::catch_unwind(|| cfg.validate());
        assert!(res.is_err());
    }

    #[test]
    fn fetch_add_service_includes_atomic_cost() {
        let c = ChtConfig::default();
        let fadd = c.service_time(&Op::fetch_add(Rank(0), 1));
        assert!(fadd >= c.base + c.atomic_extra);
        assert!(fadd < SimTime::from_micros(2));
    }
}
