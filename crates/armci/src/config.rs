//! Runtime configuration.

use crate::ops::{Op, OpKind};
use serde::{Deserialize, Serialize};
use vt_core::TopologyKind;
use vt_simnet::{ArrivalProcess, DetRng, NetworkConfig, SimTime};

/// Timing model of the communication helper thread.
///
/// The CHT is a serial server: it handles one request at a time. A CHT that
/// has been idle longer than `poll_window` has dropped out of its polling
/// loop and pays `wakeup_latency` before the next request — the mechanism
/// behind the paper's observation that *busy forwarders respond faster*
/// (§V-B2: processes actively forwarding "stay in the polling mode ... and
/// therefore have better response time").
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChtConfig {
    /// Fixed cost to dispatch any request.
    pub base: SimTime,
    /// Per-byte cost of staging payload through shared memory (ns/byte).
    pub per_byte_ns: f64,
    /// Extra per-segment cost of scatter/gather for vectored operations.
    pub per_segment: SimTime,
    /// Extra cost of an atomic read-modify-write.
    pub atomic_extra: SimTime,
    /// Extra cost of a lock/unlock request.
    pub lock_extra: SimTime,
    /// Fixed cost to forward a request to the next server.
    pub forward_base: SimTime,
    /// Per-byte cost of pass-through forwarding (ns/byte; cheaper than
    /// terminal processing — no scatter).
    pub forward_per_byte_ns: f64,
    /// Latency to wake an idle CHT (scheduling / interrupt path).
    pub wakeup_latency: SimTime,
    /// How long after its last service a CHT keeps polling.
    pub poll_window: SimTime,
    /// Cache/TLB pressure of a large resident buffer pool: extra nanoseconds
    /// per request for every MiB of CHT pool on the node. This is the small
    /// but real cost that makes virtual topologies slightly *faster* than
    /// FCG even without hot spots (paper Fig. 8 at low process counts).
    pub cache_ns_per_pool_mib: f64,
    /// CPU interference of the CHT on co-located application processes: the
    /// fraction of one core's worth of compute stolen from the node while
    /// the CHT is busy (the XT5 CHT shares cores with application ranks).
    /// Each process's compute blocks are stretched by
    /// `interference × cht_busy / ppn`. Forwarding-heavy topologies pay this
    /// across the machine.
    pub cht_interference: f64,
    /// Incremental cost of folding one additional request into an envelope
    /// already being assembled for forwarding. Envelope assembly is
    /// pipelined with the in-flight DMA of the previous member, so this is
    /// much cheaper than `forward_base`: the CHT pays the fixed forwarding
    /// dispatch once per envelope instead of once per request.
    pub envelope_fold: SimTime,
}

impl Default for ChtConfig {
    fn default() -> Self {
        ChtConfig {
            base: SimTime::from_nanos(600),
            per_byte_ns: 0.4,
            per_segment: SimTime::from_nanos(150),
            atomic_extra: SimTime::from_nanos(300),
            lock_extra: SimTime::from_nanos(200),
            forward_base: SimTime::from_nanos(400),
            forward_per_byte_ns: 0.1,
            wakeup_latency: SimTime::from_micros(8),
            poll_window: SimTime::from_micros(60),
            cache_ns_per_pool_mib: 8.0,
            cht_interference: 1.0,
            envelope_fold: SimTime::from_nanos(80),
        }
    }
}

impl ChtConfig {
    /// Service time for terminally processing `op` at the target CHT.
    pub fn service_time(&self, op: &Op) -> SimTime {
        let mut t = self.base + per_byte(op.bytes, self.per_byte_ns);
        match op.kind {
            OpKind::PutV | OpKind::GetV => {
                t += self.per_segment * u64::from(op.segments);
            }
            OpKind::Acc => {
                // Combine costs a second pass over the payload.
                t += per_byte(op.bytes, self.per_byte_ns) + self.per_segment;
            }
            OpKind::FetchAdd => t += self.atomic_extra,
            OpKind::Lock | OpKind::Unlock => t += self.lock_extra,
            OpKind::Put | OpKind::Get => {}
        }
        t
    }

    /// Service time for forwarding `op`'s request one hop.
    pub fn forward_time(&self, op: &Op) -> SimTime {
        self.forward_base + per_byte(op.request_bytes(), self.forward_per_byte_ns)
    }

    /// Service time for forwarding a coalesced envelope of `ops` one hop.
    ///
    /// Pays `forward_base` once, per-byte pass-through for every member, and
    /// `envelope_fold` per member beyond the first: assembly of member *k+1*
    /// overlaps the DMA of member *k*, so the dominant fixed cost is not
    /// replicated the way `n` individual forwards would replicate it.
    pub fn envelope_forward_time(&self, ops: &[Op]) -> SimTime {
        let bytes: u64 = ops.iter().map(|op| op.request_bytes()).sum();
        let folds = ops.len().saturating_sub(1) as u64;
        self.forward_base + per_byte(bytes, self.forward_per_byte_ns) + self.envelope_fold * folds
    }
}

fn per_byte(bytes: u64, ns_per_byte: f64) -> SimTime {
    SimTime::from_nanos((bytes as f64 * ns_per_byte).round() as u64)
}

/// End-to-end retransmission policy for fault-tolerant runs.
///
/// Every remote operation issued while a fault plan is active arms a
/// per-request timer at the origin. If no response arrives within
/// `timeout × backoff^attempt`, the origin clones the request (same sequence
/// number, next attempt counter) and re-issues it from scratch; after
/// `max_retries` retransmissions the operation fails with
/// [`SimError::TimedOut`](crate::SimError::TimedOut). The timers only exist
/// when a non-empty [`FaultPlan`](vt_simnet::FaultPlan) is installed — a
/// fault-free run schedules no timeout events at all, keeping its timeline
/// byte-identical to a run without the fault layer.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RetryConfig {
    /// Base response timeout for attempt 0.
    pub timeout: SimTime,
    /// Maximum number of retransmissions per operation (attempts beyond the
    /// original send). 0 disables retransmission: the first timeout fails
    /// the operation.
    pub max_retries: u32,
    /// Exponential backoff multiplier: attempt `k` waits
    /// `timeout × backoff^k`.
    pub backoff: u32,
    /// Use capped *decorrelated jitter* instead of the fixed exponential
    /// ladder: attempt `k ≥ 1` waits a uniform draw from
    /// `[timeout, min(jitter_cap, prev × backoff))`, where `prev` is the
    /// previous attempt's actual wait. Synchronised retransmissions are the
    /// fuel of retry storms — jitter desynchronises them while the cap keeps
    /// the worst-case wait bounded. Deterministic: the draw comes from a
    /// pure [`DetRng`] fork keyed on `(seed, seq, attempt)`, so a seed fixes
    /// the whole timeline. Off by default (serving mode forces it on) so
    /// committed fault baselines keep their exact exponential timings.
    pub jitter: bool,
    /// Upper bound on any jittered wait. Irrelevant when `jitter` is off.
    pub jitter_cap: SimTime,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig {
            timeout: SimTime::from_millis(5),
            max_retries: 4,
            backoff: 2,
            jitter: false,
            jitter_cap: SimTime::from_millis(80),
        }
    }
}

impl RetryConfig {
    /// The response deadline offset for retransmission attempt `attempt`
    /// under the fixed exponential policy.
    pub fn deadline(&self, attempt: u32) -> SimTime {
        let mult = u64::from(self.backoff)
            .saturating_pow(attempt.min(20))
            .max(1);
        self.timeout * mult
    }

    /// One decorrelated-jitter wait: uniform in
    /// `[timeout, min(jitter_cap, prev × backoff)]`, never below `timeout`.
    /// `prev` is the wait the previous attempt actually used (`timeout` for
    /// attempt 0). Pure in `(self, prev, rng state)`.
    pub fn decorrelated(&self, prev: SimTime, rng: &mut DetRng) -> SimTime {
        let cap = self.jitter_cap.max(self.timeout);
        let upper = SimTime::from_nanos(
            prev.as_nanos()
                .saturating_mul(u64::from(self.backoff.max(1))),
        )
        .min(cap);
        if upper <= self.timeout {
            return self.timeout;
        }
        let span = (upper - self.timeout).as_nanos();
        self.timeout + SimTime::from_nanos(rng.u64_below(span + 1))
    }
}

/// Request-coalescing policy for the CHT forwarding path.
///
/// When enabled, a CHT about to forward a request scans its queue for other
/// requests taking the same outgoing LDF edge on the same buffer class and
/// folds them into one multi-request envelope, bounded by `max_bytes`
/// (default: the runtime's request-buffer size, 16 KiB). The envelope
/// occupies a single downstream buffer credit and is released by a single
/// aggregated ack on the return path. Disabled by default; a disabled run
/// is byte-for-byte identical to a build without the coalescing layer.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CoalesceConfig {
    /// Master switch. `false` (the default) schedules no envelope events at
    /// all and leaves every timing decision untouched.
    pub enabled: bool,
    /// Upper bound on an envelope's wire size in bytes; `None` uses the
    /// runtime's `buffer_bytes`. Requests that do not fit stay in the queue
    /// for the next envelope (splitting happens exactly at this boundary).
    pub max_bytes: Option<u64>,
}

impl CoalesceConfig {
    /// A policy with coalescing switched on and the default size bound.
    pub fn on() -> Self {
        CoalesceConfig {
            enabled: true,
            max_bytes: None,
        }
    }
}

/// Membership / failure-detection policy for surviving *permanent* node
/// loss.
///
/// When enabled (and a fault plan is installed), every CHT runs a
/// phi-accrual failure detector over the traffic it already sees: request,
/// envelope and response arrivals count as liveness evidence for their
/// sender, and a node that has been silent for longer than
/// `heartbeat_period` is probed with a tiny idle heartbeat. Once the
/// accrued suspicion for a node crosses `phi_threshold`, the runtime
/// confirms the crash, waits `drain_window` for in-flight requests to
/// settle, and commits a new **membership epoch**: the survivor set is
/// re-packed into a fresh lowest-dimension-first topology (falling down
/// the dimension ladder if the repaired grid is refused by the installed
/// certifier), buffer pools are re-derived, and every request issued from
/// then on carries the new epoch so stale-epoch copies are rejected
/// deterministically instead of corrupting dedup state.
///
/// Disabled by default; a disabled run schedules no membership events at
/// all and is byte-for-byte identical to a build without the subsystem.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MembershipConfig {
    /// Master switch. `false` (the default) schedules no membership events
    /// and leaves every timing decision untouched.
    pub enabled: bool,
    /// Detector tick and expected inter-evidence interval: nodes silent
    /// longer than this are probed, and phi accrues against it.
    pub heartbeat_period: SimTime,
    /// Suspicion level (in units of expected intervals, phi-accrual style)
    /// at which a silent node is declared crashed.
    pub phi_threshold: f64,
    /// How long after confirming a crash the runtime waits before
    /// committing the new epoch, giving in-flight old-epoch requests a
    /// chance to complete instead of being replayed.
    pub drain_window: SimTime,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            enabled: false,
            heartbeat_period: SimTime::from_millis(1),
            phi_threshold: 8.0,
            drain_window: SimTime::from_millis(2),
        }
    }
}

impl MembershipConfig {
    /// A policy with membership switched on and the default detector
    /// parameters.
    pub fn on() -> Self {
        MembershipConfig {
            enabled: true,
            ..MembershipConfig::default()
        }
    }
}

/// Open-system serving policy: arrival-driven client load with overload
/// controls.
///
/// When enabled, ranks run no scripted program; instead each rank is a
/// *client* whose requests (fetch-&-adds on the shared counter at
/// `hot_rank`, the paper's `nxtval` pattern) arrive over simulated time
/// according to [`ArrivalProcess`], until `horizon`. Overload is handled in
/// three layers, outermost first:
///
/// 1. **Admission control** — a client with `queue_cap` requests already in
///    flight sheds new arrivals deterministically
///    ([`SimError::Overloaded`](crate::SimError::Overloaded) diagnostics +
///    shed counters) instead of queueing without bound.
/// 2. **Retry budgets with decorrelated jitter** — each admitted request
///    gets at most `retry_budget` retransmissions, spaced by capped
///    decorrelated jitter ([`RetryConfig::decorrelated`]) so timeouts past
///    saturation do not synchronise into a retry storm.
/// 3. **Metastability guard** — when the shed fraction over a detector tick
///    stays above `guard_threshold`, retransmissions are suppressed
///    entirely until the shed rate falls back: retries are the work
///    amplifier that keeps an overloaded system overloaded after the
///    triggering spike has passed.
///
/// With `load_repack`, the detector additionally samples per-node CHT queue
/// depths every `tick`; sustained skew (max/mean ≥ `skew_threshold` for
/// `skew_ticks` consecutive ticks) commits a **membership epoch** that
/// re-packs the live nodes into the next topology kind up the
/// contention-attenuation ladder, under live traffic, certified by the
/// installed repair certifier — the paper's static attenuation result made
/// adaptive.
///
/// Disabled by default; a disabled config schedules no serve events and
/// leaves every timing decision byte-identical to a closed-system run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Master switch. `false` (the default) leaves the closed-system
    /// timeline untouched.
    pub enabled: bool,
    /// Per-client offered-load curve.
    pub arrivals: ArrivalProcess,
    /// Arrivals stop at this instant; the run then drains admitted work.
    pub horizon: SimTime,
    /// Per-client in-flight bound: arrivals beyond it are shed.
    pub queue_cap: u32,
    /// Retransmissions allowed per client across the whole run (a *budget*,
    /// not a per-op cap): exhausted clients fail timed-out requests
    /// immediately instead of amplifying load.
    pub retry_budget: u32,
    /// Shed fraction (sheds / arrivals per tick window) above which the
    /// metastability guard suppresses retransmissions.
    pub guard_threshold: f64,
    /// Detector tick period for the guard and the skew detector.
    pub tick: SimTime,
    /// Rank hosting the shared fetch-&-add counter every request targets.
    pub hot_rank: u32,
    /// Enable load-triggered topology re-packing via membership epochs.
    pub load_repack: bool,
    /// CHT queue-depth skew (max/mean over live nodes) that counts a tick
    /// as skewed.
    pub skew_threshold: f64,
    /// Consecutive skewed ticks required before committing a re-pack epoch.
    pub skew_ticks: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            enabled: false,
            arrivals: ArrivalProcess::steady(1_000.0),
            horizon: SimTime::from_millis(10),
            queue_cap: 4,
            retry_budget: 16,
            guard_threshold: 0.5,
            tick: SimTime::from_micros(250),
            hot_rank: 0,
            load_repack: false,
            skew_threshold: 4.0,
            skew_ticks: 3,
        }
    }
}

impl ServeConfig {
    /// A policy with serving switched on and the default overload controls.
    pub fn on(arrivals: ArrivalProcess, horizon: SimTime) -> Self {
        ServeConfig {
            enabled: true,
            arrivals,
            horizon,
            ..ServeConfig::default()
        }
    }
}

/// Full configuration of a simulated ARMCI job.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Total number of processes (ranks).
    pub n_procs: u32,
    /// Processes per node.
    pub procs_per_node: u32,
    /// The virtual topology governing buffer allocation and forwarding.
    pub topology: TopologyKind,
    /// Machine/interconnect model.
    pub net: NetworkConfig,
    /// CHT timing model.
    pub cht: ChtConfig,
    /// Size of one request buffer (`B`). Paper: 16 KiB.
    pub buffer_bytes: u64,
    /// Request buffers per remote sender (`M`). Paper: 4.
    pub buffers_per_proc: u32,
    /// Process-side software cost to issue any operation.
    pub issue_overhead: SimTime,
    /// Per-byte cost of an intra-node shared-memory copy (ns/byte).
    pub shm_per_byte_ns: f64,
    /// Cost per barrier stage (a dissemination barrier runs ⌈log₂ P⌉
    /// stages).
    pub barrier_stage: SimTime,
    /// Record every operation's latency (needed by the figure harnesses;
    /// disable for big application runs).
    pub record_ops: bool,
    /// Root seed for all stochastic choices.
    pub seed: u64,
    /// Timeout/retransmission policy (only consulted when a fault plan is
    /// installed via [`Simulation::with_faults`](crate::Simulation)).
    pub retry: RetryConfig,
    /// Request-coalescing policy for the forwarding path (off by default).
    pub coalesce: CoalesceConfig,
    /// Membership / failure-detection policy for permanent node loss (off
    /// by default; only consulted when a fault plan is installed).
    pub membership: MembershipConfig,
    /// Open-system serving policy (off by default).
    pub serve: ServeConfig,
}

impl RuntimeConfig {
    /// A configuration for `n_procs` ranks over `topology` with paper-like
    /// defaults (4 processes per node, 16-KiB buffers, M = 4).
    pub fn new(n_procs: u32, topology: TopologyKind) -> Self {
        RuntimeConfig {
            n_procs,
            procs_per_node: 4,
            topology,
            // The full Jaguar torus geometry: jobs occupy a (linear) slice of
            // the machine, so physical hop distance grows with rank distance
            // as in the paper's no-contention curves.
            net: NetworkConfig::jaguar(),
            cht: ChtConfig::default(),
            buffer_bytes: 16 * 1024,
            buffers_per_proc: 4,
            issue_overhead: SimTime::from_nanos(500),
            shm_per_byte_ns: 0.25,
            barrier_stage: SimTime::from_micros(2),
            record_ops: false,
            seed: 0xA2C1,
            retry: RetryConfig::default(),
            coalesce: CoalesceConfig::default(),
            membership: MembershipConfig::default(),
            serve: ServeConfig::default(),
        }
    }

    /// The effective envelope size bound: the explicit coalescing cap, or
    /// the request-buffer size when none is set.
    pub fn envelope_max_bytes(&self) -> u64 {
        self.coalesce.max_bytes.unwrap_or(self.buffer_bytes)
    }

    /// Number of nodes implied by the process count and ppn.
    pub fn num_nodes(&self) -> u32 {
        self.n_procs.div_ceil(self.procs_per_node)
    }

    /// Checks internal consistency; call before building a simulation.
    ///
    /// # Panics
    /// Panics on zero counts or a topology that cannot cover the node count.
    pub fn validate(&self) {
        assert!(self.n_procs >= 1, "need at least one process");
        assert!(
            self.procs_per_node >= 1,
            "need at least one process per node"
        );
        assert!(
            self.buffers_per_proc >= 1,
            "need at least one buffer credit"
        );
        assert!(
            self.topology.supports(self.num_nodes()),
            "{} does not support {} nodes",
            self.topology.name(),
            self.num_nodes()
        );
        assert!(
            self.retry.timeout > SimTime::ZERO,
            "retry timeout must be positive"
        );
        assert!(self.retry.backoff >= 1, "backoff multiplier must be >= 1");
        if self.membership.enabled {
            assert!(
                self.membership.heartbeat_period > SimTime::ZERO,
                "heartbeat period must be positive"
            );
            assert!(
                self.membership.phi_threshold > 0.0,
                "phi threshold must be positive"
            );
        }
        if self.serve.enabled {
            self.serve.arrivals.validate();
            assert!(
                self.serve.horizon > SimTime::ZERO,
                "serve horizon must be positive"
            );
            assert!(
                self.serve.queue_cap >= 1,
                "admission queue cap must be at least 1"
            );
            assert!(
                self.serve.tick > SimTime::ZERO,
                "serve tick must be positive"
            );
            assert!(
                self.serve.hot_rank < self.n_procs,
                "hot rank {} out of range for {} procs",
                self.serve.hot_rank,
                self.n_procs
            );
            assert!(
                self.serve.guard_threshold > 0.0 && self.serve.guard_threshold <= 1.0,
                "guard threshold must be in (0, 1]"
            );
            if self.serve.load_repack {
                assert!(
                    self.serve.skew_threshold > 1.0,
                    "skew threshold must exceed 1"
                );
                assert!(
                    self.serve.skew_ticks >= 1,
                    "need at least one skewed tick to trigger a re-pack"
                );
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::ids::Rank;

    #[test]
    fn service_time_scales_with_payload() {
        let c = ChtConfig::default();
        let small = c.service_time(&Op::put_v(Rank(0), 1, 64));
        let large = c.service_time(&Op::put_v(Rank(0), 1, 16 * 1024));
        assert!(large > small * 2);
    }

    #[test]
    fn vectored_pays_per_segment() {
        let c = ChtConfig::default();
        let one = c.service_time(&Op::put_v(Rank(0), 1, 1024));
        let eight = c.service_time(&Op::put_v(Rank(0), 8, 128));
        assert!(eight > one, "same bytes, more segments must cost more");
    }

    #[test]
    fn forwarding_is_cheaper_than_terminal_service() {
        let c = ChtConfig::default();
        let op = Op::put_v(Rank(0), 8, 2048);
        assert!(c.forward_time(&op) < c.service_time(&op));
    }

    #[test]
    fn acc_costs_more_than_putv_of_same_size() {
        let c = ChtConfig::default();
        assert!(
            c.service_time(&Op::acc(Rank(0), 4096)) > c.service_time(&Op::put_v(Rank(0), 1, 4096))
        );
    }

    #[test]
    fn config_validates_topology_support() {
        let mut cfg = RuntimeConfig::new(100, TopologyKind::Mfcg);
        cfg.validate();
        assert_eq!(cfg.num_nodes(), 25);
        cfg.topology = TopologyKind::Hypercube; // 25 nodes: unsupported
        let res = std::panic::catch_unwind(|| cfg.validate());
        assert!(res.is_err());
    }

    #[test]
    fn retry_deadline_backs_off_exponentially() {
        let r = RetryConfig::default();
        assert_eq!(r.deadline(0), r.timeout);
        assert_eq!(r.deadline(1), r.timeout * 2);
        assert_eq!(r.deadline(3), r.timeout * 8);
        // Saturates instead of overflowing on absurd attempt counts.
        assert!(r.deadline(u32::MAX) >= r.deadline(20));
    }

    #[test]
    fn coalescing_defaults_off_with_buffer_bound() {
        let cfg = RuntimeConfig::new(16, TopologyKind::Mfcg);
        assert!(!cfg.coalesce.enabled);
        assert_eq!(cfg.envelope_max_bytes(), cfg.buffer_bytes);
        let mut on = cfg;
        on.coalesce = CoalesceConfig::on();
        on.coalesce.max_bytes = Some(4096);
        assert_eq!(on.envelope_max_bytes(), 4096);
    }

    #[test]
    fn envelope_forward_beats_individual_forwards() {
        let c = ChtConfig::default();
        let ops = [Op::fetch_add(Rank(0), 1); 4];
        let env = c.envelope_forward_time(&ops);
        let singles: SimTime = ops.iter().map(|op| c.forward_time(op)).sum();
        assert!(env < singles, "folding must amortise forward_base");
        assert_eq!(c.envelope_forward_time(&ops[..1]), c.forward_time(&ops[0]));
    }

    #[test]
    fn fetch_add_service_includes_atomic_cost() {
        let c = ChtConfig::default();
        let fadd = c.service_time(&Op::fetch_add(Rank(0), 1));
        assert!(fadd >= c.base + c.atomic_extra);
        assert!(fadd < SimTime::from_micros(2));
    }

    #[test]
    fn decorrelated_jitter_stays_in_bounds_and_is_capped() {
        let r = RetryConfig::default();
        let mut rng = DetRng::new(7);
        let mut prev = r.timeout;
        for _ in 0..64 {
            let d = r.decorrelated(prev, &mut rng);
            assert!(d >= r.timeout, "jitter below the base timeout: {d:?}");
            assert!(d <= r.jitter_cap.max(r.timeout), "jitter above cap: {d:?}");
            prev = d;
        }
        // Once prev saturates the cap the draw stays within [timeout, cap].
        let d = r.decorrelated(r.jitter_cap, &mut rng);
        assert!(d >= r.timeout && d <= r.jitter_cap);
    }

    #[test]
    fn decorrelated_jitter_is_deterministic_per_stream() {
        let r = RetryConfig::default();
        let a: Vec<SimTime> = {
            let mut rng = DetRng::new(99);
            (0..16)
                .map(|_| r.decorrelated(r.timeout * 4, &mut rng))
                .collect()
        };
        let b: Vec<SimTime> = {
            let mut rng = DetRng::new(99);
            (0..16)
                .map(|_| r.decorrelated(r.timeout * 4, &mut rng))
                .collect()
        };
        assert_eq!(a, b);
        // A degenerate upper bound collapses to the plain timeout.
        let tight = RetryConfig {
            jitter_cap: SimTime::ZERO, // cap clamps up to timeout
            ..RetryConfig::default()
        };
        let mut rng = DetRng::new(1);
        assert_eq!(tight.decorrelated(tight.timeout, &mut rng), tight.timeout);
    }

    #[test]
    fn serve_defaults_off_and_validates_when_on() {
        let cfg = RuntimeConfig::new(16, TopologyKind::Mfcg);
        assert!(!cfg.serve.enabled);
        assert!(!cfg.retry.jitter);
        cfg.validate();
        let mut on = cfg;
        on.serve = ServeConfig::on(
            ArrivalProcess::flash_crowd(
                1000.0,
                8.0,
                SimTime::from_millis(1),
                SimTime::from_millis(2),
            ),
            SimTime::from_millis(5),
        );
        on.validate();
        on.serve.hot_rank = 16; // out of range
        assert!(std::panic::catch_unwind(|| on.validate()).is_err());
        on.serve.hot_rank = 0;
        on.serve.guard_threshold = 0.0;
        assert!(std::panic::catch_unwind(|| on.validate()).is_err());
        on.serve.guard_threshold = 0.5;
        on.serve.load_repack = true;
        on.serve.skew_threshold = 1.0;
        assert!(std::panic::catch_unwind(|| on.validate()).is_err());
        on.serve.skew_threshold = 4.0;
        on.serve.skew_ticks = 0;
        assert!(std::panic::catch_unwind(|| on.validate()).is_err());
        on.serve.skew_ticks = 3;
        on.validate();
    }
}
