//! Process programs: the interface between workloads and the engine.
//!
//! Each rank runs a [`Program`] — a resumable state machine the engine asks
//! for the next [`Action`] whenever the process becomes ready (start-up, an
//! operation completed, a compute block ended, a barrier released). Programs
//! never see simulation internals; they observe time and their last
//! fetch-&-add result through [`ProcCtx`].

use crate::ids::Rank;
use crate::ops::Op;
use vt_simnet::SimTime;

/// What a process does next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Action {
    /// Issue a one-sided operation and wait for its completion.
    Op(Op),
    /// Issue a one-sided operation and continue immediately (completion is
    /// tracked; use [`Action::WaitAll`] to fence).
    OpAsync(Op),
    /// Wait until all of this rank's outstanding async operations complete.
    WaitAll,
    /// Wait until this rank's cumulative notification counter reaches the
    /// given value (raised by remote operations built with
    /// [`Op::with_notify`](crate::Op::with_notify) — producer/consumer and
    /// wavefront dependencies).
    WaitNotify(u64),
    /// Spend local compute time.
    Compute(SimTime),
    /// Enter the global barrier; resume when every rank has entered.
    Barrier,
    /// Terminate this rank's program.
    Done,
}

/// Read-only view a program gets when asked for its next action.
#[derive(Clone, Copy, Debug)]
pub struct ProcCtx {
    /// This process's rank.
    pub rank: Rank,
    /// Current simulated time.
    pub now: SimTime,
    /// Operations completed by this rank so far (blocking + async).
    pub completed_ops: u64,
    /// The value returned by this rank's most recent fetch-&-add (the
    /// counter's value *before* the add), if any.
    pub last_fetch: Option<i64>,
    /// Notifications received by this rank so far (cumulative).
    pub notified: u64,
}

/// A per-rank workload.
pub trait Program: Send {
    /// Returns the next action. Called once at start-up and once after each
    /// wait-causing action resolves. After returning [`Action::Done`] it is
    /// never called again.
    fn next(&mut self, ctx: &ProcCtx) -> Action;
}

/// A program built from a closure — convenient for tests and examples.
///
/// ```
/// use vt_armci::{Action, ClosureProgram, Op, Rank};
///
/// let mut issued = 0;
/// let _prog = ClosureProgram::new(move |ctx| {
///     if issued < 3 && ctx.rank != Rank(0) {
///         issued += 1;
///         Action::Op(Op::fetch_add(Rank(0), 1))
///     } else {
///         Action::Done
///     }
/// });
/// ```
pub struct ClosureProgram<F>(F);

impl<F> ClosureProgram<F>
where
    F: FnMut(&ProcCtx) -> Action + Send,
{
    /// Wraps a closure as a [`Program`].
    pub fn new(f: F) -> Self {
        ClosureProgram(f)
    }
}

impl<F> Program for ClosureProgram<F>
where
    F: FnMut(&ProcCtx) -> Action + Send,
{
    fn next(&mut self, ctx: &ProcCtx) -> Action {
        (self.0)(ctx)
    }
}

/// A program that immediately finishes — for ranks that sit out a scenario.
pub struct IdleProgram;

impl Program for IdleProgram {
    fn next(&mut self, _ctx: &ProcCtx) -> Action {
        Action::Done
    }
}

/// A program that replays a fixed list of actions, then finishes.
pub struct ScriptProgram {
    actions: std::vec::IntoIter<Action>,
}

impl ScriptProgram {
    /// A program performing `actions` in order.
    pub fn new(actions: Vec<Action>) -> Self {
        ScriptProgram {
            actions: actions.into_iter(),
        }
    }
}

impl Program for ScriptProgram {
    fn next(&mut self, _ctx: &ProcCtx) -> Action {
        self.actions.next().unwrap_or(Action::Done)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ctx() -> ProcCtx {
        ProcCtx {
            rank: Rank(1),
            now: SimTime::ZERO,
            completed_ops: 0,
            last_fetch: None,
            notified: 0,
        }
    }

    #[test]
    fn closure_program_runs_closure() {
        let mut calls = 0;
        let mut p = ClosureProgram::new(move |_| {
            calls += 1;
            if calls > 2 {
                Action::Done
            } else {
                Action::Barrier
            }
        });
        assert_eq!(p.next(&ctx()), Action::Barrier);
        assert_eq!(p.next(&ctx()), Action::Barrier);
        assert_eq!(p.next(&ctx()), Action::Done);
    }

    #[test]
    fn idle_program_is_done_immediately() {
        assert_eq!(IdleProgram.next(&ctx()), Action::Done);
    }

    #[test]
    fn script_program_replays_then_finishes() {
        let mut p = ScriptProgram::new(vec![
            Action::Compute(SimTime::from_micros(1)),
            Action::Barrier,
        ]);
        assert_eq!(p.next(&ctx()), Action::Compute(SimTime::from_micros(1)));
        assert_eq!(p.next(&ctx()), Action::Barrier);
        assert_eq!(p.next(&ctx()), Action::Done);
        assert_eq!(p.next(&ctx()), Action::Done);
    }
}
