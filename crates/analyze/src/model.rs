//! Exhaustive small-N model checking of the CHT forwarding protocol.
//!
//! The simulator exercises *one* interleaving per seed; this module
//! explores **all** of them for small configurations. The protocol is
//! abstracted to the moves that matter for safety — issue, hop delivery,
//! serial CHT service (execute-or-forward-or-park), credit hand-off,
//! response delivery, retransmission after loss, and node crashes — with
//! all timing erased: any enabled transition may fire next. A depth-first
//! search over that nondeterminism, with visited-state memoization and a
//! sleep-set partial-order reduction (Godefroid), visits every reachable
//! protocol state and checks three properties the runtime otherwise only
//! samples:
//!
//! * **Quiescence** — every terminal state has all requests either
//!   completed or diagnosed (no copy stranded parked/queued/in-flight);
//!   a terminal state with a parked copy is precisely a credit deadlock.
//! * **Exactly-once** — a retried non-idempotent operation executes at
//!   its target exactly once (duplicates from spurious retransmissions
//!   must be absorbed by the dedup table), checked on *every* state.
//! * **Zero credit leaks** — at quiescence no `(edge, class)` account
//!   between live endpoints still holds a credit.
//!
//! Credits are modelled at cap 1 per CHT `(edge, class)` account — the
//! harshest legal setting: if no interleaving deadlocks at cap 1, higher
//! caps only relax the same wait-for relation. Each origin's first-hop
//! account is per-request (mirroring the runtime's per-process accounts)
//! and therefore never contended.

use std::collections::{BTreeMap, HashMap};
use vt_armci::forward_decision;
use vt_core::{repack, Shape, SurvivorPacking, TopologyKind, VirtualTopology};

/// Hard ceiling on model-checkable node counts: beyond this the state
/// space stops being "exhaustive in milliseconds" and becomes a job.
pub const MAX_MODEL_NODES: u32 = 6;

/// Hard ceiling on concurrently modelled requests.
pub const MAX_MODEL_REQUESTS: usize = 4;

/// One model-checking scenario.
#[derive(Clone, Debug)]
pub struct ModelConfig {
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Node count (`<=` [`MAX_MODEL_NODES`]).
    pub nodes: u32,
    /// Concurrent requests as `(origin node, target node)` pairs.
    pub requests: Vec<(u32, u32)>,
    /// Nodes crashed during the run, in schedule order; the crash *time*
    /// is left nondeterministic, so every interleaving point is explored.
    pub crash_sequence: Vec<u32>,
    /// Retransmission attempts allowed per request.
    pub max_retries: u8,
    /// Budget of spurious (premature) timeouts, each of which launches a
    /// duplicate copy of a request that is still in flight — the move
    /// that makes exactly-once non-trivial.
    pub spurious_timeouts: u8,
    /// Model membership epochs: every confirmed crash is followed by an
    /// epoch commit that re-packs the survivors ([`vt_core::repack`]) and
    /// re-routes subsequent launches over the repaired grid, while copies
    /// stamped with an older epoch are rejected wherever they surface
    /// (arrival, head-of-line, un-parking) and replayed by their origin's
    /// timer. The commit itself is a local scheduler event, not a lossy
    /// network move, so it is modelled with priority: when a commit is
    /// pending it is the only enabled transition (the runtime's drain
    /// window is orders of magnitude shorter than the retry budget).
    pub membership: bool,
    /// Abort the search beyond this many distinct states.
    pub max_states: u64,
}

impl ModelConfig {
    /// The canonical scenario for `kind` over `nodes`: a hot-spot (two
    /// corner nodes target node 0) plus one cross request, with one
    /// forwarder crash when `fault` is set.
    pub fn scenario(kind: TopologyKind, nodes: u32, fault: bool) -> ModelConfig {
        let n = nodes;
        let mut requests = Vec::new();
        if n >= 2 {
            requests.push((n - 1, 0));
        }
        if n >= 3 {
            requests.push((n - 2, 0));
        }
        if n >= 4 {
            requests.push((1, n - 1));
        }
        if requests.is_empty() {
            requests.push((0, 0));
        }
        let crash_sequence = if fault {
            victim(kind, n, &requests).into_iter().collect()
        } else {
            Vec::new()
        };
        ModelConfig {
            topology: kind,
            nodes,
            requests,
            crash_sequence,
            max_retries: 3,
            spurious_timeouts: 1,
            membership: false,
            max_states: 5_000_000,
        }
    }

    /// Enables membership-epoch modelling (builder style).
    pub fn with_membership(mut self) -> Self {
        self.membership = true;
        self
    }
}

/// A crash victim that exercises route-around: the first intermediate
/// forwarder on any request's route, or any node that is neither an
/// origin nor a target, or nothing (the scenario degrades to fault-free).
fn victim(kind: TopologyKind, n: u32, requests: &[(u32, u32)]) -> Option<u32> {
    let topo = kind.build(n);
    for &(o, t) in requests {
        if let Some(&first) = topo.route(o, t).first() {
            if first != t {
                return Some(first);
            }
        }
    }
    (0..n).find(|&v| requests.iter().all(|&(o, t)| v != o && v != t))
}

/// Outcome of an exhaustive search.
#[derive(Clone, Debug, Default)]
pub struct ModelReport {
    /// Distinct states visited.
    pub states: u64,
    /// Transitions applied (tree edges of the search).
    pub transitions: u64,
    /// Quiescent (terminal) states reached.
    pub quiescent: u64,
    /// Branches pruned by the sleep-set reduction.
    pub sleep_skips: u64,
    /// Property violations, capped at a handful with representative
    /// detail; empty means all three properties hold on every state.
    pub violations: Vec<String>,
}

impl ModelReport {
    /// True when the search completed with no violation.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

// ---- protocol state -----------------------------------------------------

/// Where one copy (original or retransmitted duplicate) of a request is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Cp {
    /// Duplicate slot not (yet) in use.
    Unused,
    /// Not yet issued by the origin process.
    NotIssued,
    /// On the wire `from -> to`; `cht` says the held credit is the CHT
    /// account `(from, to, class)` (a forwarded hop) rather than the
    /// origin's uncontended per-request account.
    InFlight {
        from: u8,
        to: u8,
        class: u8,
        cht: bool,
    },
    /// In the CHT queue at `at`, still holding the inbound credit.
    Queued {
        from: u8,
        at: u8,
        class: u8,
        cht: bool,
    },
    /// Set aside at `at` waiting for a credit on `(at, to, nclass)`,
    /// still holding the inbound credit. Parking keeps the queue moving;
    /// a quiescent state containing a parked copy is a credit deadlock.
    Parked {
        from: u8,
        at: u8,
        class: u8,
        cht: bool,
        to: u8,
        nclass: u8,
    },
    /// Lost (crashed forwarder or unreachable hop); the origin's timer
    /// will fire.
    AwaitTimeout,
    /// Executed (or deduplicated) at the target; response on the wire.
    Responding,
    /// Absorbed: completed, superseded, failed, or lost with its origin.
    Gone,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    /// Two copy slots per request: `copies[2r]` original, `copies[2r+1]`
    /// the (at most one) duplicate.
    copies: Vec<Cp>,
    /// Per-node CHT FIFO of `(request, copy-slot)` entries.
    queues: Vec<Vec<(u8, u8)>>,
    /// CHT credit accounts `(from, to, class) -> in flight` (cap 1).
    credits: BTreeMap<(u8, u8, u8), u8>,
    done: Vec<bool>,
    failed: Vec<bool>,
    executed: Vec<u8>,
    /// Target-side dedup table: request already executed there.
    marked: Vec<bool>,
    attempt: Vec<u8>,
    /// How many entries of the crash sequence have fired.
    crashed: u8,
    /// How many crashes a membership epoch commit has repaired; the
    /// current epoch number equals this count. Always 0 with membership
    /// off.
    committed: u8,
    /// The epoch each copy slot was last launched under; a copy with
    /// `copy_epoch < committed` is stale and rejected wherever it
    /// surfaces.
    copy_epoch: Vec<u8>,
    spurious_left: u8,
}

/// One enabled protocol move.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Tr {
    Issue {
        r: u8,
        c: u8,
    },
    Deliver {
        r: u8,
        c: u8,
    },
    Service {
        node: u8,
    },
    ForwardParked {
        r: u8,
        c: u8,
    },
    RespArrive {
        r: u8,
        c: u8,
    },
    Timeout {
        r: u8,
        c: u8,
    },
    Spurious {
        r: u8,
    },
    Crash,
    /// Membership epoch commit: repairs all confirmed crashes at once.
    Commit,
}

/// A coarse resource footprint for the independence relation: two
/// transitions commute when their footprints are disjoint. `Crash` (and
/// anything else that inspects the dead set) is handled conservatively in
/// [`Checker::independent`].
#[derive(Clone, Copy, PartialEq, Eq)]
enum Res {
    Req(u8),
    Node(u8),
    Acct(u8, u8, u8),
    Budget,
}

struct Checker<'a> {
    cfg: &'a ModelConfig,
    shape: Shape,
    n: u32,
    origin: Vec<u8>,
    target: Vec<u8>,
    /// Survivor packing per commit level: `packings[k]` repairs the first
    /// `k + 1` crashes of the sequence (`None` where re-packing is
    /// impossible). Precomputed — the crash schedule is fixed, so the
    /// packing after `k` commits is too.
    packings: Vec<Option<SurvivorPacking>>,
    report: ModelReport,
    /// Visited states with the sleep sets they were explored under; a
    /// state is skipped only if a previous visit used a **subset** sleep
    /// set (it explored at least as much as this visit would).
    visited: HashMap<State, Vec<Vec<Tr>>>,
    aborted: bool,
}

const CAP: u8 = 1;

impl<'a> Checker<'a> {
    fn dead(&self, st: &State) -> Vec<u32> {
        let mut d: Vec<u32> = self.cfg.crash_sequence[..usize::from(st.crashed)].to_vec();
        d.sort_unstable();
        d
    }

    fn is_dead(&self, st: &State, node: u8) -> bool {
        self.cfg.crash_sequence[..usize::from(st.crashed)].contains(&u32::from(node))
    }

    fn stale(&self, st: &State, r: u8, c: u8) -> bool {
        self.cfg.membership && st.copy_epoch[2 * usize::from(r) + usize::from(c)] < st.committed
    }

    /// The routing decision for `current -> dest` (issued from `prev`)
    /// under the state's membership view: the repaired survivor packing
    /// once an epoch has committed, the crash-avoiding route over the
    /// original grid otherwise.
    fn route_hop(
        &self,
        st: &State,
        prev: u8,
        current: u8,
        dest: u8,
        class: u8,
    ) -> Option<(u8, u8)> {
        if self.cfg.membership && st.committed > 0 {
            let p = self.packings[usize::from(st.committed) - 1].as_ref()?;
            let cs = p.slot_of(u32::from(current))?;
            let ds = p.slot_of(u32::from(dest))?;
            let ps = p.slot_of(u32::from(prev)).unwrap_or(cs);
            let (hop, nclass) =
                forward_decision(p.grid().shape(), p.num_live(), ps, cs, ds, class, &[])?;
            Some((p.node_of(hop) as u8, nclass))
        } else {
            forward_decision(
                &self.shape,
                self.n,
                u32::from(prev),
                u32::from(current),
                u32::from(dest),
                class,
                &self.dead(st),
            )
            .map(|(hop, nclass)| (hop as u8, nclass))
        }
    }

    fn enabled(&self, st: &State) -> Vec<Tr> {
        // A pending epoch commit pre-empts everything: the runtime's
        // drain window is a local timer far shorter than any retry
        // budget, so no other move races it.
        if self.cfg.membership && st.crashed > st.committed {
            return vec![Tr::Commit];
        }
        let mut out = Vec::new();
        for (i, &cp) in st.copies.iter().enumerate() {
            let r = (i / 2) as u8;
            let c = (i % 2) as u8;
            match cp {
                Cp::NotIssued => out.push(Tr::Issue { r, c }),
                Cp::InFlight { .. } => out.push(Tr::Deliver { r, c }),
                Cp::Parked { at, to, nclass, .. } => {
                    if *st.credits.get(&(at, to, nclass)).unwrap_or(&0) < CAP {
                        out.push(Tr::ForwardParked { r, c });
                    }
                }
                Cp::AwaitTimeout => out.push(Tr::Timeout { r, c }),
                Cp::Responding => out.push(Tr::RespArrive { r, c }),
                Cp::Unused | Cp::Queued { .. } | Cp::Gone => {}
            }
        }
        for (node, q) in st.queues.iter().enumerate() {
            if !q.is_empty() && !self.is_dead(st, node as u8) {
                out.push(Tr::Service { node: node as u8 });
            }
        }
        if st.spurious_left > 0 {
            for r in 0..self.origin.len() {
                let prim = st.copies[2 * r];
                let dup = st.copies[2 * r + 1];
                let in_transit = matches!(
                    prim,
                    Cp::InFlight { .. } | Cp::Queued { .. } | Cp::Parked { .. }
                );
                if dup == Cp::Unused
                    && in_transit
                    && !st.done[r]
                    && !self.is_dead(st, self.origin[r])
                {
                    out.push(Tr::Spurious { r: r as u8 });
                }
            }
        }
        if usize::from(st.crashed) < self.cfg.crash_sequence.len() {
            out.push(Tr::Crash);
        }
        out
    }

    fn release(st: &mut State, from: u8, to: u8, class: u8, cht: bool) {
        if cht {
            let e = st.credits.entry((from, to, class)).or_insert(0);
            debug_assert!(*e > 0, "double release in model");
            *e -= 1;
            if *e == 0 {
                st.credits.remove(&(from, to, class));
            }
        }
    }

    /// Launches a (re)issue of request `r` from its origin under the
    /// current membership view, returning the copy's new state.
    fn launch(&self, st: &State, r: usize) -> Cp {
        let o = self.origin[r];
        let t = self.target[r];
        match self.route_hop(st, o, o, t, 0) {
            Some((hop, class)) => Cp::InFlight {
                from: o,
                to: hop,
                class,
                cht: false,
            },
            None => Cp::Gone,
        }
    }

    /// True if the request still has a live copy other than slot `c`.
    fn other_copy_live(st: &State, r: usize, c: usize) -> bool {
        let other = st.copies[2 * r + (1 - c)];
        !matches!(other, Cp::Unused | Cp::Gone)
    }

    fn apply(&mut self, st: &State, tr: Tr) -> State {
        let mut s = st.clone();
        match tr {
            Tr::Issue { r, c } => {
                let (r, c) = (usize::from(r), usize::from(c));
                let o = self.origin[r];
                let t = self.target[r];
                if self.is_dead(&s, o) {
                    s.copies[2 * r + c] = Cp::Gone;
                } else if o == t {
                    if !s.marked[r] {
                        s.executed[r] += 1;
                        s.marked[r] = true;
                    }
                    s.done[r] = true;
                    s.copies[2 * r + c] = Cp::Gone;
                } else {
                    s.copy_epoch[2 * r + c] = s.committed;
                    let cp = self.launch(&s, r);
                    if cp == Cp::Gone && !Self::other_copy_live(&s, r, c) && !s.done[r] {
                        s.failed[r] = true;
                    }
                    s.copies[2 * r + c] = cp;
                }
            }
            Tr::Deliver { r, c } => {
                let (ri, ci) = (usize::from(r), usize::from(c));
                let Cp::InFlight {
                    from,
                    to,
                    class,
                    cht,
                } = s.copies[2 * ri + ci]
                else {
                    unreachable!("deliver on non-in-flight copy");
                };
                if self.is_dead(&s, to) {
                    // Message swallowed by the crash; the buffer it held
                    // is reclaimed with the dead endpoint.
                    Self::release(&mut s, from, to, class, cht);
                    s.copies[2 * ri + ci] = Cp::AwaitTimeout;
                } else if self.stale(&s, r, c) {
                    // Stale-epoch arrival: the receiver acks (freeing the
                    // inbound buffer) and discards; the origin's timer
                    // replays the operation under the current epoch.
                    Self::release(&mut s, from, to, class, cht);
                    s.copies[2 * ri + ci] = Cp::AwaitTimeout;
                } else {
                    s.copies[2 * ri + ci] = Cp::Queued {
                        from,
                        at: to,
                        class,
                        cht,
                    };
                    s.queues[usize::from(to)].push((r, c));
                }
            }
            Tr::Service { node } => {
                let (r, c) = s.queues[usize::from(node)].remove(0);
                let (ri, ci) = (usize::from(r), usize::from(c));
                let Cp::Queued {
                    from,
                    at,
                    class,
                    cht,
                } = s.copies[2 * ri + ci]
                else {
                    unreachable!("queued copy out of sync");
                };
                debug_assert_eq!(at, node);
                let t = self.target[ri];
                if self.stale(&s, r, c) {
                    // Head-of-line stale rejection: ack and discard, the
                    // origin's timer replays under the current epoch.
                    Self::release(&mut s, from, at, class, cht);
                    s.copies[2 * ri + ci] = Cp::AwaitTimeout;
                } else if node == t {
                    Self::release(&mut s, from, at, class, cht);
                    if !s.marked[ri] {
                        s.executed[ri] += 1;
                        s.marked[ri] = true;
                    }
                    s.copies[2 * ri + ci] = Cp::Responding;
                } else {
                    match self.route_hop(&s, from, node, t, class) {
                        None => {
                            Self::release(&mut s, from, at, class, cht);
                            s.copies[2 * ri + ci] = Cp::AwaitTimeout;
                        }
                        Some((hop, nclass)) => {
                            let acct = (node, hop, nclass);
                            if *s.credits.get(&acct).unwrap_or(&0) < CAP {
                                *s.credits.entry(acct).or_insert(0) += 1;
                                Self::release(&mut s, from, at, class, cht);
                                s.copies[2 * ri + ci] = Cp::InFlight {
                                    from: node,
                                    to: hop,
                                    class: nclass,
                                    cht: true,
                                };
                            } else {
                                s.copies[2 * ri + ci] = Cp::Parked {
                                    from,
                                    at: node,
                                    class,
                                    cht,
                                    to: hop,
                                    nclass,
                                };
                            }
                        }
                    }
                }
            }
            Tr::ForwardParked { r, c } => {
                let (ri, ci) = (usize::from(r), usize::from(c));
                let Cp::Parked {
                    from,
                    at,
                    class,
                    cht,
                    to,
                    nclass,
                } = s.copies[2 * ri + ci]
                else {
                    unreachable!("forward on non-parked copy");
                };
                if self.stale(&s, r, c) {
                    // The credit the parked copy was waiting for freed
                    // after an epoch commit: reject instead of forwarding
                    // (the runtime's head-of-line stale check).
                    Self::release(&mut s, from, at, class, cht);
                    s.copies[2 * ri + ci] = Cp::AwaitTimeout;
                } else {
                    *s.credits.entry((at, to, nclass)).or_insert(0) += 1;
                    Self::release(&mut s, from, at, class, cht);
                    s.copies[2 * ri + ci] = Cp::InFlight {
                        from: at,
                        to,
                        class: nclass,
                        cht: true,
                    };
                }
            }
            Tr::RespArrive { r, c } => {
                let (ri, ci) = (usize::from(r), usize::from(c));
                if !self.is_dead(&s, self.origin[ri]) && !s.done[ri] {
                    s.done[ri] = true;
                }
                s.copies[2 * ri + ci] = Cp::Gone;
            }
            Tr::Timeout { r, c } => {
                let (ri, ci) = (usize::from(r), usize::from(c));
                if self.is_dead(&s, self.origin[ri]) || s.done[ri] {
                    // Lost origin, or a stale timer on an operation the
                    // other copy already completed.
                    s.copies[2 * ri + ci] = Cp::Gone;
                } else if s.attempt[ri] >= self.cfg.max_retries {
                    s.copies[2 * ri + ci] = Cp::Gone;
                    if !Self::other_copy_live(&s, ri, ci) {
                        s.failed[ri] = true;
                    }
                } else {
                    s.attempt[ri] += 1;
                    s.copy_epoch[2 * ri + ci] = s.committed;
                    let cp = self.launch(&s, ri);
                    if cp == Cp::Gone && !Self::other_copy_live(&s, ri, ci) {
                        s.failed[ri] = true;
                    }
                    s.copies[2 * ri + ci] = cp;
                }
            }
            Tr::Spurious { r } => {
                let ri = usize::from(r);
                s.spurious_left -= 1;
                s.attempt[ri] += 1;
                s.copy_epoch[2 * ri + 1] = s.committed;
                s.copies[2 * ri + 1] = self.launch(&s, ri);
            }
            Tr::Crash => {
                let victim = self.cfg.crash_sequence[usize::from(s.crashed)] as u8;
                s.crashed += 1;
                // The victim's queue dies with its buffers; senders time
                // out and retry around it.
                for (r, c) in std::mem::take(&mut s.queues[usize::from(victim)]) {
                    let (ri, ci) = (usize::from(r), usize::from(c));
                    if let Cp::Queued {
                        from,
                        at,
                        class,
                        cht,
                    } = s.copies[2 * ri + ci]
                    {
                        Self::release(&mut s, from, at, class, cht);
                        debug_assert_eq!(at, victim);
                        s.copies[2 * ri + ci] = Cp::AwaitTimeout;
                    }
                }
                for i in 0..s.copies.len() {
                    let ri = i / 2;
                    if self.origin[ri] == victim {
                        // The origin process died with the node: its
                        // copies vanish wherever they are, returning any
                        // buffer they hold and leaving no queue entry
                        // behind.
                        match s.copies[i] {
                            Cp::Unused => continue,
                            Cp::InFlight {
                                from,
                                to,
                                class,
                                cht,
                            } => {
                                Self::release(&mut s, from, to, class, cht);
                            }
                            Cp::Queued {
                                from,
                                at,
                                class,
                                cht,
                            } => {
                                Self::release(&mut s, from, at, class, cht);
                                let (r8, c8) = ((ri as u8), (i % 2) as u8);
                                s.queues[usize::from(at)].retain(|&e| e != (r8, c8));
                            }
                            Cp::Parked {
                                from,
                                at,
                                class,
                                cht,
                                ..
                            } => {
                                Self::release(&mut s, from, at, class, cht);
                            }
                            Cp::NotIssued | Cp::AwaitTimeout | Cp::Responding | Cp::Gone => {}
                        }
                        s.copies[i] = Cp::Gone;
                        continue;
                    }
                    if let Cp::Parked {
                        from,
                        at,
                        class,
                        cht,
                        ..
                    } = s.copies[i]
                    {
                        if at == victim {
                            Self::release(&mut s, from, at, class, cht);
                            s.copies[i] = Cp::AwaitTimeout;
                        }
                    }
                }
            }
            Tr::Commit => {
                // Epoch bump: all confirmed crashes repaired at once.
                // Copies keep their old stamps and are rejected lazily
                // where they surface; replays re-stamp at launch.
                s.committed = s.crashed;
            }
        }
        s
    }

    fn footprint(&self, st: &State, tr: Tr) -> Vec<Res> {
        match tr {
            Tr::Issue { r, .. } => vec![Res::Req(r)],
            Tr::Deliver { r, c } => {
                let mut f = vec![Res::Req(r)];
                if let Cp::InFlight {
                    from,
                    to,
                    class,
                    cht,
                } = st.copies[2 * usize::from(r) + usize::from(c)]
                {
                    f.push(Res::Node(to));
                    if cht {
                        f.push(Res::Acct(from, to, class));
                    }
                }
                f
            }
            Tr::Service { node } => {
                let mut f = vec![Res::Node(node)];
                if let Some(&(r, c)) = st.queues[usize::from(node)].first() {
                    f.push(Res::Req(r));
                    if let Cp::Queued {
                        from,
                        at,
                        class,
                        cht,
                    } = st.copies[2 * usize::from(r) + usize::from(c)]
                    {
                        if cht {
                            f.push(Res::Acct(from, at, class));
                        }
                    }
                    // The outgoing account it may acquire: every account
                    // out of `node` is conservatively in the footprint.
                    for cl in 0..self.shape.ndims() as u8 {
                        for hop in 0..self.n as u8 {
                            f.push(Res::Acct(node, hop, cl));
                        }
                    }
                }
                f
            }
            Tr::ForwardParked { r, c } => {
                let mut f = vec![Res::Req(r)];
                if let Cp::Parked {
                    from,
                    at,
                    class,
                    cht,
                    to,
                    nclass,
                } = st.copies[2 * usize::from(r) + usize::from(c)]
                {
                    f.push(Res::Acct(at, to, nclass));
                    if cht {
                        f.push(Res::Acct(from, at, class));
                    }
                }
                f
            }
            Tr::RespArrive { r, .. } => vec![Res::Req(r)],
            Tr::Timeout { r, .. } => vec![Res::Req(r)],
            Tr::Spurious { r } => vec![Res::Req(r), Res::Budget],
            // Both handled specially: dependent with all.
            Tr::Crash | Tr::Commit => Vec::new(),
        }
    }

    /// Conservative independence: `Crash` and `Commit` commute with
    /// nothing (they rewrite the membership view every router consults),
    /// `Spurious` moves share the budget, and everything else commutes
    /// iff resource footprints are disjoint.
    fn independent(&self, st: &State, a: Tr, b: Tr) -> bool {
        if matches!(a, Tr::Crash | Tr::Commit) || matches!(b, Tr::Crash | Tr::Commit) {
            return false;
        }
        let fa = self.footprint(st, a);
        let fb = self.footprint(st, b);
        !fa.iter().any(|r| fb.contains(r))
    }

    fn violation(&mut self, msg: String) {
        if self.report.violations.len() < 5 && !self.report.violations.contains(&msg) {
            self.report.violations.push(msg);
        }
    }

    fn check_invariants(&mut self, st: &State) {
        for (r, &e) in st.executed.iter().enumerate() {
            if e > 1 {
                let msg = format!(
                    "exactly-once violated: request {r} ({} -> {}) executed {e} times",
                    self.origin[r], self.target[r]
                );
                self.violation(msg);
            }
        }
    }

    fn check_quiescent(&mut self, st: &State) {
        self.report.quiescent += 1;
        for (i, &cp) in st.copies.iter().enumerate() {
            if !matches!(cp, Cp::Unused | Cp::Gone) {
                let msg = format!(
                    "quiescence violated: request {} copy {} stranded in {:?} (credit deadlock?)",
                    i / 2,
                    i % 2,
                    cp
                );
                self.violation(msg);
            }
        }
        for r in 0..self.origin.len() {
            let (o, t) = (self.origin[r], self.target[r]);
            if self.is_dead(st, o) {
                continue; // lost rank, excluded like Report::lost_ranks
            }
            if self.is_dead(st, t) {
                if !st.done[r] && !st.failed[r] {
                    self.violation(format!(
                        "request {r} to crashed target {t} neither completed nor diagnosed"
                    ));
                }
                continue;
            }
            if !st.done[r] {
                self.violation(format!(
                    "request {r} ({o} -> {t}) between live nodes did not complete"
                ));
            } else if st.executed[r] != 1 {
                self.violation(format!(
                    "request {r} ({o} -> {t}) completed but executed {} times",
                    st.executed[r]
                ));
            }
        }
        for (&(from, to, class), &held) in &st.credits {
            if held > 0 && !self.is_dead(st, from) && !self.is_dead(st, to) {
                self.violation(format!(
                    "credit leak: account ({from} -> {to}, class {class}) holds {held} at quiescence"
                ));
            }
        }
    }

    fn explore(&mut self, st: State, sleep: Vec<Tr>) {
        if self.aborted {
            return;
        }
        if let Some(prior) = self.visited.get(&st) {
            if prior.iter().any(|p| p.iter().all(|t| sleep.contains(t))) {
                self.report.sleep_skips += 1;
                return;
            }
        }
        self.report.states += 1;
        if self.report.states > self.cfg.max_states {
            self.violation(format!(
                "state space exceeded {} states; not exhaustive",
                self.cfg.max_states
            ));
            self.aborted = true;
            return;
        }
        self.check_invariants(&st);
        let enabled = self.enabled(&st);
        if enabled.is_empty() {
            self.check_quiescent(&st);
            self.visited.entry(st).or_default().push(sleep);
            return;
        }
        let mut explored: Vec<Tr> = Vec::new();
        for &t in enabled.iter().filter(|t| !sleep.contains(t)) {
            let child = self.apply(&st, t);
            self.report.transitions += 1;
            let child_sleep: Vec<Tr> = sleep
                .iter()
                .chain(explored.iter())
                .copied()
                .filter(|&t2| self.independent(&st, t, t2))
                .collect();
            self.explore(child, child_sleep);
            explored.push(t);
            if self.aborted {
                return;
            }
        }
        self.visited.entry(st).or_default().push(sleep);
    }
}

/// Runs the exhaustive search for `cfg`.
///
/// # Errors
/// Returns a message (not a violation) when the scenario itself is out of
/// the model's range: too many nodes or requests, an unsupported
/// topology/population, or an invalid request endpoint.
pub fn check(cfg: &ModelConfig) -> Result<ModelReport, String> {
    if cfg.nodes == 0 || cfg.nodes > MAX_MODEL_NODES {
        return Err(format!(
            "model checker handles 1..={MAX_MODEL_NODES} nodes, got {}",
            cfg.nodes
        ));
    }
    if cfg.requests.is_empty() || cfg.requests.len() > MAX_MODEL_REQUESTS {
        return Err(format!(
            "model checker handles 1..={MAX_MODEL_REQUESTS} requests, got {}",
            cfg.requests.len()
        ));
    }
    if !cfg.topology.supports(cfg.nodes) {
        return Err(format!(
            "{} does not support {} nodes",
            cfg.topology.name(),
            cfg.nodes
        ));
    }
    for &(o, t) in &cfg.requests {
        if o >= cfg.nodes || t >= cfg.nodes {
            return Err(format!("request {o} -> {t} outside 0..{}", cfg.nodes));
        }
    }
    for &v in &cfg.crash_sequence {
        if v >= cfg.nodes {
            return Err(format!("crash victim {v} outside 0..{}", cfg.nodes));
        }
    }
    let topo = cfg.topology.build(cfg.nodes);
    let nreq = cfg.requests.len();
    let init = State {
        copies: (0..nreq)
            .flat_map(|_| [Cp::NotIssued, Cp::Unused])
            .collect(),
        queues: vec![Vec::new(); cfg.nodes as usize],
        credits: BTreeMap::new(),
        done: vec![false; nreq],
        failed: vec![false; nreq],
        executed: vec![0; nreq],
        marked: vec![false; nreq],
        attempt: vec![0; nreq],
        crashed: 0,
        committed: 0,
        copy_epoch: vec![0; 2 * nreq],
        spurious_left: cfg.spurious_timeouts,
    };
    // The packing after k commits depends only on the (fixed) crash
    // schedule prefix, so all of them are computed up front.
    let packings = (1..=cfg.crash_sequence.len())
        .map(|k| {
            let mut dead = cfg.crash_sequence[..k].to_vec();
            dead.sort_unstable();
            dead.dedup();
            repack(cfg.topology, cfg.nodes, &dead).ok()
        })
        .collect();
    let mut checker = Checker {
        cfg,
        shape: topo.shape().clone(),
        n: cfg.nodes,
        origin: cfg.requests.iter().map(|&(o, _)| o as u8).collect(),
        target: cfg.requests.iter().map(|&(_, t)| t as u8).collect(),
        packings,
        report: ModelReport::default(),
        visited: HashMap::new(),
        aborted: false,
    };
    checker.explore(init, Vec::new());
    Ok(checker.report)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_hot_spot_passes_all_topologies() {
        for kind in [
            TopologyKind::Fcg,
            TopologyKind::Mfcg,
            TopologyKind::Cfcg,
            TopologyKind::Hypercube,
        ] {
            let n = if kind == TopologyKind::Hypercube {
                4
            } else {
                5
            };
            let cfg = ModelConfig::scenario(kind, n, false);
            let rep = check(&cfg).unwrap();
            assert!(rep.passed(), "{kind}: {:?}", rep.violations);
            assert!(rep.quiescent > 0);
        }
    }

    #[test]
    fn forwarder_crash_keeps_exactly_once_and_no_leaks() {
        let cfg = ModelConfig::scenario(TopologyKind::Mfcg, 4, true);
        assert!(
            !cfg.crash_sequence.is_empty(),
            "scenario must crash someone"
        );
        let rep = check(&cfg).unwrap();
        assert!(rep.passed(), "{:?}", rep.violations);
        assert!(rep.quiescent > 0);
    }

    #[test]
    fn sleep_sets_prune_without_losing_terminal_states() {
        let cfg = ModelConfig::scenario(TopologyKind::Mfcg, 4, false);
        let rep = check(&cfg).unwrap();
        assert!(rep.sleep_skips > 0, "reduction should prune something");
        assert!(rep.passed());
    }

    #[test]
    fn epoch_commit_keeps_exactly_once_and_no_leaks() {
        // Same crash scenario as above, but with membership on: the
        // commit re-packs the survivors, stale-epoch copies are rejected
        // at arrival / head-of-line / un-parking, and replays re-route
        // over the repaired grid. Exactly-once and zero credit leaks
        // must survive every interleaving of all of that.
        for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
            let n = if kind == TopologyKind::Cfcg { 6 } else { 4 };
            let cfg = ModelConfig::scenario(kind, n, true).with_membership();
            assert!(
                !cfg.crash_sequence.is_empty(),
                "scenario must crash someone"
            );
            let rep = check(&cfg).unwrap();
            assert!(rep.passed(), "{kind}: {:?}", rep.violations);
            assert!(rep.quiescent > 0);
        }
    }

    #[test]
    fn out_of_range_scenarios_are_rejected() {
        let mut cfg = ModelConfig::scenario(TopologyKind::Fcg, 4, false);
        cfg.nodes = 50;
        assert!(check(&cfg).is_err());
        let cfg2 = ModelConfig {
            requests: vec![(9, 0)],
            ..ModelConfig::scenario(TopologyKind::Fcg, 4, false)
        };
        assert!(check(&cfg2).is_err());
    }
}
