//! Buffer/credit dependency-graph construction.
//!
//! A request parked or queued at a node holds a buffer on the edge it
//! arrived through while it waits for a buffer on the edge it will leave
//! through. The classic Dally & Seitz argument makes forwarding
//! deadlock-free exactly when the *wait-for* relation over buffers is
//! acyclic, so the analyzer builds that relation explicitly: one vertex
//! per `(channel, escape class)` — a channel being a populated directed
//! topology edge, mirroring the runtime's `(edge, class)` credit accounts
//! — and one arc per consecutive hop pair on some route.
//!
//! Routes are not re-derived from the paper: every hop is obtained from
//! [`vt_armci::forward_decision`], the *same* function the CHT engine
//! calls at its forwarding sites, so an acyclicity certificate here is a
//! statement about the code that actually runs, not about a parallel
//! re-implementation of LDF.

use crate::CycleWitness;
use std::collections::HashMap;
use vt_armci::forward_decision;
use vt_core::graph::DiGraph;
use vt_core::{Grid, VirtualTopology};

/// The number of escape buffer classes a `shape`-dimensional topology can
/// ever use: route-around escalates the class once per dimension descent,
/// and a route of at most `ndims` hops has at most `ndims - 1` descents,
/// so classes `0 ..= ndims - 1` suffice.
pub fn escape_classes(topo: &Grid) -> u8 {
    topo.shape().ndims() as u8
}

/// The `(channel, class)` dependency graph of one routing configuration.
#[derive(Debug)]
pub struct DepGraph {
    /// Populated directed topology edges, in a fixed enumeration order.
    pub channels: Vec<(u32, u32)>,
    /// Escape classes modelled (`vertex = class * channels + channel`).
    pub classes: u8,
    /// The wait-for relation between `(channel, class)` buffers.
    pub graph: DiGraph,
    /// Hops some route took over a pair of nodes that is **not** a
    /// populated topology edge — always a verification failure, reported
    /// by the totality check rather than panicking here.
    pub bad_edges: Vec<(u32, u32)>,
    /// `(in-channel, class, dest)` triples observed on routes, keyed for
    /// the coalescing refold check: a request that arrived at a node via
    /// `in-channel` in `class`, still destined for `dest`.
    pub arrivals: Vec<(u32, u8, u32)>,
}

impl DepGraph {
    /// Vertex id of `(channel, class)`.
    pub fn vertex(&self, channel: u32, class: u8) -> u32 {
        u32::from(class) * self.channels.len() as u32 + channel
    }

    /// Decomposes a vertex id back into `(channel endpoints, class)`.
    pub fn decode(&self, v: u32) -> ((u32, u32), u8) {
        let nch = self.channels.len() as u32;
        let class = (v / nch) as u8;
        let ch = self.channels[(v % nch) as usize];
        (ch, class)
    }

    /// A cycle in the wait-for relation, decoded into a witness the
    /// report layer can render as DOT — or `None`, the certificate.
    pub fn find_cycle_witness(&self) -> Option<CycleWitness> {
        let cycle = self.graph.find_cycle()?;
        Some(CycleWitness {
            hops: cycle.iter().map(|&v| self.decode(v)).collect(),
        })
    }
}

/// Builds the dependency graph of `topo` with the nodes in `dead` already
/// crashed, by walking every live ordered pair with the engine's own
/// forwarding decision. Fault-free traffic (`dead = []`) is entirely class
/// 0; route-around contributes the higher classes.
pub fn build(topo: &Grid, dead: &[u32]) -> DepGraph {
    let n = topo.num_nodes();
    let mut channels = Vec::new();
    let mut index: HashMap<(u32, u32), u32> = HashMap::new();
    for from in 0..n {
        for to in topo.out_neighbors(from) {
            index.insert((from, to), channels.len() as u32);
            channels.push((from, to));
        }
    }
    let classes = escape_classes(topo).max(1);
    let nch = channels.len() as u32;
    let mut graph = DiGraph::new(channels.len() * usize::from(classes));
    let mut bad_edges = Vec::new();
    let mut arrivals = Vec::new();

    let shape = topo.shape();
    for src in 0..n {
        if dead.contains(&src) {
            continue;
        }
        for dst in 0..n {
            if src == dst || dead.contains(&dst) {
                continue;
            }
            let mut prev = src;
            let mut cur = src;
            let mut class = 0u8;
            let mut prev_vertex: Option<u32> = None;
            // `forward_decision` returns None for both "arrived" and
            // "unreachable"; the loop guard distinguishes them.
            while cur != dst {
                let Some((hop, c)) = forward_decision(shape, n, prev, cur, dst, class, dead) else {
                    break; // unreachable: totality check reports it
                };
                let ch = match index.get(&(cur, hop)) {
                    Some(&ch) => ch,
                    None => {
                        bad_edges.push((cur, hop));
                        index.insert((cur, hop), channels.len() as u32);
                        channels.push((cur, hop));
                        channels.len() as u32 - 1
                    }
                };
                if c >= classes || ch >= nch {
                    // Out-of-range class or a late-registered bad edge:
                    // both already recorded as failures; the graph proper
                    // only spans the pre-sized vertex set.
                    break;
                }
                let v = u32::from(c) * nch + ch;
                if let Some(p) = prev_vertex {
                    graph.add_edge(p, v);
                } else {
                    // First hop: nothing upstream to wait on.
                }
                if hop != dst {
                    arrivals.push((ch, c, dst));
                }
                prev_vertex = Some(v);
                prev = cur;
                cur = hop;
                class = c;
            }
        }
    }
    arrivals.sort_unstable();
    arrivals.dedup();
    DepGraph {
        channels,
        classes,
        graph,
        bad_edges,
        arrivals,
    }
}

/// Builds the *union* dependency graph over every crash prefix of
/// `dead_sequence`: requests issued before the k-th crash still occupy
/// buffers chosen under the old dead set while rerouted traffic claims
/// buffers under the new one, so transition safety needs the union of all
/// prefix graphs acyclic — which the strictly rising `(class, dimension)`
/// rank gives for free, and this function lets us *check* instead of
/// assume.
pub fn build_union(topo: &Grid, dead_sequence: &[u32]) -> DepGraph {
    let mut acc = build(topo, &[]);
    let mut dead: Vec<u32> = Vec::new();
    for &node in dead_sequence {
        dead.push(node);
        dead.sort_unstable();
        let g = build(topo, &dead);
        // Channel enumeration is identical across prefixes (it comes from
        // the topology, not the dead set), so vertex ids line up and the
        // graphs merge directly.
        debug_assert_eq!(acc.channels, g.channels);
        acc.graph.merge_from(&g.graph);
        acc.bad_edges.extend(g.bad_edges);
        acc.arrivals.extend(g.arrivals);
    }
    acc.bad_edges.sort_unstable();
    acc.bad_edges.dedup();
    acc.arrivals.sort_unstable();
    acc.arrivals.dedup();
    acc
}

/// Builds the dependency graph of an **arbitrary** classed router over
/// `topo`'s channels — the entry point for verifying routing functions
/// other than the engine's (and for proving that a deliberately miswired
/// one is caught: a cyclic router here must produce a cycle witness).
/// The router returns, per ordered pair, the classed hop sequence, or
/// `None` to decline the pair.
pub fn build_with_router<F>(topo: &Grid, classes: u8, mut router: F) -> DepGraph
where
    F: FnMut(u32, u32) -> Option<Vec<(u32, u8)>>,
{
    let n = topo.num_nodes();
    let mut channels = Vec::new();
    let mut index: HashMap<(u32, u32), u32> = HashMap::new();
    for from in 0..n {
        for to in topo.out_neighbors(from) {
            index.insert((from, to), channels.len() as u32);
            channels.push((from, to));
        }
    }
    let classes = classes.max(1);
    let nch = channels.len() as u32;
    let mut graph = DiGraph::new(channels.len() * usize::from(classes));
    let mut bad_edges = Vec::new();
    let mut arrivals = Vec::new();
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let Some(route) = router(src, dst) else {
                continue;
            };
            let mut cur = src;
            let mut prev_vertex: Option<u32> = None;
            for &(hop, class) in &route {
                let Some(&ch) = index.get(&(cur, hop)) else {
                    bad_edges.push((cur, hop));
                    break;
                };
                if class >= classes {
                    bad_edges.push((cur, hop));
                    break;
                }
                let v = u32::from(class) * nch + ch;
                if let Some(p) = prev_vertex {
                    graph.add_edge(p, v);
                }
                if hop != dst {
                    arrivals.push((ch, class, dst));
                }
                prev_vertex = Some(v);
                cur = hop;
            }
        }
    }
    arrivals.sort_unstable();
    arrivals.dedup();
    DepGraph {
        channels,
        classes,
        graph,
        bad_edges,
        arrivals,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use vt_core::TopologyKind;

    #[test]
    fn fault_free_graph_is_class_zero_only() {
        let topo = TopologyKind::Cfcg.build(27);
        let dg = build(&topo, &[]);
        assert!(dg.bad_edges.is_empty());
        let nch = dg.channels.len() as u32;
        // No arc may leave class 0 without a dead set.
        for v in 0..dg.graph.len() as u32 {
            if v >= nch {
                assert!(dg.graph.successors(v).is_empty());
            }
        }
        assert!(dg.find_cycle_witness().is_none());
    }

    #[test]
    fn route_around_uses_higher_classes_and_stays_acyclic() {
        let topo = TopologyKind::Cfcg.build(27);
        let dead = [1u32];
        let dg = build(&topo, &dead);
        assert!(dg.bad_edges.is_empty());
        let nch = dg.channels.len() as u32;
        let has_escape = (0..dg.graph.len() as u32).any(|v| {
            (v >= nch && !dg.graph.successors(v).is_empty())
                || dg.graph.successors(v).iter().any(|&s| s >= nch)
        });
        assert!(has_escape, "killing a forwarder must engage escape classes");
        assert!(dg.find_cycle_witness().is_none());
    }

    #[test]
    fn miswired_ring_router_yields_a_dot_counterexample() {
        // FCG over 3 nodes, but routed around a ring (0->1->2->0) instead
        // of directly: a textbook buffer-dependency cycle. The analyzer
        // must find it and render it as DOT.
        let topo = TopologyKind::Fcg.build(3);
        let dg = build_with_router(&topo, 1, |src, dst| {
            let mut route = Vec::new();
            let mut cur = src;
            while cur != dst {
                cur = (cur + 1) % 3;
                route.push((cur, 0u8));
            }
            Some(route)
        });
        let w = dg.find_cycle_witness().expect("ring routing must cycle");
        // The witness is a real closed walk over ring channels.
        assert_eq!(w.hops.first(), w.hops.last());
        assert!(w.len() >= 2);
        for pair in w.hops.windows(2) {
            let ((_, t1), _) = pair[0];
            let ((f2, _), _) = pair[1];
            assert_eq!(t1, f2, "consecutive wait-for hops must chain");
        }
        let dot = w.dot();
        assert!(dot.starts_with("digraph"), "{dot}");
        assert!(dot.contains("->"));
    }

    #[test]
    fn union_over_prefixes_is_acyclic() {
        for kind in TopologyKind::ALL {
            let n = if kind == TopologyKind::Hypercube {
                16
            } else {
                20
            };
            let topo = kind.build(n);
            let dg = build_union(&topo, &[3, 5]);
            assert!(
                dg.find_cycle_witness().is_none(),
                "{kind} union graph must be acyclic"
            );
        }
    }
}
