//! `vt-analyze` — static protocol verification for the virtual-topology
//! runtime.
//!
//! The paper's safety story (LDF's monotone dimension order keeps the
//! buffer-dependency graph acyclic, hence forwarding cannot deadlock) is
//! checked here *statically*, before any simulation runs:
//!
//! 1. **Acyclicity** — the full `(channel, escape-class)` buffer/credit
//!    wait-for graph, built from the engine's own
//!    [`vt_armci::forward_decision`] and including route-around escape
//!    edges and coalesced-envelope credit edges, is proved acyclic or the
//!    offending cycle is emitted as a DOT counterexample
//!    ([`depgraph`]).
//! 2. **Totality & depth** — every live pair routes to its destination on
//!    populated edges within the paper's forwarding-depth bound for the
//!    topology, partial LDF packings included ([`checks`]).
//! 3. **Buffer budgets** — the `N x B x M` per-node accounting is
//!    recomputed from first principles and cross-checked against both the
//!    memory model and the runtime's `BufferPool` layout ([`checks`]).
//! 4. **Model checking** — for small N, *every* interleaving of the CHT
//!    protocol's events is explored with a sleep-set reduction, proving
//!    quiescence, exactly-once execution under retries, and zero credit
//!    leaks under injected crashes ([`model`]).
//!
//! The CLI surface is `vtsim analyze`; experiment drivers call
//! [`certify`] as a pre-flight gate, and CI runs the full topology x
//! coalescing x fault matrix.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod checks;
pub mod depgraph;
pub mod model;
pub mod report;

use vt_armci::{CoalesceConfig, RuntimeConfig};
use vt_core::{Grid, TopologyKind};
use vt_simnet::FaultPlan;

/// One `(topology, node count, coalescing, fault)` configuration to
/// verify.
#[derive(Clone, Debug)]
pub struct AnalyzeConfig {
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Number of nodes.
    pub nodes: u32,
    /// Processes per node (senders per in-edge).
    pub procs_per_node: u32,
    /// Request-buffer size `B` in bytes.
    pub buffer_bytes: u64,
    /// Credits per sender per `(edge, class)` account (`M`).
    pub credits: u32,
    /// Whether request coalescing is enabled (adds the envelope refold
    /// check).
    pub coalescing: bool,
    /// Nodes crashed by the fault plan, in schedule order; drives the
    /// escape-class route-around edges.
    pub dead_sequence: Vec<u32>,
    /// Run the exhaustive small-N model checker (at a scaled-down node
    /// count when `nodes` exceeds [`model::MAX_MODEL_NODES`]).
    pub model_check: bool,
    /// Membership repair is enabled in the runtime: the model checker
    /// additionally explores epoch commits, stale-epoch rejection and
    /// re-routing over the survivor packing (see
    /// [`model::ModelConfig::membership`]).
    pub membership: bool,
}

impl AnalyzeConfig {
    /// Paper-like defaults: 4 ppn, 16 KiB buffers, `M = 4`, coalescing
    /// off, fault-free, model checking on.
    pub fn new(topology: TopologyKind, nodes: u32) -> Self {
        AnalyzeConfig {
            topology,
            nodes,
            procs_per_node: 4,
            buffer_bytes: 16 * 1024,
            credits: 4,
            coalescing: false,
            dead_sequence: Vec::new(),
            model_check: true,
            membership: false,
        }
    }

    /// The configuration a concrete runtime + fault plan implies — the
    /// pre-flight entry point for experiment drivers.
    pub fn from_runtime(cfg: &RuntimeConfig, plan: Option<&FaultPlan>) -> Self {
        AnalyzeConfig {
            topology: cfg.topology,
            nodes: cfg.num_nodes(),
            procs_per_node: cfg.procs_per_node,
            buffer_bytes: cfg.buffer_bytes,
            credits: cfg.buffers_per_proc,
            coalescing: cfg.coalesce.enabled,
            dead_sequence: plan.map(FaultPlan::crashed_nodes).unwrap_or_default(),
            model_check: false,
            membership: cfg.membership.enabled,
        }
    }

    /// Builds the topology, or explains why the population is
    /// unsupported.
    pub fn build_topology(&self) -> Result<Grid, String> {
        self.topology
            .try_build(self.nodes)
            .map_err(|e| e.to_string())
    }

    /// The equivalent runtime configuration (used to cross-check the
    /// budget accounting against the runtime's own memory model).
    pub fn runtime_config(&self) -> RuntimeConfig {
        let mut rt = RuntimeConfig::new(self.nodes * self.procs_per_node, self.topology);
        rt.procs_per_node = self.procs_per_node;
        rt.buffer_bytes = self.buffer_bytes;
        rt.buffers_per_proc = self.credits;
        if self.coalescing {
            rt.coalesce = CoalesceConfig::on();
        }
        rt
    }
}

/// Outcome of one static check.
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// Short stable identifier (`acyclicity`, `totality`, ...).
    pub name: String,
    /// Whether the property holds.
    pub passed: bool,
    /// Human-readable evidence: what was checked and the margin, or the
    /// first counterexamples.
    pub detail: String,
}

/// A cycle in the buffer wait-for relation: the closed walk of
/// `(channel, class)` vertices, last element repeating the first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleWitness {
    /// `((from, to), class)` per vertex on the walk.
    pub hops: Vec<((u32, u32), u8)>,
}

/// Full verification result for one configuration.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Topology name.
    pub topology: String,
    /// Node count.
    pub nodes: u32,
    /// Processes per node.
    pub procs_per_node: u32,
    /// Coalescing enabled?
    pub coalescing: bool,
    /// Crashed nodes (sorted).
    pub dead: Vec<u32>,
    /// Static check outcomes.
    pub checks: Vec<CheckResult>,
    /// The cycle, when acyclicity failed.
    pub counterexample: Option<CycleWitness>,
    /// Model-checking outcome, when requested and in range.
    pub model: Option<model::ModelReport>,
}

impl AnalysisReport {
    /// True when every check passed and (if run) the model checker found
    /// no violation — the configuration is safe to simulate.
    pub fn certified(&self) -> bool {
        self.checks.iter().all(|c| c.passed)
            && self.counterexample.is_none()
            && self.model.as_ref().is_none_or(model::ModelReport::passed)
    }
}

/// Verifies one configuration.
///
/// # Errors
/// Returns `Err` only for configurations that cannot be *posed* — an
/// unsupported topology population or malformed victim list. A
/// well-posed configuration always yields a report; failed properties
/// show up as failed checks, not errors.
pub fn analyze(cfg: &AnalyzeConfig) -> Result<AnalysisReport, String> {
    let topo = cfg.build_topology()?;
    if let Some(&bad) = cfg.dead_sequence.iter().find(|&&v| v >= cfg.nodes) {
        return Err(format!("crash victim {bad} outside 0..{}", cfg.nodes));
    }
    if cfg.procs_per_node == 0 || cfg.credits == 0 || cfg.buffer_bytes == 0 {
        return Err("ppn, credits and buffer size must all be positive".to_string());
    }
    let mut dead = cfg.dead_sequence.clone();
    dead.sort_unstable();
    dead.dedup();

    let dg = depgraph::build_union(&topo, &cfg.dead_sequence);
    let mut checks = Vec::new();
    let (acyclic, counterexample) = checks::check_acyclic(&dg);
    checks.push(acyclic);
    checks.push(checks::check_totality(&topo, &dead, &dg));
    checks.push(checks::check_depth(&topo));
    checks.push(checks::check_budget(&topo, cfg));
    if cfg.coalescing {
        checks.push(checks::check_coalescing(&topo, &dead, &dg));
    }

    let model = if cfg.model_check {
        let model_nodes = model_scale(cfg.topology, cfg.nodes);
        let mut scenario =
            model::ModelConfig::scenario(cfg.topology, model_nodes, !cfg.dead_sequence.is_empty());
        scenario.membership = cfg.membership;
        match model::check(&scenario) {
            Ok(rep) => {
                checks.push(CheckResult {
                    name: "model-check-scale".to_string(),
                    passed: true,
                    detail: format!(
                        "exhaustive interleaving search ran at N = {model_nodes} ({} requests, {} crashes)",
                        scenario.requests.len(),
                        scenario.crash_sequence.len()
                    ),
                });
                Some(rep)
            }
            Err(e) => {
                checks.push(CheckResult {
                    name: "model-check-scale".to_string(),
                    passed: false,
                    detail: e,
                });
                None
            }
        }
    } else {
        None
    };

    Ok(AnalysisReport {
        topology: cfg.topology.name().to_string(),
        nodes: cfg.nodes,
        procs_per_node: cfg.procs_per_node,
        coalescing: cfg.coalescing,
        dead,
        checks,
        counterexample,
        model,
    })
}

/// The node count the model checker runs at for a configuration of
/// `nodes`: the configuration itself when small enough, otherwise the
/// largest in-range population the topology supports.
fn model_scale(kind: TopologyKind, nodes: u32) -> u32 {
    let cap = model::MAX_MODEL_NODES;
    if nodes <= cap && kind.supports(nodes) {
        return nodes;
    }
    (1..=cap.min(nodes))
        .rev()
        .find(|&n| kind.supports(n))
        .unwrap_or(1)
}

/// Pre-flight gate for experiment drivers: verifies the configuration a
/// runtime + fault plan implies and returns the full human-readable
/// report as the error when it is not certified.
///
/// # Errors
/// Returns the rendered report when any check fails.
pub fn certify(cfg: &RuntimeConfig, plan: Option<&FaultPlan>) -> Result<(), String> {
    let report = analyze(&AnalyzeConfig::from_runtime(cfg, plan))?;
    if report.certified() {
        Ok(())
    } else {
        Err(report.render())
    }
}

/// Certifier for live membership repairs: statically verifies the
/// topology the runtime is about to commit for an epoch — `kind`
/// re-packed densely over `survivors` live nodes (so fault-free by
/// construction: the crashed nodes are no longer part of the grid).
/// Shaped to match `vt_armci::RepairCertifier`, so drivers install it
/// directly:
///
/// ```
/// use vt_armci::{RuntimeConfig, Simulation, ScriptProgram, FaultPlan};
/// use vt_core::TopologyKind;
///
/// let mut cfg = RuntimeConfig::new(8, TopologyKind::Mfcg);
/// cfg.membership = vt_armci::MembershipConfig::on();
/// let sim = Simulation::build_with_faults(cfg, |_| ScriptProgram::new(vec![]), &FaultPlan::new())
///     .with_repair_certifier(vt_analyze::certify_repair);
/// sim.run().unwrap();
/// ```
///
/// # Errors
/// Returns the rendered report when any static check fails; the runtime
/// then falls to the next rung of the fallback ladder.
pub fn certify_repair(kind: TopologyKind, survivors: u32) -> Result<(), String> {
    let mut cfg = AnalyzeConfig::new(kind, survivors);
    cfg.model_check = false;
    let report = analyze(&cfg)?;
    if report.certified() {
        Ok(())
    } else {
        Err(report.render())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn all_four_topologies_certify_fault_free() {
        for (kind, n) in [
            (TopologyKind::Fcg, 12),
            (TopologyKind::Mfcg, 23),
            (TopologyKind::Cfcg, 29),
            (TopologyKind::Hypercube, 16),
        ] {
            let mut cfg = AnalyzeConfig::new(kind, n);
            cfg.model_check = false;
            let rep = analyze(&cfg).unwrap();
            assert!(rep.certified(), "{kind}/{n}:\n{}", rep.render());
        }
    }

    #[test]
    fn coalescing_and_faults_certify() {
        let mut cfg = AnalyzeConfig::new(TopologyKind::Cfcg, 27);
        cfg.coalescing = true;
        cfg.dead_sequence = vec![1];
        cfg.model_check = false;
        let rep = analyze(&cfg).unwrap();
        assert!(rep.certified(), "{}", rep.render());
        assert!(rep.checks.iter().any(|c| c.name == "coalescing-refold"));
    }

    #[test]
    fn boundary_crash_on_partial_packing_is_refused() {
        // In a partially-packed LDF grid, some nodes are the *only* LDF
        // hop (direct or escape) between certain live pairs: the
        // dimension-correcting alternative lands in the unpopulated part
        // of the top slice. Crashing such a node genuinely partitions the
        // live set, and the analyzer must refuse the configuration with a
        // totality failure rather than certify it.
        for (kind, n, victim) in [
            // 5x5 MFCG with 23 populated: (2,0) is the sole escape for
            // (3,0) -> (2,4) once the dim-1 hop (3,4) is unpopulated.
            (TopologyKind::Mfcg, 23, 2),
            // 4x3x3 CFCG with 29 populated: (0,0,2) is the sole in-slice
            // forwarder toward (0,1,2).
            (TopologyKind::Cfcg, 29, 24),
        ] {
            let mut cfg = AnalyzeConfig::new(kind, n);
            cfg.dead_sequence = vec![victim];
            cfg.model_check = false;
            let rep = analyze(&cfg).unwrap();
            assert!(!rep.certified(), "{kind}/{n} dead {victim} must be refused");
            let totality = rep
                .checks
                .iter()
                .find(|c| c.name == "totality")
                .expect("totality check present");
            assert!(!totality.passed, "refusal must come from totality");
            assert!(totality.detail.contains("dead-ends"), "{}", totality.detail);
        }
    }

    #[test]
    fn hypercube_rejects_non_power_of_two() {
        let cfg = AnalyzeConfig::new(TopologyKind::Hypercube, 12);
        assert!(analyze(&cfg).is_err());
    }

    #[test]
    fn runtime_preflight_certifies_paper_config() {
        let rt = RuntimeConfig::new(64, TopologyKind::Mfcg);
        assert!(certify(&rt, None).is_ok());
    }

    #[test]
    fn repair_certifier_accepts_survivor_packings_and_rejects_bad_rungs() {
        // The boundary-crash populations that are refused as *faulted*
        // partial packings certify cleanly once re-packed densely over
        // the survivors — the repaired grid has no dead nodes left.
        assert!(certify_repair(TopologyKind::Mfcg, 22).is_ok());
        assert!(certify_repair(TopologyKind::Cfcg, 28).is_ok());
        // A rung the population cannot satisfy is rejected, pushing the
        // runtime down the fallback ladder.
        assert!(certify_repair(TopologyKind::Hypercube, 15).is_err());
    }

    #[test]
    fn json_mentions_every_check() {
        let mut cfg = AnalyzeConfig::new(TopologyKind::Mfcg, 9);
        cfg.model_check = true;
        let rep = analyze(&cfg).unwrap();
        let json = rep.to_json();
        assert!(json.contains("\"certified\":true"), "{json}");
        assert!(json.contains("\"acyclicity\""));
        assert!(json.contains("\"model\""));
    }
}
