//! Rendering of analysis results: human text, hand-rolled JSON (the
//! vendored serde shim provides no serialization), and Graphviz DOT for
//! cycle counterexamples.

use crate::{AnalysisReport, CycleWitness};
use std::fmt::Write as _;

/// Minimal JSON string escaping for the fields we emit.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl CycleWitness {
    /// Number of `(channel, class)` vertices on the closed walk (the
    /// closing repeat excluded).
    pub fn len(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }

    /// True for a degenerate (empty) witness — never produced by the
    /// analyzer, present for API completeness.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-line rendering: `(0->1 c0) -> (1->2 c0) -> (0->1 c0)`.
    pub fn label(&self) -> String {
        self.hops
            .iter()
            .map(|((f, t), c)| format!("({f}->{t} c{c})"))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Graphviz DOT rendering of the offending cycle: one node per
    /// `(channel, class)` buffer, arcs along the wait-for order.
    pub fn dot(&self) -> String {
        let mut out = String::from("digraph buffer_wait_cycle {\n");
        out.push_str("  label=\"buffer wait-for cycle (counterexample)\";\n");
        out.push_str("  node [shape=box, fontname=\"monospace\"];\n");
        for ((f, t), c) in self.hops.iter().take(self.len()) {
            let _ = writeln!(
                out,
                "  \"e{f}_{t}_c{c}\" [label=\"edge {f}->{t}\\nclass {c}\"];"
            );
        }
        for w in self.hops.windows(2) {
            let ((f1, t1), c1) = w[0];
            let ((f2, t2), c2) = w[1];
            let _ = writeln!(out, "  \"e{f1}_{t1}_c{c1}\" -> \"e{f2}_{t2}_c{c2}\";");
        }
        out.push_str("}\n");
        out
    }
}

impl AnalysisReport {
    /// Machine-readable JSON document (hand-rolled: the workspace's serde
    /// is a no-op shim).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"topology\":\"{}\",\"nodes\":{},\"procs_per_node\":{},\"coalescing\":{},\"dead\":{:?},\"certified\":{}",
            json_escape(&self.topology),
            self.nodes,
            self.procs_per_node,
            self.coalescing,
            self.dead,
            self.certified()
        );
        out.push_str(",\"checks\":[");
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"passed\":{},\"detail\":\"{}\"}}",
                json_escape(&c.name),
                c.passed,
                json_escape(&c.detail)
            );
        }
        out.push(']');
        if let Some(w) = &self.counterexample {
            let _ = write!(out, ",\"counterexample\":\"{}\"", json_escape(&w.label()));
        }
        if let Some(m) = &self.model {
            let _ = write!(
                out,
                ",\"model\":{{\"states\":{},\"transitions\":{},\"quiescent\":{},\"sleep_skips\":{},\"passed\":{},\"violations\":[{}]}}",
                m.states,
                m.transitions,
                m.quiescent,
                m.sleep_skips,
                m.passed(),
                m.violations
                    .iter()
                    .map(|v| format!("\"{}\"", json_escape(v)))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out.push('}');
        out
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "vt-analyze: {} over {} nodes ({} ppn, coalescing {}, dead {:?})",
            self.topology,
            self.nodes,
            self.procs_per_node,
            if self.coalescing { "on" } else { "off" },
            self.dead
        );
        for c in &self.checks {
            let _ = writeln!(
                out,
                "  [{}] {:<18} {}",
                if c.passed { "PASS" } else { "FAIL" },
                c.name,
                c.detail
            );
        }
        if let Some(m) = &self.model {
            let _ = writeln!(
                out,
                "  [{}] {:<18} {} states, {} transitions, {} quiescent, {} sleep-set prunes",
                if m.passed() { "PASS" } else { "FAIL" },
                "model-check",
                m.states,
                m.transitions,
                m.quiescent,
                m.sleep_skips
            );
            for v in &m.violations {
                let _ = writeln!(out, "         violation: {v}");
            }
        }
        if let Some(w) = &self.counterexample {
            let _ = writeln!(out, "  counterexample: {}", w.label());
        }
        let _ = writeln!(
            out,
            "  verdict: {}",
            if self.certified() {
                "CERTIFIED deadlock-free"
            } else {
                "NOT CERTIFIED"
            }
        );
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn witness_dot_contains_every_hop() {
        let w = CycleWitness {
            hops: vec![((0, 1), 0), ((1, 2), 1), ((0, 1), 0)],
        };
        assert_eq!(w.len(), 2);
        let dot = w.dot();
        assert!(dot.contains("e0_1_c0"));
        assert!(dot.contains("e1_2_c1"));
        assert!(dot.contains("\"e1_2_c1\" -> \"e0_1_c0\""));
        assert!(w.label().contains("(0->1 c0) -> (1->2 c1)"));
    }
}
