//! Individual static checks over one configuration.
//!
//! Each check returns a [`CheckResult`] with a human-readable detail line;
//! the report layer aggregates them and the whole configuration is
//! *certified* only when every check passes.

use crate::depgraph::DepGraph;
use crate::{AnalyzeConfig, CheckResult};
use vt_armci::forward_decision;
use vt_core::{Grid, MemoryModel, TopologyKind, VirtualTopology};

fn pass(name: &str, detail: String) -> CheckResult {
    CheckResult {
        name: name.to_string(),
        passed: true,
        detail,
    }
}

fn fail(name: &str, detail: String) -> CheckResult {
    CheckResult {
        name: name.to_string(),
        passed: false,
        detail,
    }
}

/// Acyclicity of the `(channel, class)` wait-for relation. The offending
/// cycle, when one exists, is returned separately so the report layer can
/// render it as a DOT counterexample.
pub fn check_acyclic(dg: &DepGraph) -> (CheckResult, Option<crate::CycleWitness>) {
    match dg.find_cycle_witness() {
        None => (
            pass(
                "acyclicity",
                format!(
                    "wait-for relation over {} channels x {} classes ({} arcs) is acyclic",
                    dg.channels.len(),
                    dg.classes,
                    dg.graph.edge_count()
                ),
            ),
            None,
        ),
        Some(w) => (
            fail(
                "acyclicity",
                format!("buffer wait-for cycle of length {}: {}", w.len(), w.label()),
            ),
            Some(w),
        ),
    }
}

/// Forwarding-table totality: every ordered pair of **live** nodes must
/// reach its destination within `ndims` hops, every hop must be a
/// populated topology edge, and every escape class must stay below the
/// modelled class count. Pairs involving a dead endpoint are allowed (and
/// expected) to dead-end — the runtime diagnoses those as `Unreachable`.
pub fn check_totality(topo: &Grid, dead: &[u32], dg: &DepGraph) -> CheckResult {
    let n = topo.num_nodes();
    let shape = topo.shape();
    let max_hops = shape.ndims() as u32;
    let classes = dg.classes;
    let mut pairs = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for src in 0..n {
        if dead.contains(&src) {
            continue;
        }
        for dst in 0..n {
            if src == dst || dead.contains(&dst) {
                continue;
            }
            pairs += 1;
            let mut prev = src;
            let mut cur = src;
            let mut class = 0u8;
            let mut hops = 0u32;
            while cur != dst {
                match forward_decision(shape, n, prev, cur, dst, class, dead) {
                    None => {
                        failures.push(format!("{src}->{dst} dead-ends at {cur}"));
                        break;
                    }
                    Some((hop, c)) => {
                        if !topo.has_edge(cur, hop) {
                            failures.push(format!("{src}->{dst} hops off-topology {cur}->{hop}"));
                            break;
                        }
                        if c >= classes {
                            failures.push(format!(
                                "{src}->{dst} escalates to class {c} (modelled {classes})"
                            ));
                            break;
                        }
                        hops += 1;
                        if hops > max_hops {
                            failures.push(format!("{src}->{dst} exceeds {max_hops} hops"));
                            break;
                        }
                        prev = cur;
                        cur = hop;
                        class = c;
                    }
                }
            }
            if failures.len() > 4 {
                break;
            }
        }
        if failures.len() > 4 {
            break;
        }
    }
    if !dg.bad_edges.is_empty() {
        failures.push(format!("routes used non-edges: {:?}", dg.bad_edges));
    }
    if failures.is_empty() {
        pass(
            "totality",
            format!("{pairs} live pairs all route on populated edges within {max_hops} hops"),
        )
    } else {
        fail("totality", failures.join("; "))
    }
}

/// The paper's forwarding-depth bound for `kind` over `n` nodes: the
/// maximum number of *forwarding* steps (route length minus the terminal
/// delivery) any fault-free request may take.
pub fn depth_bound(kind: TopologyKind, n: u32) -> u32 {
    match kind {
        TopologyKind::Fcg => 0,
        TopologyKind::Mfcg => 1,
        TopologyKind::Cfcg => 2,
        // log2(N) dimensions, minus the terminal hop.
        TopologyKind::Hypercube => {
            if n <= 1 {
                0
            } else {
                n.ilog2().saturating_sub(1)
            }
        }
        TopologyKind::KFcg(k) => u32::from(k).saturating_sub(1),
    }
}

/// Fault-free forwarding depth: the observed maximum over all pairs must
/// stay within [`depth_bound`], partial packings included (the walk runs
/// over the *populated* node set, not the shape capacity).
pub fn check_depth(topo: &Grid) -> CheckResult {
    let n = topo.num_nodes();
    let shape = topo.shape();
    let bound = depth_bound(topo.kind(), n);
    let mut max_depth = 0u32;
    let mut witness = (0u32, 0u32);
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let route = vt_core::ldf::route(shape, n, src, dst);
            let depth = route.len().saturating_sub(1) as u32;
            if depth > max_depth {
                max_depth = depth;
                witness = (src, dst);
            }
        }
    }
    let name = "depth-bound";
    if max_depth <= bound {
        pass(
            name,
            format!(
                "max forwarding depth {max_depth} (pair {}->{}) within bound {bound} for {} over {n} nodes",
                witness.0,
                witness.1,
                topo.kind()
            ),
        )
    } else {
        fail(
            name,
            format!(
                "pair {}->{} needs {max_depth} forwarding steps, bound is {bound}",
                witness.0, witness.1
            ),
        )
    }
}

/// The asymptotic per-node in-degree bound of `kind`: the `O(N)` /
/// `O(sqrt N)` / `O(cbrt N)` / `O(log N)` buffer-budget classes of paper
/// §1, made concrete as an exact ceiling each populated node must respect.
pub fn in_degree_ceiling(topo: &Grid) -> u32 {
    // A node has at most (d_i - 1) in-neighbours per dimension i.
    topo.shape().dims().iter().map(|&d| d - 1).sum()
}

/// Per-node buffer budgets: the `N x B x M` accounting. Recomputes every
/// node's CHT pool from first principles (`in_degree x ppn x M x B`),
/// cross-checks it against [`vt_core::MemoryModel`] *and* the runtime's
/// own [`vt_armci::node_memory`], and bounds the in-degree by the
/// topology's asymptotic class.
pub fn check_budget(topo: &Grid, cfg: &AnalyzeConfig) -> CheckResult {
    let n = topo.num_nodes();
    let model = MemoryModel {
        buffer_bytes: cfg.buffer_bytes,
        buffers_per_proc: cfg.credits,
        procs_per_node: cfg.procs_per_node,
        ..MemoryModel::default()
    };
    let rt = cfg.runtime_config();
    let ceiling = in_degree_ceiling(topo);
    let per_sender = u64::from(cfg.credits) * cfg.buffer_bytes;
    let mut max_pool = 0u64;
    for node in 0..n {
        let in_degree = topo.in_degree(node) as u64;
        let expected = in_degree * u64::from(cfg.procs_per_node) * per_sender;
        let from_model = model.cht_pool_bytes(topo, node);
        let from_runtime = vt_armci::node_memory(&rt, topo, node).cht_pool_bytes;
        if from_model != expected || from_runtime != expected {
            return fail(
                "buffer-budget",
                format!(
                    "node {node}: expected {expected} pool bytes, model says {from_model}, runtime says {from_runtime}"
                ),
            );
        }
        if in_degree > u64::from(ceiling) {
            return fail(
                "buffer-budget",
                format!("node {node}: in-degree {in_degree} exceeds ceiling {ceiling}"),
            );
        }
        max_pool = max_pool.max(expected);
    }
    pass(
        "buffer-budget",
        format!(
            "all {n} nodes: pool = in_degree x {} ppn x {} credits x {} B, in-degree <= {ceiling}, max pool {} KiB",
            cfg.procs_per_node,
            cfg.credits,
            cfg.buffer_bytes,
            max_pool / 1024
        ),
    )
}

/// Coalescing refold consistency. An envelope batches members sharing one
/// `(next edge, class)` credit; at the next node each member is unpacked
/// or refolded using the same forwarding decision it would have taken
/// travelling alone. For every `(in-channel, class, dest)` triple that
/// occurs on some route, the refold target must be an arc of the
/// request-level dependency graph — i.e. coalescing can never introduce a
/// `(channel, class)` transition that per-request forwarding does not
/// already have, which is why PR 2's envelopes inherit LDF's acyclicity.
pub fn check_coalescing(topo: &Grid, dead: &[u32], dg: &DepGraph) -> CheckResult {
    let n = topo.num_nodes();
    let shape = topo.shape();
    let nch = dg.channels.len() as u32;
    let mut checked = 0u64;
    for &(ch, class, dest) in &dg.arrivals {
        let (from, at) = dg.channels[ch as usize];
        // Arrivals harvested under an earlier crash prefix may pass
        // through a node that is dead in the final set; those envelopes
        // can no longer exist once the crash lands.
        if dead.contains(&at) || dead.contains(&dest) {
            continue;
        }
        let Some((hop, next_class)) = forward_decision(shape, n, from, at, dest, class, dead)
        else {
            return fail(
                "coalescing-refold",
                format!("member at {at} (from {from}, class {class}, dest {dest}) cannot refold"),
            );
        };
        let Some(out_ch) = dg.channels.iter().position(|&e| e == (at, hop)) else {
            return fail(
                "coalescing-refold",
                format!("refold at {at} departs on non-channel {at}->{hop}"),
            );
        };
        let v_in = u32::from(class) * nch + ch;
        let v_out = u32::from(next_class) * nch + out_ch as u32;
        if !dg.graph.successors(v_in).contains(&v_out) {
            return fail(
                "coalescing-refold",
                format!(
                    "refold arc ({from}->{at} c{class}) -> ({at}->{hop} c{next_class}) is not in the request-level graph"
                ),
            );
        }
        checked += 1;
    }
    pass(
        "coalescing-refold",
        format!("{checked} (in-channel, class, dest) refolds all land on request-level arcs"),
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::depgraph;

    #[test]
    fn depth_bounds_match_paper() {
        assert_eq!(depth_bound(TopologyKind::Fcg, 100), 0);
        assert_eq!(depth_bound(TopologyKind::Mfcg, 100), 1);
        assert_eq!(depth_bound(TopologyKind::Cfcg, 100), 2);
        assert_eq!(depth_bound(TopologyKind::Hypercube, 64), 5); // log2(64) - 1
        assert_eq!(depth_bound(TopologyKind::Hypercube, 1), 0);
        assert_eq!(depth_bound(TopologyKind::KFcg(4), 100), 3);
    }

    #[test]
    fn partial_packing_passes_depth_and_totality() {
        // 23 nodes in a 5x5 mesh: top row partially populated.
        let topo = TopologyKind::Mfcg.build(23);
        let dg = depgraph::build(&topo, &[]);
        assert!(check_depth(&topo).passed);
        assert!(check_totality(&topo, &[], &dg).passed);
    }

    #[test]
    fn budget_cross_check_passes() {
        let cfg = AnalyzeConfig::new(TopologyKind::Cfcg, 27);
        let topo = cfg.build_topology().unwrap();
        let r = check_budget(&topo, &cfg);
        assert!(r.passed, "{}", r.detail);
    }
}
