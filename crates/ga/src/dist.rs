//! Block distribution of a 2-D array over a process grid.

use serde::{Deserialize, Serialize};
use vt_armci::Rank;

/// A 2-D block distribution: the array is cut into `px × py` rectangular
/// blocks, one per rank, in row-major rank order (rank = `by * px + bx`).
/// Leading blocks take the remainder rows/columns, as in GA's regular
/// distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockDist {
    rows: u64,
    cols: u64,
    px: u32,
    py: u32,
}

impl BlockDist {
    /// Distributes `rows × cols` over `n_procs` ranks using a near-square
    /// process grid.
    ///
    /// # Panics
    /// Panics on zero sizes or zero ranks.
    pub fn new(n_procs: u32, rows: u64, cols: u64) -> Self {
        assert!(n_procs >= 1 && rows >= 1 && cols >= 1);
        let (px, py) = proc_grid(n_procs);
        BlockDist { rows, cols, px, py }
    }

    /// The process grid extents `(px, py)`; `px` splits the rows.
    pub fn grid(&self) -> (u32, u32) {
        (self.px, self.py)
    }

    /// Array extent in rows.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Array extent in columns.
    pub fn cols(&self) -> u64 {
        self.cols
    }

    /// Number of ranks holding blocks.
    pub fn num_procs(&self) -> u32 {
        self.px * self.py
    }

    /// The row range `[lo, hi)` of block index `bx` (0-based along rows).
    pub fn row_range(&self, bx: u32) -> (u64, u64) {
        split_range(self.rows, self.px, bx)
    }

    /// The column range `[lo, hi)` of block index `by`.
    pub fn col_range(&self, by: u32) -> (u64, u64) {
        split_range(self.cols, self.py, by)
    }

    /// Block index along rows owning row `r`.
    pub fn row_block(&self, r: u64) -> u32 {
        find_block(self.rows, self.px, r)
    }

    /// Block index along columns owning column `c`.
    pub fn col_block(&self, c: u64) -> u32 {
        find_block(self.cols, self.py, c)
    }

    /// Rank owning element `(r, c)`.
    ///
    /// # Panics
    /// Panics if the element is out of the array.
    pub fn owner_of(&self, r: u64, c: u64) -> Rank {
        assert!(
            r < self.rows && c < self.cols,
            "element ({r},{c}) out of array"
        );
        Rank(self.col_block(c) * self.px + self.row_block(r))
    }
}

/// Near-square factorisation `px × py = n` with `px ≤ py` (falls back to
/// `1 × n` for primes).
pub fn proc_grid(n: u32) -> (u32, u32) {
    let mut px = (n as f64).sqrt().floor() as u32;
    while px > 1 && !n.is_multiple_of(px) {
        px -= 1;
    }
    let px = px.max(1);
    (px, n / px)
}

/// Splits `extent` into `parts` contiguous ranges; the first `extent % parts`
/// ranges get one extra element. Returns the `idx`-th range as `[lo, hi)`.
fn split_range(extent: u64, parts: u32, idx: u32) -> (u64, u64) {
    assert!(idx < parts, "block {idx} out of {parts}");
    let parts = u64::from(parts);
    let idx = u64::from(idx);
    let base = extent / parts;
    let extra = extent % parts;
    let lo = idx * base + idx.min(extra);
    let len = base + u64::from(idx < extra);
    (lo, lo + len)
}

/// Inverse of [`split_range`]: which part owns `pos`.
fn find_block(extent: u64, parts: u32, pos: u64) -> u32 {
    debug_assert!(pos < extent);
    let parts_u = u64::from(parts);
    let base = extent / parts_u;
    let extra = extent % parts_u;
    let boundary = extra * (base + 1);
    let idx = if pos < boundary {
        pos / (base + 1)
    } else {
        extra + (pos - boundary) / base.max(1)
    };
    idx as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_grid_factors() {
        assert_eq!(proc_grid(16), (4, 4));
        assert_eq!(proc_grid(12), (3, 4));
        assert_eq!(proc_grid(7), (1, 7));
        assert_eq!(proc_grid(1), (1, 1));
    }

    #[test]
    fn split_ranges_partition_extent() {
        for extent in [1u64, 7, 100, 1023] {
            for parts in [1u32, 2, 3, 7, 16] {
                let mut expected_lo = 0;
                for idx in 0..parts {
                    let (lo, hi) = split_range(extent, parts, idx);
                    assert_eq!(lo, expected_lo);
                    assert!(hi >= lo);
                    expected_lo = hi;
                }
                assert_eq!(expected_lo, extent);
            }
        }
    }

    #[test]
    fn find_block_inverts_split() {
        for extent in [5u64, 64, 101] {
            for parts in [1u32, 3, 4, 5] {
                for pos in 0..extent {
                    let b = find_block(extent, parts, pos);
                    let (lo, hi) = split_range(extent, parts, b);
                    assert!((lo..hi).contains(&pos), "{extent}/{parts} pos {pos}");
                }
            }
        }
    }

    #[test]
    fn owner_covers_whole_array() {
        let d = BlockDist::new(12, 100, 90);
        let (px, py) = d.grid();
        assert_eq!(px * py, 12);
        for r in (0..100).step_by(7) {
            for c in (0..90).step_by(11) {
                let owner = d.owner_of(r, c);
                assert!(owner.0 < 12);
                // The element lies inside its owner's block ranges.
                let bx = owner.0 % px;
                let by = owner.0 / px;
                let (rlo, rhi) = d.row_range(bx);
                let (clo, chi) = d.col_range(by);
                assert!((rlo..rhi).contains(&r));
                assert!((clo..chi).contains(&c));
            }
        }
    }

    #[test]
    fn corner_owners() {
        let d = BlockDist::new(16, 1024, 1024);
        assert_eq!(d.owner_of(0, 0), Rank(0));
        assert_eq!(d.owner_of(1023, 0), Rank(3));
        assert_eq!(d.owner_of(0, 1023), Rank(12));
        assert_eq!(d.owner_of(1023, 1023), Rank(15));
    }

    #[test]
    #[should_panic(expected = "out of array")]
    fn out_of_range_element_panics() {
        BlockDist::new(4, 10, 10).owner_of(10, 0);
    }
}
