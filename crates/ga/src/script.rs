//! Executing GA call sequences as rank programs.

use crate::calls::GaCall;
use std::collections::VecDeque;
use vt_armci::{Action, ProcCtx, Program};

/// A [`Program`] that performs a fixed sequence of GA calls, then finishes.
///
/// For dynamic workloads (e.g. `nxtval` task loops) implement [`Program`]
/// directly and expand [`GaCall::actions`] as needed; `GaScript` covers the
/// common static case.
pub struct GaScript {
    actions: VecDeque<Action>,
}

impl GaScript {
    /// Builds the program from calls, expanding them eagerly.
    pub fn new(calls: Vec<GaCall>) -> Self {
        GaScript {
            actions: calls.iter().flat_map(GaCall::actions).collect(),
        }
    }

    /// Remaining actions (for tests/inspection).
    pub fn remaining(&self) -> usize {
        self.actions.len()
    }
}

impl Program for GaScript {
    fn next(&mut self, _ctx: &ProcCtx) -> Action {
        self.actions.pop_front().unwrap_or(Action::Done)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::array::GlobalArray;
    use vt_armci::{Rank, RuntimeConfig, Simulation};
    use vt_core::TopologyKind;

    #[test]
    fn ga_script_runs_on_the_engine() {
        // 16 ranks; every rank gets a remote patch and accumulates into
        // another, then synchronises.
        let ga = GlobalArray::create(16, 512, 512, 8);
        let mut cfg = RuntimeConfig::new(16, TopologyKind::Mfcg);
        cfg.procs_per_node = 2;
        let sim = Simulation::build(cfg, |rank| {
            let src = ga.block_of(Rank((rank.0 + 5) % 16));
            let dst = ga.block_of(Rank((rank.0 + 11) % 16));
            GaScript::new(vec![
                GaCall::Get(ga, src),
                GaCall::Acc(ga, dst),
                GaCall::Sync,
            ])
        });
        let report = sim.run().expect("GA traffic must not deadlock");
        // One get + one acc per rank.
        assert_eq!(report.metrics.total_ops(), 32);
    }

    #[test]
    fn script_exhausts_then_done() {
        let mut s = GaScript::new(vec![GaCall::Sync]);
        assert_eq!(s.remaining(), 1);
        let ctx = ProcCtx {
            rank: Rank(0),
            now: vt_armci::SimTime::ZERO,
            completed_ops: 0,
            last_fetch: None,
            notified: 0,
        };
        assert_eq!(s.next(&ctx), Action::Barrier);
        assert_eq!(s.next(&ctx), Action::Done);
        assert_eq!(s.next(&ctx), Action::Done);
    }
}
