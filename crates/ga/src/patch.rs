//! Rectangular patches of a 2-D global array.

use serde::{Deserialize, Serialize};

/// A rectangular region `[row0, row0+rows) × [col0, col0+cols)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Patch {
    /// First row.
    pub row0: u64,
    /// Number of rows.
    pub rows: u64,
    /// First column.
    pub col0: u64,
    /// Number of columns.
    pub cols: u64,
}

impl Patch {
    /// A patch from its origin and extents.
    ///
    /// # Panics
    /// Panics on empty extents.
    pub fn new(row0: u64, rows: u64, col0: u64, cols: u64) -> Self {
        assert!(rows >= 1 && cols >= 1, "patch must be non-empty");
        Patch {
            row0,
            rows,
            col0,
            cols,
        }
    }

    /// Number of elements covered.
    pub fn elems(&self) -> u64 {
        self.rows * self.cols
    }

    /// One past the last row.
    pub fn row_end(&self) -> u64 {
        self.row0 + self.rows
    }

    /// One past the last column.
    pub fn col_end(&self) -> u64 {
        self.col0 + self.cols
    }

    /// The intersection with a `[rlo, rhi) × [clo, chi)` block, if any.
    pub fn intersect(&self, rlo: u64, rhi: u64, clo: u64, chi: u64) -> Option<Patch> {
        let row0 = self.row0.max(rlo);
        let rend = self.row_end().min(rhi);
        let col0 = self.col0.max(clo);
        let cend = self.col_end().min(chi);
        if row0 < rend && col0 < cend {
            Some(Patch {
                row0,
                rows: rend - row0,
                col0,
                cols: cend - col0,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn elems_and_bounds() {
        let p = Patch::new(10, 5, 20, 4);
        assert_eq!(p.elems(), 20);
        assert_eq!(p.row_end(), 15);
        assert_eq!(p.col_end(), 24);
    }

    #[test]
    fn intersect_overlapping() {
        let p = Patch::new(0, 10, 0, 10);
        let i = p.intersect(5, 20, 8, 9).unwrap();
        assert_eq!(i, Patch::new(5, 5, 8, 1));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let p = Patch::new(0, 10, 0, 10);
        assert!(p.intersect(10, 20, 0, 10).is_none());
        assert!(p.intersect(0, 10, 10, 20).is_none());
    }

    #[test]
    fn intersect_contained() {
        let p = Patch::new(3, 2, 3, 2);
        assert_eq!(p.intersect(0, 100, 0, 100), Some(p));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_patch_panics() {
        Patch::new(0, 0, 0, 1);
    }
}
