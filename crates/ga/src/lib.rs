//! # vt-ga — a Global Arrays-style layer over the ARMCI runtime model
//!
//! The paper's runtime (ARMCI) exists to serve the Global Arrays toolkit:
//! GAS applications such as NWChem address dense distributed arrays through
//! patch-level `get`/`put`/`accumulate` calls and balance work dynamically
//! with the shared `nxtval` counter; GA translates each patch access into
//! one-sided ARMCI operations against the patch's owners. This crate
//! reproduces that translation layer on top of `vt-armci`:
//!
//! * [`GlobalArray`] — a dense 2-D array, block-distributed over a process
//!   grid ([`BlockDist`]), with element-wise ownership and patch
//!   intersection math;
//! * [`patch`] operations — a [`Patch`] access decomposes into one vectored
//!   one-sided operation per owner it touches (the segment structure is the
//!   patch's row structure inside that owner's block, exactly why GA traffic
//!   is CHT-path traffic in the paper);
//! * [`calls`] — ready-made GA call sequences ([`GaCall`]) that expand into
//!   runtime [`Action`](vt_armci::Action)s (async issue + fence), plus
//!   `nxtval`;
//! * [`script::GaScript`] — a [`Program`](vt_armci::Program) that executes a
//!   queue of GA calls on one rank.
//!
//! ```
//! use vt_armci::Rank;
//! use vt_ga::{GlobalArray, Patch};
//!
//! // A 1024x1024 array of f64 over 16 ranks (4x4 blocks of 256x256).
//! let ga = GlobalArray::create(16, 1024, 1024, 8);
//! assert_eq!(ga.owner_of(0, 0), Rank(0));
//! assert_eq!(ga.owner_of(1023, 1023), Rank(15));
//!
//! // A patch crossing four owners decomposes into four vectored gets.
//! let ops = ga.get_patch(Patch::new(200, 112, 200, 112));
//! assert_eq!(ops.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
pub mod array;
pub mod calls;
pub mod dist;
pub mod patch;
pub mod script;

pub use array::GlobalArray;
pub use calls::{nxtval, GaCall};
pub use dist::BlockDist;
pub use patch::Patch;
pub use script::GaScript;
