//! GA call sequences as runtime actions.

use crate::array::GlobalArray;
use crate::patch::Patch;
use vt_armci::{Action, Op, Rank, SimTime};

/// One Global Arrays call, expandable into runtime actions.
#[derive(Clone, Debug)]
pub enum GaCall {
    /// `GA_Get` of a patch (blocking at the call level: all per-owner ops
    /// issue asynchronously, then fence).
    Get(GlobalArray, Patch),
    /// `GA_Put` of a patch.
    Put(GlobalArray, Patch),
    /// `GA_Acc` into a patch.
    Acc(GlobalArray, Patch),
    /// `nxtval` — fetch-&-add 1 on the shared task counter owned by `counter`.
    NxtVal {
        /// Rank hosting the counter (GA uses process 0).
        counter: Rank,
    },
    /// Local compute.
    Compute(SimTime),
    /// `GA_Sync` — global barrier.
    Sync,
}

impl GaCall {
    /// Expands the call into the actions a rank must perform, in order.
    pub fn actions(&self) -> Vec<Action> {
        match self {
            GaCall::Get(ga, patch) => fenced(ga.get_patch(*patch)),
            GaCall::Put(ga, patch) => fenced(ga.put_patch(*patch)),
            GaCall::Acc(ga, patch) => fenced(ga.acc_patch(*patch)),
            GaCall::NxtVal { counter } => vec![Action::Op(Op::fetch_add(*counter, 1))],
            GaCall::Compute(d) => vec![Action::Compute(*d)],
            GaCall::Sync => vec![Action::Barrier],
        }
    }
}

/// Issues all ops asynchronously, then fences — GA patch calls complete as a
/// unit but their per-owner transfers overlap.
fn fenced(ops: Vec<Op>) -> Vec<Action> {
    let mut actions: Vec<Action> = ops.into_iter().map(Action::OpAsync).collect();
    actions.push(Action::WaitAll);
    actions
}

/// Convenience: the `nxtval` call against the conventional counter owner
/// (rank 0).
pub fn nxtval() -> GaCall {
    GaCall::NxtVal { counter: Rank(0) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_expands_to_async_ops_plus_fence() {
        let ga = GlobalArray::create(16, 1024, 1024, 8);
        let call = GaCall::Get(ga, Patch::new(250, 12, 250, 12));
        let actions = call.actions();
        assert_eq!(actions.len(), 5); // 4 owners + WaitAll
        assert!(matches!(actions[0], Action::OpAsync(_)));
        assert_eq!(actions[4], Action::WaitAll);
    }

    #[test]
    fn nxtval_is_a_single_blocking_fadd() {
        let actions = nxtval().actions();
        assert_eq!(actions.len(), 1);
        match actions[0] {
            Action::Op(op) => {
                assert_eq!(op.target, Rank(0));
                assert_eq!(op.amount, 1);
            }
            _ => panic!("expected blocking op"),
        }
    }

    #[test]
    fn sync_and_compute_map_directly() {
        assert_eq!(GaCall::Sync.actions(), vec![Action::Barrier]);
        let d = SimTime::from_micros(5);
        assert_eq!(GaCall::Compute(d).actions(), vec![Action::Compute(d)]);
    }
}
