//! The global array descriptor and its patch-to-operation translation.
//!
//! This is the layer the paper's Figure 1 sits under: a GA `get` of a patch
//! becomes one *vectored* one-sided operation per owner block it touches
//! (the vector segments are the patch's rows inside that block). Vectored
//! operations take ARMCI's CHT path, which is why GA applications exercise
//! the virtual topology.

use crate::dist::BlockDist;
use crate::patch::Patch;
use serde::{Deserialize, Serialize};
use vt_armci::{Op, Rank};

/// A dense 2-D array of fixed-size elements, block-distributed over ranks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GlobalArray {
    dist: BlockDist,
    elem_bytes: u64,
}

impl GlobalArray {
    /// Creates (the descriptor of) a `rows × cols` array of `elem_bytes`
    /// elements distributed over `n_procs` ranks.
    pub fn create(n_procs: u32, rows: u64, cols: u64, elem_bytes: u64) -> Self {
        assert!(elem_bytes >= 1);
        GlobalArray {
            dist: BlockDist::new(n_procs, rows, cols),
            elem_bytes,
        }
    }

    /// The underlying distribution.
    pub fn dist(&self) -> &BlockDist {
        &self.dist
    }

    /// Bytes per element.
    pub fn elem_bytes(&self) -> u64 {
        self.elem_bytes
    }

    /// Rank owning element `(r, c)`.
    pub fn owner_of(&self, r: u64, c: u64) -> Rank {
        self.dist.owner_of(r, c)
    }

    /// The patch owned by `rank` (its whole block).
    pub fn block_of(&self, rank: Rank) -> Patch {
        let (px, _) = self.dist.grid();
        let bx = rank.0 % px;
        let by = rank.0 / px;
        let (rlo, rhi) = self.dist.row_range(bx);
        let (clo, chi) = self.dist.col_range(by);
        Patch::new(rlo, rhi - rlo, clo, chi - clo)
    }

    /// Decomposes `patch` into `(owner, sub-patch)` pairs covering it.
    pub fn decompose(&self, patch: Patch) -> Vec<(Rank, Patch)> {
        assert!(
            patch.row_end() <= self.dist.rows() && patch.col_end() <= self.dist.cols(),
            "patch {patch:?} exceeds array {}x{}",
            self.dist.rows(),
            self.dist.cols()
        );
        let (px, py) = self.dist.grid();
        let bx0 = self.dist.row_block(patch.row0);
        let bx1 = self.dist.row_block(patch.row_end() - 1);
        let by0 = self.dist.col_block(patch.col0);
        let by1 = self.dist.col_block(patch.col_end() - 1);
        let mut parts = Vec::new();
        for by in by0..=by1.min(py - 1) {
            for bx in bx0..=bx1.min(px - 1) {
                let (rlo, rhi) = self.dist.row_range(bx);
                let (clo, chi) = self.dist.col_range(by);
                if let Some(sub) = patch.intersect(rlo, rhi, clo, chi) {
                    parts.push((Rank(by * px + bx), sub));
                }
            }
        }
        parts
    }

    /// One-sided operations implementing a GA `get` of `patch`: a vectored
    /// get per owner (segments = patch rows inside the owner's block;
    /// column-contiguous storage is assumed per block).
    pub fn get_patch(&self, patch: Patch) -> Vec<Op> {
        self.patch_ops(patch, |target, segs, seg_bytes| {
            Op::get_v(target, segs, seg_bytes)
        })
    }

    /// One-sided operations implementing a GA `put` of `patch`.
    pub fn put_patch(&self, patch: Patch) -> Vec<Op> {
        self.patch_ops(patch, |target, segs, seg_bytes| {
            Op::put_v(target, segs, seg_bytes)
        })
    }

    /// One-sided operations implementing a GA `accumulate` into `patch`.
    pub fn acc_patch(&self, patch: Patch) -> Vec<Op> {
        self.patch_ops(patch, |target, segs, seg_bytes| {
            let mut op = Op::acc(target, u64::from(segs) * seg_bytes);
            op.segments = segs;
            op
        })
    }

    // Invariant: a decomposed sub-patch is clipped to one owner's block,
    // and block rows derive from the array's u32 process-grid dimensions,
    // so `rows` always fits u32 — an overflow here is corrupted patch math.
    #[allow(clippy::expect_used)]
    fn patch_ops<F>(&self, patch: Patch, mk: F) -> Vec<Op>
    where
        F: Fn(Rank, u32, u64) -> Op,
    {
        self.decompose(patch)
            .into_iter()
            .map(|(owner, sub)| {
                let segs = u32::try_from(sub.rows).expect("patch rows fit u32").max(1);
                let seg_bytes = sub.cols * self.elem_bytes;
                mk(owner, segs, seg_bytes)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vt_armci::OpKind;

    fn ga() -> GlobalArray {
        GlobalArray::create(16, 1024, 1024, 8)
    }

    #[test]
    fn blocks_tile_the_array() {
        let ga = ga();
        let mut covered = 0;
        for rank in 0..16 {
            covered += ga.block_of(Rank(rank)).elems();
        }
        assert_eq!(covered, 1024 * 1024);
    }

    #[test]
    fn decompose_covers_patch_exactly() {
        let ga = ga();
        let patch = Patch::new(200, 400, 100, 700);
        let parts = ga.decompose(patch);
        let total: u64 = parts.iter().map(|(_, p)| p.elems()).sum();
        assert_eq!(total, patch.elems());
        // Every sub-patch is fully inside its owner's block.
        for (owner, sub) in &parts {
            let block = ga.block_of(*owner);
            assert_eq!(
                block.intersect(sub.row0, sub.row_end(), sub.col0, sub.col_end()),
                Some(*sub)
            );
        }
    }

    #[test]
    fn single_owner_patch_is_one_op() {
        let ga = ga();
        // Block (0,0) is rows 0..256, cols 0..256.
        let ops = ga.get_patch(Patch::new(10, 20, 10, 30));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, OpKind::GetV);
        assert_eq!(ops[0].target, Rank(0));
        assert_eq!(ops[0].segments, 20);
        assert_eq!(ops[0].bytes, 20 * 30 * 8);
    }

    #[test]
    fn four_corner_patch_hits_four_owners() {
        let ga = ga();
        let ops = ga.put_patch(Patch::new(250, 12, 250, 12));
        assert_eq!(ops.len(), 4);
        let total: u64 = ops.iter().map(|o| o.bytes).sum();
        assert_eq!(total, 12 * 12 * 8);
    }

    #[test]
    fn acc_patch_builds_accumulates() {
        let ga = ga();
        let ops = ga.acc_patch(Patch::new(0, 256, 0, 256));
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind, OpKind::Acc);
        assert_eq!(ops[0].bytes, 256 * 256 * 8);
    }

    #[test]
    fn full_array_patch_touches_every_rank() {
        let ga = ga();
        let parts = ga.decompose(Patch::new(0, 1024, 0, 1024));
        assert_eq!(parts.len(), 16);
        let mut owners: Vec<u32> = parts.iter().map(|(o, _)| o.0).collect();
        owners.sort_unstable();
        assert_eq!(owners, (0..16).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "exceeds array")]
    fn oversized_patch_panics() {
        ga().decompose(Patch::new(1000, 100, 0, 10));
    }
}
