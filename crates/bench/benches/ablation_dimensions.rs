//! Ablation — how many dimensions should a virtual topology have?
//!
//! The paper asks exactly this in §III-C ("one may wonder if a virtual
//! topology of even higher dimension could be a worthy solution") and
//! answers by comparing its three fixed points plus the hypercube. The
//! generalised `KFcg(k)` topology sweeps the whole axis: `k = 1` is the
//! FCG, 2 the MFCG, 3 the CFCG, and each further dimension trades another
//! root off the buffer memory against another forwarding step. This study
//! measures, at the paper's 1 024-process scale:
//!
//! * the CHT buffer pool per node (memory axis),
//! * no-contention fetch-&-add latency (forwarding axis),
//! * 20 % hot-spot latency (attenuation axis).
//!
//! Expected outcome (and the paper's conclusion made quantitative): memory
//! falls steeply up to k = 2–3 and flattens, while the no-contention cost
//! keeps climbing linearly in k — which is why MFCG, not some higher-k
//! grid, is the sweet spot.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Table};
use vt_bench::{emit, parse_opts};
use vt_core::{MemoryModel, TopologyKind, VirtualTopology};

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 32 } else { 8 };
    let ks: Vec<u8> = vec![1, 2, 3, 4, 5, 6];
    let nodes = 256u32; // 1 024 procs at 4 ppn
    let model = MemoryModel {
        procs_per_node: 4,
        ..MemoryModel::default()
    };

    let mut jobs = Vec::new();
    for &k in &ks {
        for scenario in [Scenario::NoContention, Scenario::pct20()] {
            jobs.push((k, scenario));
        }
    }
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(k, scenario)| {
        let cfg = ContentionConfig {
            measure_stride: stride,
            ..ContentionConfig::paper(TopologyKind::KFcg(k), OpSpec::fetch_add(), scenario)
        };
        run(&cfg)
    });
    let mean = |k: u8, s: Scenario| {
        jobs.iter()
            .zip(&outcomes)
            .find(|((jk, js), _)| *jk == k && *js == s)
            .map(|(_, o)| o.mean_us())
            .unwrap_or_else(|| unreachable!("every job tuple was enumerated above"))
    };

    let mut table = Table::new(&[
        "k",
        "equivalent",
        "edges/node",
        "pool (MiB)",
        "quiet (us)",
        "20% hot (us)",
    ]);
    for &k in &ks {
        let topo = TopologyKind::KFcg(k).build(nodes);
        let equivalent = match k {
            1 => "fcg",
            2 => "mfcg",
            3 => "cfcg",
            _ => "-",
        };
        table.row(&[
            k.to_string(),
            equivalent.to_string(),
            topo.out_degree(0).to_string(),
            format!(
                "{:.1}",
                model.cht_pool_bytes(&topo, 0) as f64 / (1024.0 * 1024.0)
            ),
            format!("{:.1}", mean(k, Scenario::NoContention)),
            format!("{:.1}", mean(k, Scenario::pct20())),
        ]);
    }
    let mut out = String::from(
        "# Ablation: virtual-topology dimensionality (1024 procs, 256 nodes, fetch-&-add)\n",
    );
    out.push_str(&table.render());
    out.push_str(
        "\n# Memory gains flatten after k=2-3 while the quiet-path cost keeps\n\
         # rising with every forwarding step: MFCG is the sweet spot, as the\n\
         # paper concludes.\n",
    );
    emit(&opts, "ablation_dimensions", &out);
}
