//! Criterion microbenchmarks for the hot paths of the stack: LDF routing
//! decisions, full-route materialisation, event-queue churn, stream-table
//! touches, credit accounting, physical torus routing and request-tree
//! construction.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vt_armci::buffers::{CreditKey, CreditManager};
use vt_armci::{Rank, Sender};
use vt_core::{ldf, RequestTree, Shape, TopologyKind, VirtualTopology};
use vt_simnet::nic::StreamTable;
use vt_simnet::{EventQueue, SimTime, Torus3};

fn bench_ldf(c: &mut Criterion) {
    let mut g = c.benchmark_group("ldf");
    let mesh = Shape::mesh_for(1024);
    g.bench_function("next_hop/mfcg-1024", |b| {
        let mut src = 0u32;
        b.iter(|| {
            src = (src + 37) % 1024;
            black_box(ldf::next_hop(&mesh, 1024, black_box(src), 0))
        })
    });
    let cube = Shape::cube_for(4096);
    g.bench_function("route/cfcg-4096", |b| {
        let mut src = 1u32;
        b.iter(|| {
            src = (src + 101) % 4096;
            black_box(ldf::route(&cube, 4096, black_box(src), 7))
        })
    });
    let hc = Shape::hypercube_for(4096).unwrap();
    g.bench_function("route/hypercube-4096", |b| {
        let mut src = 1u32;
        b.iter(|| {
            src = (src + 101) % 4096;
            black_box(ldf::route(&hc, 4096, black_box(src), 0))
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push-pop-1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn bench_stream_table(c: &mut Criterion) {
    c.bench_function("stream_table/touch-thrash-96", |b| {
        let mut t = StreamTable::new(96);
        let mut src = 0u32;
        b.iter(|| {
            src = (src + 1) % 200; // more sources than contexts
            black_box(t.touch(black_box(src)))
        })
    });
    c.bench_function("stream_table/touch-hit-96", |b| {
        let mut t = StreamTable::new(96);
        for s in 0..64 {
            t.touch(s);
        }
        let mut src = 0u32;
        b.iter(|| {
            src = (src + 1) % 64;
            black_box(t.touch(black_box(src)))
        })
    });
}

fn bench_credits(c: &mut Criterion) {
    c.bench_function("credits/acquire-release", |b| {
        let mut cm = CreditManager::new(4);
        let key = CreditKey {
            sender: Sender::Proc(Rank(7)),
            edge: (3, 11),
        };
        b.iter(|| {
            assert!(cm.try_acquire(black_box(key)));
            cm.release(key);
        })
    });
}

fn bench_torus(c: &mut Criterion) {
    let t = Torus3::jaguar();
    c.bench_function("torus/route-links-jaguar", |b| {
        let mut a = 0u32;
        b.iter(|| {
            a = (a + 977) % t.len();
            black_box(t.route_links(black_box(a), 9_600))
        })
    });
    c.bench_function("torus/hop-count-jaguar", |b| {
        let mut a = 0u32;
        b.iter(|| {
            a = (a + 977) % t.len();
            black_box(t.hop_count(black_box(a), 9_600))
        })
    });
}

fn bench_request_tree(c: &mut Criterion) {
    let mfcg = TopologyKind::Mfcg.build(1024);
    c.bench_function("request_tree/build-mfcg-1024", |b| {
        b.iter(|| black_box(RequestTree::build(&mfcg, 0)))
    });
    let fcg = TopologyKind::Fcg.build(1024);
    c.bench_function("out_neighbors/fcg-1024", |b| {
        b.iter(|| black_box(fcg.out_neighbors(512)))
    });
}

criterion_group!(
    benches,
    bench_ldf,
    bench_event_queue,
    bench_stream_table,
    bench_credits,
    bench_torus,
    bench_request_tree
);
criterion_main!(benches);
