//! Microbenchmarks for the hot paths of the stack: LDF routing decisions,
//! full-route materialisation, event-queue churn, stream-table touches,
//! credit accounting, physical torus routing and request-tree construction.
//!
//! Self-contained timing (no external harness): each benchmark is warmed
//! up, then run in batches until a time budget is spent, and the median
//! batch rate is reported as ns/iter.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use std::hint::black_box;
use std::time::{Duration, Instant};
use vt_armci::buffers::{CreditKey, CreditManager};
use vt_armci::{Rank, Sender};
use vt_core::{ldf, RequestTree, Shape, TopologyKind, VirtualTopology};
use vt_simnet::nic::StreamTable;
use vt_simnet::{EventQueue, SimTime, Torus3};

/// Times `f` and prints its median ns/iter over several batches.
fn bench(name: &str, mut f: impl FnMut()) {
    const BATCH: u32 = 1_000;
    let budget = Duration::from_millis(200);
    // Warm-up.
    for _ in 0..BATCH {
        f();
    }
    let mut rates = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            f();
        }
        rates.push(t0.elapsed().as_nanos() as f64 / f64::from(BATCH));
    }
    rates.sort_by(|a, b| a.total_cmp(b));
    let median = rates[rates.len() / 2];
    println!(
        "{name:<40} {median:>12.1} ns/iter  ({} batches)",
        rates.len()
    );
}

fn bench_ldf() {
    let mesh = Shape::mesh_for(1024);
    let mut src = 0u32;
    bench("ldf/next_hop/mfcg-1024", || {
        src = (src + 37) % 1024;
        black_box(ldf::next_hop(&mesh, 1024, black_box(src), 0));
    });
    let cube = Shape::cube_for(4096);
    let mut src = 1u32;
    bench("ldf/route/cfcg-4096", || {
        src = (src + 101) % 4096;
        black_box(ldf::route(&cube, 4096, black_box(src), 7));
    });
    let hc = Shape::hypercube_for(4096).unwrap_or_else(|| unreachable!("4096 is a power of two"));
    let mut src = 1u32;
    bench("ldf/route/hypercube-4096", || {
        src = (src + 101) % 4096;
        black_box(ldf::route(&hc, 4096, black_box(src), 0));
    });
}

fn bench_event_queue() {
    bench("event_queue/push-pop-1k", || {
        let mut q = EventQueue::new();
        for i in 0..1000u64 {
            q.schedule(SimTime::from_nanos((i * 7919) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, e)) = q.pop() {
            sum = sum.wrapping_add(e);
        }
        black_box(sum);
    });
}

fn bench_stream_table() {
    let mut t = StreamTable::new(96);
    let mut src = 0u32;
    bench("stream_table/touch-thrash-96", || {
        src = (src + 1) % 200; // more sources than contexts
        black_box(t.touch(black_box(src)));
    });
    let mut t = StreamTable::new(96);
    for s in 0..64 {
        t.touch(s);
    }
    let mut src = 0u32;
    bench("stream_table/touch-hit-96", || {
        src = (src + 1) % 64;
        black_box(t.touch(black_box(src)));
    });
}

fn bench_credits() {
    let mut cm = CreditManager::new(4);
    let key = CreditKey {
        sender: Sender::Proc(Rank(7)),
        edge: (3, 11),
        class: 0,
    };
    bench("credits/acquire-release", || {
        assert!(cm.try_acquire(black_box(key)));
        cm.release(key);
    });
}

fn bench_torus() {
    let t = Torus3::jaguar();
    let mut a = 0u32;
    bench("torus/route-links-jaguar", || {
        a = (a + 977) % t.len();
        black_box(t.route_links(black_box(a), 9_600));
    });
    let mut a = 0u32;
    bench("torus/hop-count-jaguar", || {
        a = (a + 977) % t.len();
        black_box(t.hop_count(black_box(a), 9_600));
    });
}

fn bench_request_tree() {
    let mfcg = TopologyKind::Mfcg.build(1024);
    bench("request_tree/build-mfcg-1024", || {
        black_box(RequestTree::build(&mfcg, 0));
    });
    let fcg = TopologyKind::Fcg.build(1024);
    bench("out_neighbors/fcg-1024", || {
        black_box(fcg.out_neighbors(512));
    });
}

fn main() {
    bench_ldf();
    bench_event_queue();
    bench_stream_table();
    bench_credits();
    bench_torus();
    bench_request_tree();
}
