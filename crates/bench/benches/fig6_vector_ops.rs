//! Figure 6 — vectored data transfer operations under varying contention.
//!
//! Paper setup (§V-B): 1 024 processes, 4 per node over 256 nodes; each
//! measured process performs 20 vectored puts to rank 0; contenders (one in
//! nine → 11 %, one in five → 20 %) hammer rank 0 concurrently. Six panels:
//!
//! * (a) FCG & MFCG, no contention — FCG fastest, MFCG's forwarded group
//!   ~2× slower, latency rising with rank (physical distance);
//! * (b)/(c) FCG & MFCG at 11 %/20 % — FCG degrades by ~two orders of
//!   magnitude; MFCG completes faster than FCG for nearly all ranks;
//! * (d) CFCG & Hypercube, no contention — more forwarding steps, distinct
//!   latency groups; Hypercube worst;
//! * (e)/(f) CFCG at 11 %/20 % (Hypercube omitted, as in the paper).

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Panel};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 16 } else { 4 };
    let cfg = |topology, scenario| ContentionConfig {
        measure_stride: stride,
        ..ContentionConfig::paper(topology, OpSpec::vector_put(), scenario)
    };

    // One job per (topology, scenario) curve; Hypercube only without
    // contention ("it takes too long to get a complete set of numbers").
    let jobs: Vec<(TopologyKind, Scenario)> = vec![
        (TopologyKind::Fcg, Scenario::NoContention),
        (TopologyKind::Fcg, Scenario::pct11()),
        (TopologyKind::Fcg, Scenario::pct20()),
        (TopologyKind::Mfcg, Scenario::NoContention),
        (TopologyKind::Mfcg, Scenario::pct11()),
        (TopologyKind::Mfcg, Scenario::pct20()),
        (TopologyKind::Cfcg, Scenario::NoContention),
        (TopologyKind::Cfcg, Scenario::pct11()),
        (TopologyKind::Cfcg, Scenario::pct20()),
        (TopologyKind::Hypercube, Scenario::NoContention),
    ];
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, scenario)| {
        run(&cfg(topology, scenario))
    });
    let get = |topology, scenario| {
        let idx = jobs
            .iter()
            .position(|&j| j == (topology, scenario))
            .unwrap_or_else(|| unreachable!("get() is only called with enumerated jobs"));
        &outcomes[idx]
    };

    let mut out = String::new();
    let panels = [
        (
            "6(a)",
            "FCG & MFCG with No Contention",
            vec![
                (TopologyKind::Fcg, Scenario::NoContention),
                (TopologyKind::Mfcg, Scenario::NoContention),
            ],
        ),
        (
            "6(b)",
            "FCG & MFCG with 11% Contention",
            vec![
                (TopologyKind::Fcg, Scenario::pct11()),
                (TopologyKind::Mfcg, Scenario::pct11()),
            ],
        ),
        (
            "6(c)",
            "FCG & MFCG with 20% Contention",
            vec![
                (TopologyKind::Fcg, Scenario::pct20()),
                (TopologyKind::Mfcg, Scenario::pct20()),
            ],
        ),
        (
            "6(d)",
            "CFCG & Hypercube with No Contention",
            vec![
                (TopologyKind::Cfcg, Scenario::NoContention),
                (TopologyKind::Hypercube, Scenario::NoContention),
            ],
        ),
        (
            "6(e)",
            "CFCG with 11% Contention",
            vec![(TopologyKind::Cfcg, Scenario::pct11())],
        ),
        (
            "6(f)",
            "CFCG with 20% Contention",
            vec![(TopologyKind::Cfcg, Scenario::pct20())],
        ),
    ];
    for (id, title, curves) in panels {
        let mut panel = Panel::new(
            format!("Figure {id}: {title} (vectored put, 1024 procs)"),
            "process rank",
            "time (usec)",
        );
        for (topology, scenario) in curves {
            panel
                .series
                .push(get(topology, scenario).series(topology.name()));
        }
        out.push_str(&panel.render());
        out.push('\n');
    }

    // Shape summary the paper's text highlights.
    out.push_str("# Shape summary (mean usec per curve):\n");
    for &(topology, scenario) in &jobs {
        let o = get(topology, scenario);
        out.push_str(&format!(
            "#   {:9} {:15}  mean {:>12.1}  median {:>12.1}  stream-misses {:>9}  forwards {:>9}\n",
            topology.name(),
            scenario.label(),
            o.mean_us(),
            o.median_us(),
            o.stream_misses,
            o.forwards,
        ));
    }
    emit(&opts, "fig6_vector_ops", &out);
}
