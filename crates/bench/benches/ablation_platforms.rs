//! Ablation — virtual topologies on a different petascale platform.
//!
//! The paper's future work (§VIII) asks whether virtual topologies help "on
//! other petascale platforms with different physical topologies, e.g.
//! BlueGene/P". This study reruns the Fig. 7 hot-spot protocol on the
//! Blue Gene/P machine model: a denser torus of slower links whose DMA
//! engine keeps per-source state in hardware, so there is no BEER-style
//! stream cliff — hot-spot damage is pure serialisation.
//!
//! Expected outcome: FCG still degrades under contention (the hot node's
//! receive engine serialises every request) but by a much smaller factor
//! than on the XT5; MFCG still attenuates, because bounding the *queue* at
//! the hot node is platform-independent. The virtual-topology idea survives
//! the platform change; the BEER cliff does not.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Table};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;
use vt_simnet::NetworkConfig;

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 32 } else { 8 };
    let platforms = [
        ("xt5", NetworkConfig::jaguar()),
        ("bluegene-p", NetworkConfig::bluegene_p()),
    ];
    let topologies = [TopologyKind::Fcg, TopologyKind::Mfcg];
    let scenarios = [Scenario::NoContention, Scenario::pct20()];

    let mut jobs = Vec::new();
    for &(name, net) in &platforms {
        for t in topologies {
            for s in scenarios {
                jobs.push((name, net, t, s));
            }
        }
    }
    let outcomes = run_parallel(
        jobs.clone(),
        opts.threads,
        |&(_, net, topology, scenario)| {
            let cfg = ContentionConfig {
                measure_stride: stride,
                net: Some(net),
                ..ContentionConfig::paper(topology, OpSpec::fetch_add(), scenario)
            };
            run(&cfg)
        },
    );

    let mut table = Table::new(&[
        "platform",
        "topology",
        "scenario",
        "mean (us)",
        "stream misses",
    ]);
    for ((name, _, topology, scenario), o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            name.to_string(),
            topology.name().to_string(),
            scenario.label(),
            format!("{:.1}", o.mean_us()),
            o.stream_misses.to_string(),
        ]);
    }
    let mut out = String::from("# Ablation: the Fig. 7 hot-spot protocol on XT5 vs Blue Gene/P\n");
    out.push_str(&table.render());

    // Collapse factors per platform.
    let mean = |name: &str, t: TopologyKind, s: Scenario| {
        jobs.iter()
            .zip(&outcomes)
            .find(|((n, _, jt, js), _)| *n == name && *jt == t && *js == s)
            .map(|(_, o)| o.mean_us())
            .unwrap_or_else(|| unreachable!("every job tuple was enumerated above"))
    };
    out.push_str("\n# Contention collapse factor (20% / none):\n");
    for &(name, _) in &platforms {
        let fcg = mean(name, TopologyKind::Fcg, Scenario::pct20())
            / mean(name, TopologyKind::Fcg, Scenario::NoContention);
        let mfcg = mean(name, TopologyKind::Mfcg, Scenario::pct20())
            / mean(name, TopologyKind::Mfcg, Scenario::NoContention);
        out.push_str(&format!(
            "#   {name:10}  fcg {fcg:>8.1}x   mfcg {mfcg:>8.1}x\n"
        ));
    }
    emit(&opts, "ablation_platforms", &out);
}
