//! Figure 5 — scalability of virtual topologies for memory management.
//!
//! Paper setup (§V-A): 12 processes per node, 16-KiB buffers, 4 buffers per
//! process; the master process's VmRSS is reported while the process count
//! grows to 12 288. Expected shape: FCG grows linearly (+812 MB at 12 288
//! processes over the ~612 MB base); MFCG, CFCG and Hypercube cut the
//! increment by roughly one and two orders of magnitude, in that order.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::{Panel, Series, Table};
use vt_bench::{emit, mib, parse_opts};
use vt_core::{MemoryModel, TopologyKind};

fn main() {
    let opts = parse_opts();
    let model = MemoryModel::default(); // 12 ppn, B = 16 KiB, M = 4
    let proc_counts: Vec<u32> = if opts.quick {
        vec![768, 1536, 3072, 6144, 12288]
    } else {
        (1..=16).map(|k| k * 768).collect()
    };

    let mut panel = Panel::new(
        "Figure 5: Scalability of Virtual Topologies for Memory Management",
        "processes",
        "master VmRSS (MBytes)",
    );
    let mut increments_at_max = Vec::new();

    for kind in TopologyKind::ALL {
        let mut points = Vec::new();
        for &procs in &proc_counts {
            let nodes = procs / model.procs_per_node;
            let nodes = if kind == TopologyKind::Hypercube {
                nodes.next_power_of_two() / if nodes.is_power_of_two() { 1 } else { 2 }
            } else {
                nodes
            };
            let topo = kind.build(nodes.max(1));
            let vmrss = model.master_vmrss_bytes(&topo, 0);
            points.push((f64::from(procs), vmrss as f64 / (1024.0 * 1024.0)));
            if Some(&procs) == proc_counts.last() {
                increments_at_max.push((kind, model.increment_bytes(&topo, 0)));
            }
        }
        panel.series.push(Series::new(kind.name(), points));
    }

    let mut out = panel.render();

    // The paper's headline ratios: increment reduction vs FCG at max scale.
    let fcg_inc = increments_at_max
        .iter()
        .find(|(k, _)| *k == TopologyKind::Fcg)
        .map(|&(_, inc)| inc)
        .unwrap_or_else(|| unreachable!("FCG is in the topology list"));
    let mut table = Table::new(&[
        "topology",
        "VmRSS increment (MB)",
        "reduction vs FCG",
        "paper reduction",
    ]);
    let paper = [
        (TopologyKind::Fcg, "1.0x"),
        (TopologyKind::Mfcg, "7.5x"),
        (TopologyKind::Cfcg, "16.6x"),
        (TopologyKind::Hypercube, "45x"),
    ];
    for &(kind, inc) in &increments_at_max {
        let paper_red = paper
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, s)| s)
            .unwrap_or("-");
        table.row(&[
            kind.name().to_string(),
            mib(inc),
            format!("{:.1}x", fcg_inc as f64 / inc as f64),
            paper_red.to_string(),
        ]);
    }
    out.push_str("\n# Increment reduction at max scale (paper Fig. 5 discussion):\n");
    out.push_str(&table.render());

    emit(&opts, "fig5_memory", &out);
}
