//! Ablation — request coalescing on the CHT forwarding path.
//!
//! Runs the Fig. 7 fetch-&-add hot spot (pipelined contenders, 20 %
//! contention) with coalescing off and on for every topology. Forwarding
//! topologies fold requests that share a next LDF hop into bounded
//! envelopes on a single downstream credit, so the expected shape is:
//!
//! * FCG is untouched — it never forwards, so there is nothing to coalesce
//!   and both columns are identical;
//! * MFCG/CFCG/Hypercube send markedly fewer physical forwarding messages
//!   (`fwd msgs` < `forwarded`) and fewer network messages overall, at
//!   completion times no worse than the uncoalesced run.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Table};
use vt_armci::CoalesceConfig;
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let (n_procs, stride) = if opts.quick { (256, 16) } else { (1024, 8) };
    let topologies = [
        TopologyKind::Fcg,
        TopologyKind::Mfcg,
        TopologyKind::Cfcg,
        TopologyKind::Hypercube,
    ];
    let mut jobs: Vec<(TopologyKind, bool)> = Vec::new();
    for t in topologies.into_iter().filter(|t| t.supports(n_procs / 4)) {
        jobs.push((t, false));
        jobs.push((t, true));
    }
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, coalesce)| {
        let cfg = ContentionConfig {
            n_procs,
            measure_stride: stride,
            pipelined_contenders: true,
            coalesce: coalesce.then(CoalesceConfig::on),
            ..ContentionConfig::paper(topology, OpSpec::fetch_add(), Scenario::pct20())
        };
        run(&cfg)
    });

    let mut out = String::new();
    out.push_str(&format!(
        "# Request coalescing under the 20% fetch-&-add hot spot at {} ranks (4 ppn)\n",
        n_procs
    ));
    let mut table = Table::new(&[
        "topology",
        "coalescing",
        "finish (us)",
        "mean (us)",
        "forwarded",
        "fwd msgs",
        "envelopes",
        "members",
        "net msgs",
    ]);
    for ((topology, coalesce), o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            topology.name().to_string(),
            if *coalesce { "on" } else { "off" }.to_string(),
            format!("{:.1}", o.finish.as_micros_f64()),
            format!("{:.1}", o.mean_us()),
            o.forwards.to_string(),
            o.fwd_messages.to_string(),
            o.envelopes.to_string(),
            o.coalesced.to_string(),
            o.messages.to_string(),
        ]);
    }
    out.push_str(&table.render());
    emit(&opts, "ablation_coalescing", &out);
}
