//! Figure 8 — the performance of NAS LU.
//!
//! Paper setup (§VI-A): the ARMCI port of NAS LU, strong-scaled over
//! 192–1 536 processes, under all four virtual topologies. Expected shape:
//! execution time falls with process count; all four topologies are
//! comparable (LU has no hot spot), with the leaner virtual topologies
//! slightly ahead of FCG, more visibly at lower process counts.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::lu::{run, LuConfig};
use vt_apps::{run_parallel, Panel, Series, Table};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let proc_counts = [192u32, 384, 768, 1536];
    let iterations = if opts.quick { 50 } else { 250 };

    let jobs: Vec<(TopologyKind, u32)> = TopologyKind::ALL
        .into_iter()
        .flat_map(|t| proc_counts.iter().map(move |&p| (t, p)))
        .collect();
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, procs)| {
        let cfg = LuConfig {
            iterations,
            ..LuConfig::class_c(procs, topology)
        };
        run(&cfg)
    });

    let mut panel = Panel::new(
        format!("Figure 8: The Performance of NAS LU ({iterations} time steps)"),
        "processes",
        "execution time (sec)",
    );
    for kind in TopologyKind::ALL {
        let points = jobs
            .iter()
            .zip(&outcomes)
            .filter(|((t, _), _)| *t == kind)
            .map(|(&(_, p), o)| (f64::from(p), o.exec_seconds))
            .collect();
        panel.series.push(Series::new(kind.name(), points));
    }
    let mut out = panel.render();

    let mut table = Table::new(&["procs", "topology", "exec (s)", "vs FCG", "fwd frac"]);
    for &procs in &proc_counts {
        let fcg = jobs
            .iter()
            .zip(&outcomes)
            .find(|((t, p), _)| *t == TopologyKind::Fcg && *p == procs)
            .map(|(_, o)| o.exec_seconds)
            .unwrap_or_else(|| unreachable!("the job list enumerates an FCG run at every scale"));
        for ((topology, p), o) in jobs.iter().zip(&outcomes) {
            if *p != procs {
                continue;
            }
            table.row(&[
                procs.to_string(),
                topology.name().to_string(),
                format!("{:.1}", o.exec_seconds),
                format!("{:+.2}%", (o.exec_seconds / fcg - 1.0) * 100.0),
                format!("{:.3}", o.forward_fraction),
            ]);
        }
    }
    out.push_str("\n# Per-configuration comparison:\n");
    out.push_str(&table.render());
    emit(&opts, "fig8_nas_lu", &out);
}
