//! Ablation — topology resilience under a forwarder kill.
//!
//! The robustness counterpart of the Fig. 7 hot-spot study: every rank
//! fetch-&-adds at rank 0 while the node forwarding the far corner's
//! traffic is crashed mid-run. For each topology the harness reports the
//! healthy completion time, the faulted completion time, availability, and
//! the self-healing runtime's recovery counters (retransmissions, LDF
//! route-arounds, credit reclaims, dedup hits).
//!
//! Expected shape: FCG only loses the victim's resident ranks — there are
//! no forwarders, so nothing is rerouted and completion time barely moves.
//! The virtual topologies additionally pay timeout/retransmit rounds for
//! the requests the dead forwarder held, then route around it on
//! escape-class buffers; availability is identical across topologies
//! (`1 − ppn/P`), so the price of contention attenuation under faults is
//! measured purely in recovery time.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::faults::{run, FaultScenarioConfig};
use vt_apps::{run_parallel, Table};
use vt_armci::SimTime;
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let (n_procs, ops) = if opts.quick { (64, 4) } else { (256, 8) };
    let topologies = [
        TopologyKind::Fcg,
        TopologyKind::Mfcg,
        TopologyKind::Cfcg,
        TopologyKind::Hypercube,
    ];
    let jobs: Vec<TopologyKind> = topologies
        .into_iter()
        .filter(|t| t.supports(n_procs / 4))
        .collect();
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&topology| {
        run(&FaultScenarioConfig {
            n_procs,
            ops_per_rank: ops,
            kill_at: SimTime::from_micros(if opts.quick { 60 } else { 300 }),
            ..FaultScenarioConfig::paper(topology)
        })
    });

    let mut out = String::new();
    out.push_str(&format!(
        "# Forwarder kill at {} ranks (4 ppn): victim = first hop of node N-1 -> 0\n",
        n_procs
    ));
    let mut table = Table::new(&[
        "topology",
        "victim",
        "healthy (us)",
        "faulted (us)",
        "slowdown",
        "avail",
        "retries",
        "reroutes",
        "reclaims",
        "dedup",
    ]);
    for (topology, o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            topology.name().to_string(),
            format!("node{}", o.victim),
            format!("{:.1}", o.healthy_seconds * 1e6),
            format!("{:.1}", o.exec_seconds * 1e6),
            format!("{:.2}x", o.slowdown()),
            format!("{:.3}", o.availability),
            o.retries.to_string(),
            o.reroutes.to_string(),
            o.reclaims.to_string(),
            o.dedup_hits.to_string(),
        ]);
    }
    out.push_str(&table.render());
    emit(&opts, "ablation_faults", &out);
}
