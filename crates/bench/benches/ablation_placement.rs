//! Ablation — physical placement and the rank-distance latency slope.
//!
//! The paper observes (Figs. 6a/7a) that even under FCG — where every rank
//! is one virtual hop from rank 0 — completion time grows with rank, and
//! attributes it to physical distance in the underlying torus. This study
//! isolates that claim: with *linear* placement the slope is present; with
//! *random* placement (no rank/distance correlation) it vanishes; a
//! *strided* scatter sits in between.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Panel};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;
use vt_simnet::Placement;

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 16 } else { 4 };
    let placements = [
        ("linear", Placement::Linear),
        ("strided", Placement::Strided { stride: 97 }),
        ("random", Placement::Random { seed: 42 }),
    ];

    let jobs: Vec<(&'static str, Placement)> = placements.to_vec();
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(_, placement)| {
        let cfg = ContentionConfig {
            measure_stride: stride,
            placement: Some(placement),
            ..ContentionConfig::paper(
                TopologyKind::Fcg,
                OpSpec::fetch_add(),
                Scenario::NoContention,
            )
        };
        run(&cfg)
    });

    let mut panel = Panel::new(
        "Ablation: node placement vs rank-latency slope (FCG, no contention)",
        "process rank",
        "time (usec)",
    );
    for ((name, _), o) in jobs.iter().zip(&outcomes) {
        panel.series.push(o.series(*name));
    }
    let mut out = panel.render();

    // Quantify the slope: mean over the first vs last eighth of ranks.
    out.push_str("\n# Slope summary (mean of first vs last eighth of measured ranks):\n");
    for ((name, _), o) in jobs.iter().zip(&outcomes) {
        let n = o.points.len();
        let eighth = (n / 8).max(1);
        let head: f64 = o.points[..eighth].iter().map(|&(_, y)| y).sum::<f64>() / eighth as f64;
        let tail: f64 = o.points[n - eighth..].iter().map(|&(_, y)| y).sum::<f64>() / eighth as f64;
        out.push_str(&format!(
            "#   {name:8} head {head:>8.1} us   tail {tail:>8.1} us   ratio {:.2}\n",
            tail / head
        ));
    }
    emit(&opts, "ablation_placement", &out);
}
