//! Figure 9 — NWChem execution time under virtual topologies.
//!
//! * Panel (a): the DFT SiOSi3 method (§VI-B, Fig. 9a). The `nxtval`
//!   dynamic-load-balancing counter is a hot spot; at rising core counts
//!   FCG's latency collapse throttles task dispatch. Expected: MFCG clearly
//!   fastest at scale (the paper reports up to 48 % total-time reduction),
//!   CFCG between, Hypercube *worse* than FCG because of its forwarding
//!   depth.
//! * Panel (b): the CCSD(T) water model (Fig. 9b). No hot spot —
//!   FCG ≥ MFCG until FCG's O(N) buffer pools push node memory past its
//!   budget, where paging flips the ranking (the paper's 10 000-core
//!   crossover; see EXPERIMENTS.md for the deviation discussion).

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::nwchem_ccsd::{self, CcsdConfig};
use vt_apps::nwchem_dft::{self, DftConfig};
use vt_apps::{run_parallel, Panel, Series, Table};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let mut out = String::new();
    dft_panel(&opts, &mut out);
    ccsd_panel(&opts, &mut out);
    emit(&opts, "fig9_nwchem", &out);
}

fn dft_panel(opts: &vt_bench::HarnessOpts, out: &mut String) {
    // 12 ppn; node counts are powers of two so the Hypercube is buildable.
    let core_counts = [1536u32, 3072, 6144, 12288];
    let task_scale = if opts.quick { 8 } else { 1 };

    let jobs: Vec<(TopologyKind, u32)> = TopologyKind::ALL
        .into_iter()
        .flat_map(|t| core_counts.iter().map(move |&c| (t, c)))
        .collect();
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, cores)| {
        let mut cfg = DftConfig::siosi3(cores, topology);
        cfg.total_tasks /= task_scale;
        nwchem_dft::run(&cfg)
    });

    let mut panel = Panel::new(
        "Figure 9(a): NWChem DFT SiOSi3",
        "cores",
        "total execution time (sec)",
    );
    for kind in TopologyKind::ALL {
        let points = jobs
            .iter()
            .zip(&outcomes)
            .filter(|((t, _), _)| *t == kind)
            .map(|(&(_, c), o)| (f64::from(c), o.exec_seconds))
            .collect();
        panel.series.push(Series::new(kind.name(), points));
    }
    out.push_str(&panel.render());

    let mut table = Table::new(&["cores", "topology", "exec (s)", "vs FCG", "stream-misses"]);
    for &cores in &core_counts {
        let fcg = jobs
            .iter()
            .zip(&outcomes)
            .find(|((t, c), _)| *t == TopologyKind::Fcg && *c == cores)
            .map(|(_, o)| o.exec_seconds)
            .unwrap_or_else(|| unreachable!("the job list enumerates an FCG run at every scale"));
        for ((topology, c), o) in jobs.iter().zip(&outcomes) {
            if *c != cores {
                continue;
            }
            table.row(&[
                cores.to_string(),
                topology.name().to_string(),
                format!("{:.1}", o.exec_seconds),
                format!("{:+.1}%", (o.exec_seconds / fcg - 1.0) * 100.0),
                o.stream_misses.to_string(),
            ]);
        }
    }
    out.push_str("\n# DFT per-configuration comparison:\n");
    out.push_str(&table.render());
    out.push('\n');
}

fn ccsd_panel(opts: &vt_bench::HarnessOpts, out: &mut String) {
    let core_counts = [2004u32, 4008, 9996, 14004, 20004];
    let work_scale = if opts.quick { 8.0 } else { 1.0 };

    let topologies = [TopologyKind::Fcg, TopologyKind::Mfcg];
    let jobs: Vec<(TopologyKind, u32)> = topologies
        .into_iter()
        .flat_map(|t| core_counts.iter().map(move |&c| (t, c)))
        .collect();
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, cores)| {
        let mut cfg = CcsdConfig::water(cores, topology);
        cfg.serial_seconds /= work_scale;
        cfg.fixed_seconds_per_proc /= work_scale;
        nwchem_ccsd::run(&cfg)
    });

    let mut panel = Panel::new(
        "Figure 9(b): NWChem CCSD(T) (H2O)11 Water Model",
        "cores",
        "total execution time (sec)",
    );
    for kind in topologies {
        let points = jobs
            .iter()
            .zip(&outcomes)
            .filter(|((t, _), _)| *t == kind)
            .map(|(&(_, c), o)| (f64::from(c), o.exec_seconds))
            .collect();
        panel.series.push(Series::new(kind.name(), points));
    }
    out.push_str(&panel.render());

    let mut table = Table::new(&[
        "cores",
        "topology",
        "exec (s)",
        "paging factor",
        "node mem (GiB)",
    ]);
    for ((topology, cores), o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            cores.to_string(),
            topology.name().to_string(),
            format!("{:.1}", o.exec_seconds),
            format!("{:.2}", o.paging_factor),
            format!("{:.2}", o.node_mem_used as f64 / (1u64 << 30) as f64),
        ]);
    }
    out.push_str("\n# CCSD per-configuration comparison:\n");
    out.push_str(&table.render());
}
