//! Ablation — NIC message-stream contexts and the BEER cliff.
//!
//! The paper attributes FCG's contention collapse to the exhaustion of the
//! SeaStar's bounded message-stream state, after which Cray BEER throttles
//! traffic (§II). This study sweeps the number of fast stream contexts
//! under the 20 % fetch-&-add hot spot and locates the cliff: FCG recovers
//! once contexts exceed the number of concurrently sending *nodes*
//! (~200 at 1 024 processes / 4 ppn / 20 %), while MFCG — whose whole point
//! is bounding distinct sources per node to O(√N) — is insensitive to the
//! sweep.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Panel, Series};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 32 } else { 8 };
    let contexts = [32usize, 64, 96, 128, 192, 256, 512];
    let topologies = [TopologyKind::Fcg, TopologyKind::Mfcg];

    let jobs: Vec<(TopologyKind, usize)> = topologies
        .into_iter()
        .flat_map(|t| contexts.iter().map(move |&c| (t, c)))
        .collect();
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, ctxs)| {
        let cfg = ContentionConfig {
            measure_stride: stride,
            stream_contexts: Some(ctxs),
            ..ContentionConfig::paper(topology, OpSpec::fetch_add(), Scenario::pct20())
        };
        run(&cfg)
    });

    let mut panel = Panel::new(
        "Ablation: NIC fast stream contexts under 20% contention (fetch-&-add)",
        "stream contexts",
        "mean time (usec)",
    );
    for topology in topologies {
        let points = jobs
            .iter()
            .zip(&outcomes)
            .filter(|((t, _), _)| *t == topology)
            .map(|(&(_, c), o)| (c as f64, o.mean_us()))
            .collect();
        panel.series.push(Series::new(topology.name(), points));
    }
    let mut out = panel.render();

    out.push_str("\n# Stream misses per configuration:\n");
    for ((topology, ctxs), o) in jobs.iter().zip(&outcomes) {
        out.push_str(&format!(
            "#   {:5} contexts={:<4}  mean {:>10.1} us  misses {:>9}\n",
            topology.name(),
            ctxs,
            o.mean_us(),
            o.stream_misses
        ));
    }
    emit(&opts, "ablation_streams", &out);
}
