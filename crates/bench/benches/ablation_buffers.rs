//! Ablation — request-buffer provisioning (`M`, the credits per sender).
//!
//! The paper fixes M = 4 (and reports memory as `N × B × M`). This study
//! varies M under the 20 % fetch-&-add hot spot: more credits deepen the
//! in-flight queue at the hot node (worse latency for everyone) but help
//! pipelining of the no-contention case; fewer credits throttle senders.
//! It quantifies the memory/latency trade-off the paper's design implies:
//! with virtual topologies the *same* M costs `O(√N)` instead of `O(N)`
//! memory.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Panel, Series, Table};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 32 } else { 8 };
    let credits = [1u32, 2, 4, 8];
    let scenarios = [Scenario::NoContention, Scenario::pct20()];
    let topologies = [TopologyKind::Fcg, TopologyKind::Mfcg];

    let mut jobs: Vec<(TopologyKind, Scenario, u32)> = Vec::new();
    for t in topologies {
        for s in scenarios {
            for &m in &credits {
                jobs.push((t, s, m));
            }
        }
    }
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, scenario, m)| {
        let cfg = ContentionConfig {
            measure_stride: stride,
            buffers_per_proc: Some(m),
            pipelined_contenders: true,
            ..ContentionConfig::paper(topology, OpSpec::fetch_add(), scenario)
        };
        run(&cfg)
    });

    let mut out = String::new();
    for scenario in scenarios {
        let mut panel = Panel::new(
            format!(
                "Ablation: buffers per sender (M) under {} (fetch-&-add)",
                scenario.label()
            ),
            "M (credits per sender)",
            "mean time (usec)",
        );
        for topology in topologies {
            let points = jobs
                .iter()
                .zip(&outcomes)
                .filter(|((t, s, _), _)| *t == topology && *s == scenario)
                .map(|(&(_, _, m), o)| (f64::from(m), o.mean_us()))
                .collect();
            panel.series.push(Series::new(topology.name(), points));
        }
        out.push_str(&panel.render());
        out.push('\n');
    }

    let mut table = Table::new(&["topology", "scenario", "M", "mean us", "median us"]);
    for ((topology, scenario, m), o) in jobs.iter().zip(&outcomes) {
        table.row(&[
            topology.name().to_string(),
            scenario.label(),
            m.to_string(),
            format!("{:.1}", o.mean_us()),
            format!("{:.1}", o.median_us()),
        ]);
    }
    out.push_str("# All points:\n");
    out.push_str(&table.render());
    emit(&opts, "ablation_buffers", &out);
}
