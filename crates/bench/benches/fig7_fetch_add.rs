//! Figure 7 — atomic fetch-&-add operations under varying contention.
//!
//! Identical protocol to Figure 6 with the paper's other representative
//! CHT-path operation: `ARMCI_Rmw` fetch-&-add against rank 0. Expected
//! shapes match Fig. 6 with smaller absolute times (tiny payloads): FCG
//! collapses by orders of magnitude under contention while MFCG/CFCG stay
//! resilient; under no contention the extra forwarding steps rank the
//! topologies FCG < MFCG < CFCG < Hypercube.

#![warn(clippy::unwrap_used, clippy::expect_used)]

use vt_apps::contention::{run, ContentionConfig, OpSpec, Scenario};
use vt_apps::{run_parallel, Panel};
use vt_bench::{emit, parse_opts};
use vt_core::TopologyKind;

fn main() {
    let opts = parse_opts();
    let stride = if opts.quick { 16 } else { 4 };
    let cfg = |topology, scenario| ContentionConfig {
        measure_stride: stride,
        ..ContentionConfig::paper(topology, OpSpec::fetch_add(), scenario)
    };

    let jobs: Vec<(TopologyKind, Scenario)> = vec![
        (TopologyKind::Fcg, Scenario::NoContention),
        (TopologyKind::Fcg, Scenario::pct11()),
        (TopologyKind::Fcg, Scenario::pct20()),
        (TopologyKind::Mfcg, Scenario::NoContention),
        (TopologyKind::Mfcg, Scenario::pct11()),
        (TopologyKind::Mfcg, Scenario::pct20()),
        (TopologyKind::Cfcg, Scenario::NoContention),
        (TopologyKind::Cfcg, Scenario::pct11()),
        (TopologyKind::Cfcg, Scenario::pct20()),
        (TopologyKind::Hypercube, Scenario::NoContention),
    ];
    let outcomes = run_parallel(jobs.clone(), opts.threads, |&(topology, scenario)| {
        run(&cfg(topology, scenario))
    });
    let get = |topology, scenario| {
        let idx = jobs
            .iter()
            .position(|&j| j == (topology, scenario))
            .unwrap_or_else(|| unreachable!("get() is only called with enumerated jobs"));
        &outcomes[idx]
    };

    let mut out = String::new();
    let panels = [
        (
            "7(a)",
            "FCG & MFCG with No Contention",
            vec![
                (TopologyKind::Fcg, Scenario::NoContention),
                (TopologyKind::Mfcg, Scenario::NoContention),
            ],
        ),
        (
            "7(b)",
            "FCG & MFCG with 11% Contention",
            vec![
                (TopologyKind::Fcg, Scenario::pct11()),
                (TopologyKind::Mfcg, Scenario::pct11()),
            ],
        ),
        (
            "7(c)",
            "FCG & MFCG with 20% Contention",
            vec![
                (TopologyKind::Fcg, Scenario::pct20()),
                (TopologyKind::Mfcg, Scenario::pct20()),
            ],
        ),
        (
            "7(d)",
            "CFCG & Hypercube with No Contention",
            vec![
                (TopologyKind::Cfcg, Scenario::NoContention),
                (TopologyKind::Hypercube, Scenario::NoContention),
            ],
        ),
        (
            "7(e)",
            "CFCG with 11% Contention",
            vec![(TopologyKind::Cfcg, Scenario::pct11())],
        ),
        (
            "7(f)",
            "CFCG with 20% Contention",
            vec![(TopologyKind::Cfcg, Scenario::pct20())],
        ),
    ];
    for (id, title, curves) in panels {
        let mut panel = Panel::new(
            format!("Figure {id}: {title} (fetch-&-add, 1024 procs)"),
            "process rank",
            "time (usec)",
        );
        for (topology, scenario) in curves {
            panel
                .series
                .push(get(topology, scenario).series(topology.name()));
        }
        out.push_str(&panel.render());
        out.push('\n');
    }

    out.push_str("# Shape summary (mean usec per curve):\n");
    for &(topology, scenario) in &jobs {
        let o = get(topology, scenario);
        out.push_str(&format!(
            "#   {:9} {:15}  mean {:>12.1}  median {:>12.1}  stream-misses {:>9}  forwards {:>9}\n",
            topology.name(),
            scenario.label(),
            o.mean_us(),
            o.median_us(),
            o.stream_misses,
            o.forwards,
        ));
    }
    emit(&opts, "fig7_fetch_add", &out);
}
