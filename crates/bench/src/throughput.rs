//! Simulator-core throughput benchmark (`vtsim bench`).
//!
//! Measures raw discrete-event throughput (processed events per second of
//! wall time) on a fixed hot-spot contention workload, per topology and
//! population, and renders the result as the `BENCH_sim.json` trajectory
//! document committed at the repository root. CI's `bench-smoke` job
//! re-measures the quick cells and fails when any falls more than the
//! allowed margin below the committed numbers.
//!
//! The workload is frozen so numbers stay comparable across commits:
//! every rank *not* on rank 0's node issues [`OPS_PER_RANK`] blocking
//! fetch-&-adds to rank 0 (ranks on node 0 idle), at [`PPN`] processes
//! per node, seeded per [`SweepCell::seed`]. Events/sec is
//! `report.events / wall`, with wall the **best** of `repeats` runs —
//! on a shared machine the minimum wall time is the only stable
//! estimator of the code's actual cost (the spread between identical
//! runs routinely exceeds 30%).
//!
//! Cells are measured strictly serially even though the sweep driver
//! could fan them out: concurrent cells would contend for cores and
//! corrupt each other's wall times.

use std::fmt;
use std::time::Instant;
use vt_apps::{grid, SweepCell};
use vt_armci::{Action, Op, Rank, RuntimeConfig, ScriptProgram, Simulation};
use vt_core::TopologyKind;

/// Blocking fetch-&-adds each non-idle rank issues (frozen).
pub const OPS_PER_RANK: u32 = 16;
/// Processes per node (frozen).
pub const PPN: u32 = 4;
/// Default regression margin for [`check_regression`], in percent.
///
/// Deliberately wide: on shared runners the best-of-5 wall time of an
/// unchanged binary lands anywhere between ~65% and ~95% of the committed
/// best-of-8 trajectory, so the smoke gate can only honestly assert the
/// absence of *gross* (≳2×) slowdowns. Tighten with `--max-regression-pct`
/// when measuring on a quiet machine.
pub const DEFAULT_MAX_REGRESSION_PCT: f64 = 50.0;

/// What `vtsim bench` should measure.
#[derive(Clone, Debug)]
pub struct BenchOpts {
    /// Quick mode: the reduced cell set CI smokes on.
    pub quick: bool,
    /// Wall-time repeats per cell (best run is reported).
    pub repeats: u32,
    /// Populations (process counts) to measure.
    pub sizes: Vec<u32>,
    /// Topologies to measure.
    pub topologies: Vec<TopologyKind>,
    /// Also measure the open-system serving cell (the frozen flash-crowd
    /// scenario at 1024 ranks).
    pub serve: bool,
}

impl BenchOpts {
    /// The full trajectory measurement: N ∈ {1k, 4k, 16k} per topology.
    pub fn full() -> Self {
        BenchOpts {
            quick: false,
            repeats: 8,
            sizes: vec![1024, 4096, 16384],
            topologies: TOPOLOGIES.to_vec(),
            serve: true,
        }
    }

    /// The CI smoke subset: N = 1024 per topology, fewer repeats.
    pub fn quick() -> Self {
        BenchOpts {
            quick: true,
            repeats: 5,
            sizes: vec![1024],
            topologies: TOPOLOGIES.to_vec(),
            serve: true,
        }
    }
}

/// The four paper topologies in trajectory order.
pub const TOPOLOGIES: [TopologyKind; 4] = [
    TopologyKind::Fcg,
    TopologyKind::Mfcg,
    TopologyKind::Cfcg,
    TopologyKind::Hypercube,
];

/// One measured cell of the trajectory.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCell {
    /// Workload tag: `"closed"` for the frozen hot-spot fetch-add cells,
    /// `"serve"` for the open-system flash-crowd cell. Part of the cell's
    /// identity in the regression gate, so the serving cell can share a
    /// (topology, population) pair with a closed cell without colliding.
    pub workload: &'static str,
    /// Topology under test.
    pub topology: TopologyKind,
    /// Simulated processes.
    pub n_procs: u32,
    /// Events the run processed (identical across repeats — the
    /// simulation is deterministic).
    pub events: u64,
    /// Best wall time over the repeats, in seconds.
    pub best_wall_s: f64,
}

impl BenchCell {
    /// The headline metric: processed events per second of wall time.
    pub fn events_per_sec(&self) -> f64 {
        if self.best_wall_s > 0.0 {
            self.events as f64 / self.best_wall_s
        } else {
            0.0
        }
    }
}

/// A full measurement: options echo plus the measured cells.
#[derive(Clone, Debug)]
pub struct BenchReport {
    /// Whether this was the quick subset.
    pub quick: bool,
    /// Repeats each cell's best wall time was taken over.
    pub repeats: u32,
    /// Measured cells, in grid order.
    pub cells: Vec<BenchCell>,
}

/// Error from the bench harness.
#[derive(Debug)]
pub enum BenchError {
    /// A simulation ended abnormally.
    Run(String),
    /// The baseline file could not be read or parsed.
    Baseline(String),
    /// The regression gate tripped; the message lists the failing cells.
    Regression(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Run(m) => write!(f, "bench run failed: {m}"),
            BenchError::Baseline(m) => write!(f, "bad baseline: {m}"),
            BenchError::Regression(m) => write!(f, "throughput regression: {m}"),
        }
    }
}

impl std::error::Error for BenchError {}

/// One timed run of the frozen hot-spot workload; returns (events, wall).
///
/// # Errors
/// Returns [`BenchError::Run`] when the simulation ends abnormally.
pub fn hot_spot_once(topology: TopologyKind, n_procs: u32) -> Result<(u64, f64), BenchError> {
    let cell = SweepCell {
        topology,
        n_procs,
        coalesce: false,
        faults: false,
    };
    let mut cfg = RuntimeConfig::new(n_procs, topology);
    cfg.seed = cell.seed();
    cfg.procs_per_node = PPN;
    let ppn = cfg.procs_per_node;
    let sim = Simulation::build(cfg, |rank| {
        if rank.0 < ppn {
            ScriptProgram::new(vec![])
        } else {
            ScriptProgram::new(vec![
                Action::Op(Op::fetch_add(Rank(0), 1));
                OPS_PER_RANK as usize
            ])
        }
    });
    let t0 = Instant::now();
    let report = sim
        .run()
        .map_err(|e| BenchError::Run(format!("{}/{n_procs}: {e}", topology.name())))?;
    Ok((report.events, t0.elapsed().as_secs_f64()))
}

/// Measures one cell: best wall time over `repeats` runs.
///
/// # Errors
/// Returns [`BenchError::Run`] when any repeat ends abnormally.
pub fn measure_cell(
    topology: TopologyKind,
    n_procs: u32,
    repeats: u32,
) -> Result<BenchCell, BenchError> {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..repeats.max(1) {
        let (ev, wall) = hot_spot_once(topology, n_procs)?;
        events = ev;
        best = best.min(wall);
    }
    Ok(BenchCell {
        workload: "closed",
        topology,
        n_procs,
        events,
        best_wall_s: best,
    })
}

/// One timed run of the frozen open-system serving workload — the
/// flash-crowd preset (1024 ranks over MFCG, a 10× offered-load spike past
/// the hot CHT's saturation point); returns (events, wall). Times the
/// serving machinery itself: arrival generation, admission shedding,
/// jittered retransmission and the metastability guard.
///
/// # Errors
/// Returns [`BenchError::Run`] when the simulation ends abnormally.
pub fn serve_flash_once() -> Result<(u64, f64), BenchError> {
    let cfg = vt_apps::ServeScenarioConfig::flash_crowd().runtime_config();
    let sim = Simulation::build(cfg, |_| ScriptProgram::new(vec![]));
    let t0 = Instant::now();
    let report = sim
        .run()
        .map_err(|e| BenchError::Run(format!("serve flash-crowd: {e}")))?;
    Ok((report.events, t0.elapsed().as_secs_f64()))
}

/// Measures the serving cell: best wall time over `repeats` runs.
///
/// # Errors
/// Returns [`BenchError::Run`] when any repeat ends abnormally.
pub fn measure_serve_cell(repeats: u32) -> Result<BenchCell, BenchError> {
    let scenario = vt_apps::ServeScenarioConfig::flash_crowd();
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..repeats.max(1) {
        let (ev, wall) = serve_flash_once()?;
        events = ev;
        best = best.min(wall);
    }
    Ok(BenchCell {
        workload: "serve",
        topology: scenario.topology,
        n_procs: scenario.n_procs(),
        events,
        best_wall_s: best,
    })
}

/// Runs the whole measurement. Cells come from the sweep grid (topology ×
/// size, protocol toggles off) and run serially in grid order; the serving
/// cell, when enabled, runs last.
///
/// # Errors
/// Returns [`BenchError::Run`] when any cell's simulation ends abnormally.
pub fn run(opts: &BenchOpts) -> Result<BenchReport, BenchError> {
    let cells = grid(&opts.topologies, &opts.sizes, PPN, &[false], &[false]);
    let mut measured = Vec::with_capacity(cells.len() + 1);
    for c in &cells {
        measured.push(measure_cell(c.topology, c.n_procs, opts.repeats)?);
    }
    if opts.serve {
        measured.push(measure_serve_cell(opts.repeats)?);
    }
    Ok(BenchReport {
        quick: opts.quick,
        repeats: opts.repeats,
        cells: measured,
    })
}

/// Renders one cell as a JSON object (one line, stable key order).
fn cell_json(c: &BenchCell) -> String {
    format!(
        "{{\"workload\":\"{}\",\"topology\":\"{}\",\"n_procs\":{},\"events\":{},\
         \"best_wall_s\":{:.6},\"events_per_sec\":{:.0}}}",
        c.workload,
        c.topology.name(),
        c.n_procs,
        c.events,
        c.best_wall_s,
        c.events_per_sec(),
    )
}

impl BenchReport {
    /// Renders the trajectory document (without a `baseline` block — the
    /// committed `BENCH_sim.json` appends the pre-overhaul measurement
    /// under that key).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self.cells.iter().map(cell_json).collect();
        format!(
            "{{\n  \"schema\": 1,\n  \"workload\": \"closed cells: hot-spot fetch-add, every \
             rank off node 0 issues {} blocking fetch-adds to rank 0; ppn={}; \
             seed=0xBE7C^n_procs. serve cells: the frozen open-system flash-crowd scenario\",\n  \
             \"protocol\": \"events/sec = report.events / best wall time of {} serial repeats \
             of Simulation::run\",\n  \"quick\": {},\n  \"cells\": [\n    {}\n  ]\n}}\n",
            OPS_PER_RANK,
            PPN,
            self.repeats,
            self.quick,
            cells.join(",\n    "),
        )
    }

    /// Renders a human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "simulator throughput (best of {} runs)\n\
             {:<8} {:<10} {:>8} {:>12} {:>12} {:>14}\n",
            self.repeats, "workload", "topology", "procs", "events", "wall (s)", "events/sec"
        );
        for c in &self.cells {
            out.push_str(&format!(
                "{:<8} {:<10} {:>8} {:>12} {:>12.4} {:>14.0}\n",
                c.workload,
                c.topology.name(),
                c.n_procs,
                c.events,
                c.best_wall_s,
                c.events_per_sec(),
            ));
        }
        out
    }
}

/// Extracts the top-level `"cells"` array of a trajectory document as
/// `(workload, topology, n_procs, events_per_sec)` tuples. A hand-rolled
/// scanner — the build is offline and the document shape is ours — that
/// tolerates the extra keys (`baseline`, `history`) the committed file
/// carries. Cells predating the workload tag parse as `"closed"`.
///
/// # Errors
/// Returns [`BenchError::Baseline`] when the document has no well-formed
/// top-level `"cells"` array.
pub fn parse_cells(doc: &str) -> Result<Vec<(String, String, u32, f64)>, BenchError> {
    let start = doc
        .find("\"cells\":")
        .ok_or_else(|| BenchError::Baseline("no \"cells\" key".into()))?;
    let rest = &doc[start..];
    let open = rest
        .find('[')
        .ok_or_else(|| BenchError::Baseline("\"cells\" is not an array".into()))?;
    let body = &rest[open + 1..];
    // Walk to the matching close bracket (cell objects contain no nested
    // arrays, so a depth counter over {} and [] suffices; the document
    // carries no strings containing brackets).
    let mut depth = 0i32;
    let mut end = None;
    for (i, ch) in body.char_indices() {
        match ch {
            '{' | '[' => depth += 1,
            '}' => depth -= 1,
            ']' => {
                if depth == 0 {
                    end = Some(i);
                    break;
                }
                depth -= 1;
            }
            _ => {}
        }
    }
    let body =
        &body[..end.ok_or_else(|| BenchError::Baseline("unterminated cells array".into()))?];
    let mut cells = Vec::new();
    for obj in body.split('{').skip(1) {
        let workload = json_str(obj, "workload").unwrap_or_else(|_| "closed".to_string());
        let topology = json_str(obj, "topology")?;
        let n_procs = json_num(obj, "n_procs")? as u32;
        let eps = json_num(obj, "events_per_sec")?;
        cells.push((workload, topology, n_procs, eps));
    }
    Ok(cells)
}

fn json_str(obj: &str, key: &str) -> Result<String, BenchError> {
    let pat = format!("\"{key}\":\"");
    let at = obj
        .find(&pat)
        .ok_or_else(|| BenchError::Baseline(format!("cell missing {key}")))?;
    let rest = &obj[at + pat.len()..];
    let end = rest
        .find('"')
        .ok_or_else(|| BenchError::Baseline(format!("unterminated {key}")))?;
    Ok(rest[..end].to_string())
}

fn json_num(obj: &str, key: &str) -> Result<f64, BenchError> {
    let pat = format!("\"{key}\":");
    let at = obj
        .find(&pat)
        .ok_or_else(|| BenchError::Baseline(format!("cell missing {key}")))?;
    let rest = &obj[at + pat.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end]
        .parse()
        .map_err(|_| BenchError::Baseline(format!("bad number for {key}")))
}

/// Compares a fresh measurement against the committed trajectory: every
/// fresh cell with a matching `(workload, topology, n_procs)` baseline
/// cell must reach at least `100 - max_regression_pct` percent of the
/// committed events/sec. Cells without a baseline counterpart pass (a new
/// size or workload extends the trajectory; it cannot regress it).
///
/// Returns the rendered comparison table.
///
/// # Errors
/// Returns [`BenchError::Baseline`] when the baseline document is
/// malformed, [`BenchError::Regression`] when any cell trips the gate.
pub fn check_regression(
    fresh: &BenchReport,
    baseline_doc: &str,
    max_regression_pct: f64,
) -> Result<String, BenchError> {
    let baseline = parse_cells(baseline_doc)?;
    let mut table = format!(
        "{:<8} {:<10} {:>8} {:>14} {:>14} {:>8}\n",
        "workload", "topology", "procs", "baseline eps", "now eps", "ratio"
    );
    let mut failures = Vec::new();
    for c in &fresh.cells {
        let Some(&(_, _, _, base_eps)) = baseline
            .iter()
            .find(|(w, t, n, _)| *w == c.workload && *t == c.topology.name() && *n == c.n_procs)
        else {
            continue;
        };
        let now = c.events_per_sec();
        let ratio = if base_eps > 0.0 { now / base_eps } else { 1.0 };
        table.push_str(&format!(
            "{:<8} {:<10} {:>8} {:>14.0} {:>14.0} {:>8.2}\n",
            c.workload,
            c.topology.name(),
            c.n_procs,
            base_eps,
            now,
            ratio,
        ));
        if ratio < 1.0 - max_regression_pct / 100.0 {
            failures.push(format!(
                "{}/{}/{}: {:.0} events/sec vs committed {:.0} ({:.0}% of baseline)",
                c.workload,
                c.topology.name(),
                c.n_procs,
                now,
                base_eps,
                ratio * 100.0,
            ));
        }
    }
    if failures.is_empty() {
        Ok(table)
    } else {
        Err(BenchError::Regression(format!(
            "{} cell(s) below {:.0}% of the committed baseline:\n{}\n{table}",
            failures.len(),
            100.0 - max_regression_pct,
            failures.join("\n"),
        )))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn report(cells: Vec<BenchCell>) -> BenchReport {
        BenchReport {
            quick: true,
            repeats: 1,
            cells,
        }
    }

    fn cell(topology: TopologyKind, n_procs: u32, eps: f64) -> BenchCell {
        BenchCell {
            workload: "closed",
            topology,
            n_procs,
            events: eps as u64, // 1 second wall → events == eps
            best_wall_s: 1.0,
        }
    }

    #[test]
    fn json_roundtrips_through_parse_cells() {
        let mut serve = cell(TopologyKind::Hypercube, 4096, 7_500_000.0);
        serve.workload = "serve";
        let r = report(vec![cell(TopologyKind::Fcg, 1024, 5_000_000.0), serve]);
        let parsed = parse_cells(&r.to_json()).unwrap();
        assert_eq!(
            parsed,
            vec![
                ("closed".to_string(), "fcg".to_string(), 1024, 5_000_000.0),
                (
                    "serve".to_string(),
                    "hypercube".to_string(),
                    4096,
                    7_500_000.0
                ),
            ]
        );
    }

    #[test]
    fn cells_without_workload_tag_parse_as_closed() {
        // The pre-serving committed trajectory carries no workload key.
        let doc = r#"{"cells": [
    {"topology":"fcg","n_procs":1024,"events":10,"best_wall_s":1.0,"events_per_sec":10}
  ]}"#;
        let parsed = parse_cells(doc).unwrap();
        assert_eq!(
            parsed,
            vec![("closed".to_string(), "fcg".to_string(), 1024, 10.0)]
        );
    }

    #[test]
    fn serve_cell_shares_population_with_closed_cell_without_colliding() {
        // Fresh serve cell at (mfcg, 1024) — same pair as a committed
        // closed cell with much higher events/sec. Matching by workload
        // means no baseline counterpart → no false regression.
        let mut fresh_serve = cell(TopologyKind::Mfcg, 1024, 100.0);
        fresh_serve.workload = "serve";
        let fresh = report(vec![fresh_serve]);
        let committed = report(vec![cell(TopologyKind::Mfcg, 1024, 10_000_000.0)]).to_json();
        assert!(check_regression(&fresh, &committed, 20.0).is_ok());
    }

    #[test]
    fn parse_ignores_baseline_block() {
        // The committed file carries a trailing baseline block whose cells
        // must NOT be confused with the top-level ones.
        let doc = r#"{
  "schema": 1,
  "cells": [
    {"topology":"fcg","n_procs":1024,"events":10,"best_wall_s":1.0,"events_per_sec":10}
  ],
  "baseline": {
    "label": "old core",
    "cells": [
      {"topology":"fcg","n_procs":1024,"events":4,"best_wall_s":1.0,"events_per_sec":4}
    ]
  }
}"#;
        let parsed = parse_cells(doc).unwrap();
        assert_eq!(
            parsed,
            vec![("closed".to_string(), "fcg".to_string(), 1024, 10.0)]
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse_cells("{}").is_err());
        assert!(parse_cells("{\"cells\": 3}").is_err());
        assert!(parse_cells("{\"cells\": [ {\"topology\":\"fcg\"} ]}").is_err());
    }

    #[test]
    fn regression_gate_passes_within_margin() {
        let fresh = report(vec![cell(TopologyKind::Fcg, 1024, 8_500_000.0)]);
        let committed = report(vec![cell(TopologyKind::Fcg, 1024, 10_000_000.0)]).to_json();
        // 85% of baseline: within the 20% margin.
        let table = check_regression(&fresh, &committed, 20.0).unwrap();
        assert!(table.contains("fcg"), "{table}");
    }

    #[test]
    fn regression_gate_trips_below_margin() {
        let fresh = report(vec![cell(TopologyKind::Fcg, 1024, 7_000_000.0)]);
        let committed = report(vec![cell(TopologyKind::Fcg, 1024, 10_000_000.0)]).to_json();
        let err = check_regression(&fresh, &committed, 20.0).unwrap_err();
        assert!(matches!(err, BenchError::Regression(_)), "{err}");
        assert!(err.to_string().contains("fcg/1024"), "{err}");
    }

    #[test]
    fn cells_without_baseline_counterpart_pass() {
        let fresh = report(vec![cell(TopologyKind::Fcg, 16384, 1.0)]);
        let committed = report(vec![cell(TopologyKind::Fcg, 1024, 10_000_000.0)]).to_json();
        assert!(check_regression(&fresh, &committed, 20.0).is_ok());
    }

    #[test]
    fn tiny_hot_spot_measures() {
        // 64 procs: fast enough for a unit test, exercises the whole
        // measurement path end to end.
        let c = measure_cell(TopologyKind::Mfcg, 64, 1).unwrap();
        assert!(c.events > 0);
        assert!(c.best_wall_s > 0.0);
        assert!(c.events_per_sec() > 0.0);
    }

    #[test]
    fn serve_cell_measures_the_flash_crowd() {
        let c = measure_serve_cell(1).unwrap();
        assert_eq!(c.workload, "serve");
        assert_eq!(c.topology, TopologyKind::Mfcg);
        assert_eq!(c.n_procs, 1024);
        assert!(c.events > 0);
        assert!(c.events_per_sec() > 0.0);
    }

    #[test]
    fn quick_opts_are_a_subset_of_full() {
        let q = BenchOpts::quick();
        let f = BenchOpts::full();
        assert!(q.quick && !f.quick);
        for s in &q.sizes {
            assert!(f.sizes.contains(s), "quick size {s} missing from full");
        }
        assert_eq!(q.topologies, f.topologies);
    }
}
