//! # vt-bench — harness utilities for the figure benchmarks
//!
//! Each `benches/figN_*.rs` target regenerates one figure of the paper's
//! evaluation as gnuplot-ready text. They run under `cargo bench` with
//! `harness = false`; this module provides argument handling and output
//! plumbing shared by all of them.
//!
//! Flags (pass after `--`, e.g. `cargo bench --bench fig5_memory -- --full`):
//!
//! * `--quick` — reduced resolution / iteration counts (the default, so a
//!   plain `cargo bench --workspace` finishes in minutes);
//! * `--full`  — the paper's full parameters;
//! * `--threads N` — worker threads for the parallel sweep (default: all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
use std::fs;
use std::path::PathBuf;

pub mod throughput;

/// Options common to all figure harnesses.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Reduced-cost mode (default true).
    pub quick: bool,
    /// Worker threads for independent simulations (0 = all CPUs).
    pub threads: usize,
    /// Directory where rendered figures are also written as text files.
    pub out_dir: PathBuf,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            quick: true,
            threads: 0,
            out_dir: PathBuf::from("target/figures"),
        }
    }
}

/// Parses harness options from the process arguments, ignoring anything the
/// cargo bench driver passes that we don't know (e.g. `--bench`). Exits
/// with a diagnostic on a malformed flag — the callers are bench binaries,
/// where a usage error should not render as a panic backtrace.
pub fn parse_opts() -> HarnessOpts {
    match try_parse_opts(std::env::args().skip(1)) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Parses harness options from an explicit argument stream, surfacing
/// malformed flags as an error message instead of exiting.
///
/// # Errors
/// Returns a description of the offending flag when a value-taking flag
/// is missing its value or the value does not parse.
pub fn try_parse_opts<I>(args: I) -> Result<HarnessOpts, String>
where
    I: IntoIterator<Item = String>,
{
    let mut opts = HarnessOpts::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--threads needs a number")?;
            }
            "--out-dir" => {
                opts.out_dir = PathBuf::from(args.next().ok_or("--out-dir needs a path")?);
            }
            _ => {} // tolerate cargo-bench driver flags
        }
    }
    Ok(opts)
}

/// Prints a rendered figure to stdout and saves it under the output
/// directory as `<name>.txt`.
pub fn emit(opts: &HarnessOpts, name: &str, content: &str) {
    println!("{content}");
    if let Err(e) = fs::create_dir_all(&opts.out_dir) {
        eprintln!("warning: cannot create {}: {e}", opts.out_dir.display());
        return;
    }
    let path = opts.out_dir.join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("[saved {}]", path.display());
    }
}

/// Formats a mebibyte value with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn try_parse_reads_flags() {
        let o = try_parse_opts(argv(&["--full", "--threads", "3", "--out-dir", "x"])).unwrap();
        assert!(!o.quick);
        assert_eq!(o.threads, 3);
        assert_eq!(o.out_dir, PathBuf::from("x"));
    }

    #[test]
    fn try_parse_rejects_missing_values() {
        assert!(try_parse_opts(argv(&["--threads"])).is_err());
        assert!(try_parse_opts(argv(&["--threads", "zebra"])).is_err());
        assert!(try_parse_opts(argv(&["--out-dir"])).is_err());
    }

    #[test]
    fn defaults_are_quick() {
        let o = HarnessOpts::default();
        assert!(o.quick);
        assert_eq!(o.threads, 0);
    }

    #[test]
    fn mib_formats() {
        assert_eq!(mib(1024 * 1024), "1.0");
        assert_eq!(mib(1536 * 1024), "1.5");
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join(format!("vtbench-test-{}", std::process::id()));
        let opts = HarnessOpts {
            out_dir: dir.clone(),
            ..Default::default()
        };
        emit(&opts, "probe", "hello");
        let read = std::fs::read_to_string(dir.join("probe.txt")).unwrap();
        assert_eq!(read, "hello");
        let _ = std::fs::remove_dir_all(dir);
    }
}
