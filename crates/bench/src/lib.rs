//! # vt-bench — harness utilities for the figure benchmarks
//!
//! Each `benches/figN_*.rs` target regenerates one figure of the paper's
//! evaluation as gnuplot-ready text. They run under `cargo bench` with
//! `harness = false`; this module provides argument handling and output
//! plumbing shared by all of them.
//!
//! Flags (pass after `--`, e.g. `cargo bench --bench fig5_memory -- --full`):
//!
//! * `--quick` — reduced resolution / iteration counts (the default, so a
//!   plain `cargo bench --workspace` finishes in minutes);
//! * `--full`  — the paper's full parameters;
//! * `--threads N` — worker threads for the parallel sweep (default: all).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
use std::fs;
use std::path::PathBuf;

/// Options common to all figure harnesses.
#[derive(Clone, Debug)]
pub struct HarnessOpts {
    /// Reduced-cost mode (default true).
    pub quick: bool,
    /// Worker threads for independent simulations (0 = all CPUs).
    pub threads: usize,
    /// Directory where rendered figures are also written as text files.
    pub out_dir: PathBuf,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        HarnessOpts {
            quick: true,
            threads: 0,
            out_dir: PathBuf::from("target/figures"),
        }
    }
}

/// Parses harness options from the process arguments, ignoring anything the
/// cargo bench driver passes that we don't know (e.g. `--bench`).
pub fn parse_opts() -> HarnessOpts {
    let mut opts = HarnessOpts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => opts.quick = true,
            "--full" => opts.quick = false,
            "--threads" => {
                opts.threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads needs a number");
            }
            "--out-dir" => {
                opts.out_dir = PathBuf::from(args.next().expect("--out-dir needs a path"));
            }
            _ => {} // tolerate cargo-bench driver flags
        }
    }
    opts
}

/// Prints a rendered figure to stdout and saves it under the output
/// directory as `<name>.txt`.
pub fn emit(opts: &HarnessOpts, name: &str, content: &str) {
    println!("{content}");
    if let Err(e) = fs::create_dir_all(&opts.out_dir) {
        eprintln!("warning: cannot create {}: {e}", opts.out_dir.display());
        return;
    }
    let path = opts.out_dir.join(format!("{name}.txt"));
    if let Err(e) = fs::write(&path, content) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    } else {
        eprintln!("[saved {}]", path.display());
    }
}

/// Formats a mebibyte value with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick() {
        let o = HarnessOpts::default();
        assert!(o.quick);
        assert_eq!(o.threads, 0);
    }

    #[test]
    fn mib_formats() {
        assert_eq!(mib(1024 * 1024), "1.0");
        assert_eq!(mib(1536 * 1024), "1.5");
    }

    #[test]
    fn emit_writes_file() {
        let dir = std::env::temp_dir().join(format!("vtbench-test-{}", std::process::id()));
        let opts = HarnessOpts {
            out_dir: dir.clone(),
            ..Default::default()
        };
        emit(&opts, "probe", "hello");
        let read = std::fs::read_to_string(dir.join("probe.txt")).unwrap();
        assert_eq!(read, "hello");
        let _ = std::fs::remove_dir_all(dir);
    }
}
