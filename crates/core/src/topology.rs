//! The [`VirtualTopology`] trait and the paper's four topologies.
//!
//! A virtual topology is a directed graph over *nodes* (one vertex per
//! physical node, covering all its processes and its communication helper
//! thread). An edge `E(i, j)` means node `j` dedicates a set of request
//! buffers to senders on node `i`, so `i` may send one-sided requests to `j`
//! directly; all other pairs must forward through intermediate nodes
//! (paper §II, Fig. 1).
//!
//! All four studied topologies share one structure — a (possibly partially
//! populated) grid in which two nodes are connected exactly when their
//! coordinates differ in a single dimension:
//!
//! | topology    | shape            | out-degree          | max forwards |
//! |-------------|------------------|---------------------|--------------|
//! | [`Fcg`]     | `[n]`            | `n − 1`             | 0            |
//! | [`Mfcg`]    | `[X, Y]`         | `(X−1) + (Y−1)`     | 1            |
//! | [`Cfcg`]    | `[X, Y, Z]`      | `(X−1)+(Y−1)+(Z−1)` | 2            |
//! | [`Hypercube`] | `[2; log₂ n]`  | `log₂ n`            | `log₂ n − 1` |

use crate::coords::Coord;
use crate::ldf;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (vertex) in a virtual topology.
pub type NodeId = u32;

/// Which of the paper's virtual topologies to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Fully connected graph — the ARMCI default resource-allocation graph.
    Fcg,
    /// Meshed fully connected graphs (`X × Y` mesh of row/column FCGs).
    Mfcg,
    /// Cubic fully connected graphs (`X × Y × Z`).
    Cfcg,
    /// Binary hypercube (power-of-two node counts only).
    Hypercube,
    /// Generalised `k`-dimensional FCG grid — an extension beyond the paper
    /// answering its §III-C question about higher dimensions: `KFcg(1)` is
    /// the FCG, `KFcg(2)` the MFCG, `KFcg(3)` the CFCG, and larger `k`
    /// trades ever less buffer memory for ever more forwarding.
    KFcg(u8),
}

impl TopologyKind {
    /// All four kinds, in the order the paper presents them.
    pub const ALL: [TopologyKind; 4] = [
        TopologyKind::Fcg,
        TopologyKind::Mfcg,
        TopologyKind::Cfcg,
        TopologyKind::Hypercube,
    ];

    /// Short lowercase name used in reports and CLI arguments.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Fcg => "fcg",
            TopologyKind::Mfcg => "mfcg",
            TopologyKind::Cfcg => "cfcg",
            TopologyKind::Hypercube => "hypercube",
            TopologyKind::KFcg(_) => "kfcg",
        }
    }

    /// Whether this kind can be built over `n` nodes.
    ///
    /// Only the hypercube is restricted (power-of-two populations, as in the
    /// paper §IV); the others support any `n ≥ 1`.
    pub fn supports(self, n: u32) -> bool {
        match self {
            TopologyKind::Hypercube => n >= 1 && (n == 1 || n.is_power_of_two()),
            TopologyKind::KFcg(k) => n >= 1 && k >= 1 && usize::from(k) <= crate::coords::MAX_DIMS,
            _ => n >= 1,
        }
    }

    /// Builds the topology over `n` nodes.
    ///
    /// # Panics
    /// Panics if `!self.supports(n)`. Use [`TopologyKind::try_build`] for a
    /// fallible version.
    pub fn build(self, n: u32) -> Grid {
        self.try_build(n)
            .unwrap_or_else(|e| panic!("cannot build {} over {n} nodes: {e}", self.name()))
    }

    /// Fallible variant of [`TopologyKind::build`].
    pub fn try_build(self, n: u32) -> Result<Grid, HypercubeError> {
        match self {
            TopologyKind::Fcg => Ok(Fcg::new(n).into_grid()),
            TopologyKind::Mfcg => Ok(Mfcg::new(n).into_grid()),
            TopologyKind::Cfcg => Ok(Cfcg::new(n).into_grid()),
            TopologyKind::Hypercube => Hypercube::new(n).map(Hypercube::into_grid),
            TopologyKind::KFcg(k) => Ok(Grid::kfcg(u32::from(k), n)),
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyKind::KFcg(k) => write!(f, "kfcg{k}"),
            other => f.write_str(other.name()),
        }
    }
}

/// A directed graph of request-buffer allocation over the nodes of a machine.
///
/// Implementations must be deterministic: the same inputs always produce the
/// same neighbours and routes, because the simulator's reproducibility
/// depends on it.
pub trait VirtualTopology: Send + Sync {
    /// Which of the paper's topologies this is.
    fn kind(&self) -> TopologyKind;

    /// Number of populated nodes.
    fn num_nodes(&self) -> u32;

    /// The underlying grid shape (extent per dimension, lowest first).
    fn shape(&self) -> &Shape;

    /// Coordinate of `node` in the grid.
    fn coord_of(&self, node: NodeId) -> Coord {
        self.shape().coord_of(node)
    }

    /// Whether `from` holds request buffers at `to` (a directed edge).
    fn has_edge(&self, from: NodeId, to: NodeId) -> bool;

    /// All nodes `to` with an edge `from → to`, in ascending id order.
    fn out_neighbors(&self, node: NodeId) -> Vec<NodeId>;

    /// Number of outgoing edges at `node`.
    fn out_degree(&self, node: NodeId) -> usize {
        self.out_neighbors(node).len()
    }

    /// Number of incoming edges at `node`.
    ///
    /// All four paper topologies are symmetric, so the default forwards to
    /// [`VirtualTopology::out_degree`].
    fn in_degree(&self, node: NodeId) -> usize {
        self.out_degree(node)
    }

    /// Next node on the (extended) LDF route towards `dest`, or `None` when
    /// already there.
    fn next_hop(&self, current: NodeId, dest: NodeId) -> Option<NodeId>;

    /// Full LDF route: intermediate nodes followed by `dest`. Empty when
    /// `src == dest`.
    fn route(&self, src: NodeId, dest: NodeId) -> Vec<NodeId> {
        let mut hops = Vec::with_capacity(self.shape().ndims());
        let mut cur = src;
        while let Some(next) = self.next_hop(cur, dest) {
            hops.push(next);
            cur = next;
        }
        hops
    }

    /// Upper bound on forwarding steps (hops minus one) over all pairs.
    fn max_forwarding_steps(&self) -> u32 {
        (self.shape().ndims() as u32).saturating_sub(1)
    }
}

/// The shared concrete implementation of all four topologies: a grid whose
/// edges connect nodes differing in exactly one coordinate, populated by
/// nodes `0..n` in lowest-dimension-first order, routed by extended LDF.
#[derive(Clone, Debug)]
pub struct Grid {
    kind: TopologyKind,
    shape: Shape,
    n: u32,
}

impl Grid {
    /// Builds the generalised `k`-dimensional FCG grid over `n` nodes using
    /// the near-balanced [`Shape::balanced_for`] factorisation.
    ///
    /// # Panics
    /// Panics unless `1 <= k <= MAX_DIMS`.
    pub fn kfcg(k: u32, n: u32) -> Self {
        // Out-of-range `k` saturates and trips `balanced_for`'s range assert.
        let k = usize::try_from(k).unwrap_or(usize::MAX);
        Grid::new(TopologyKind::KFcg(k as u8), Shape::balanced_for(n, k), n)
    }

    fn new(kind: TopologyKind, shape: Shape, n: u32) -> Self {
        assert!(n >= 1, "need at least one node");
        assert!(
            u64::from(n) <= shape.capacity(),
            "population {n} exceeds shape {:?}",
            shape.dims()
        );
        // Extended LDF requires only the highest dimension to be partial.
        if shape.ndims() > 1 {
            let slice: u64 = shape.dims()[..shape.ndims() - 1]
                .iter()
                .map(|&d| u64::from(d))
                .product();
            assert!(
                u64::from(n) > slice * u64::from(shape.dim(shape.ndims() - 1) - 1),
                "population {n} leaves a whole top slice of shape {:?} empty",
                shape.dims()
            );
        }
        Grid { kind, shape, n }
    }
}

impl VirtualTopology for Grid {
    fn kind(&self) -> TopologyKind {
        self.kind
    }

    fn num_nodes(&self) -> u32 {
        self.n
    }

    fn shape(&self) -> &Shape {
        &self.shape
    }

    fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        if from == to || from >= self.n || to >= self.n {
            return false;
        }
        let a = self.shape.coord_of(from);
        let b = self.shape.coord_of(to);
        a.differing_dims(&b) == 1
    }

    fn out_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        assert!(node < self.n, "node {node} out of range (n = {})", self.n);
        let c = self.shape.coord_of(node);
        let mut out = Vec::new();
        for dim in 0..self.shape.ndims() {
            for v in 0..self.shape.dim(dim) {
                if v == c.get(dim) {
                    continue;
                }
                let mut d = c;
                d.set(dim, v);
                let id = self.shape.id_of(&d);
                if id < self.n {
                    out.push(id);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn next_hop(&self, current: NodeId, dest: NodeId) -> Option<NodeId> {
        ldf::next_hop(&self.shape, self.n, current, dest)
    }
}

/// Error returned when a hypercube is requested over a non-power-of-two
/// population.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HypercubeError {
    /// The rejected population.
    pub n: u32,
}

impl fmt::Display for HypercubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "hypercube requires a power-of-two node count, got {}",
            self.n
        )
    }
}

impl std::error::Error for HypercubeError {}

macro_rules! delegate_topology {
    ($ty:ty) => {
        impl VirtualTopology for $ty {
            fn kind(&self) -> TopologyKind {
                self.grid.kind()
            }
            fn num_nodes(&self) -> u32 {
                self.grid.num_nodes()
            }
            fn shape(&self) -> &Shape {
                self.grid.shape()
            }
            fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
                self.grid.has_edge(from, to)
            }
            fn out_neighbors(&self, node: NodeId) -> Vec<NodeId> {
                self.grid.out_neighbors(node)
            }
            fn next_hop(&self, current: NodeId, dest: NodeId) -> Option<NodeId> {
                self.grid.next_hop(current, dest)
            }
        }

        impl $ty {
            /// Consumes the wrapper and returns the underlying [`Grid`].
            pub fn into_grid(self) -> Grid {
                self.grid
            }
        }
    };
}

/// The fully connected graph: every node holds buffers at every other node.
///
/// This is ARMCI's default allocation and the paper's baseline; its per-node
/// buffer memory grows linearly in the machine size (Fig. 5) and its
/// request-path tree to any node is flat (Fig. 2).
#[derive(Clone, Debug)]
pub struct Fcg {
    grid: Grid,
}

impl Fcg {
    /// Builds the FCG over `n ≥ 1` nodes.
    pub fn new(n: u32) -> Self {
        Fcg {
            grid: Grid::new(TopologyKind::Fcg, Shape::line_for(n), n),
        }
    }
}

delegate_topology!(Fcg);

/// Meshed fully connected graphs: nodes on an `X × Y` mesh; all nodes sharing
/// a row and all nodes sharing a column form FCGs (paper §III-A, Fig. 3a).
///
/// Out-degree is `(X−1) + (Y−1) = O(√n)` and any request needs at most one
/// forwarding step. The paper's evaluation concludes MFCG is the best
/// balance of memory, forwarding cost and contention attenuation.
#[derive(Clone, Debug)]
pub struct Mfcg {
    grid: Grid,
}

impl Mfcg {
    /// Builds an MFCG over `n ≥ 1` nodes using the near-square
    /// [`Shape::mesh_for`] factorisation.
    pub fn new(n: u32) -> Self {
        Mfcg {
            grid: Grid::new(TopologyKind::Mfcg, Shape::mesh_for(n), n),
        }
    }

    /// Builds an MFCG with an explicit `x × y` shape (the population `n` may
    /// leave the topmost row partial).
    ///
    /// # Panics
    /// Panics if `n` does not fit the shape or leaves a whole row empty.
    pub fn with_shape(x: u32, y: u32, n: u32) -> Self {
        Mfcg {
            grid: Grid::new(TopologyKind::Mfcg, Shape::new(vec![x, y]), n),
        }
    }
}

delegate_topology!(Mfcg);

/// Cubic fully connected graphs: nodes in an `X × Y × Z` cube; nodes sharing
/// two of three coordinates form FCGs (paper §III-B, Fig. 3b).
///
/// Out-degree is `O(∛n)`; requests are forwarded at most twice.
#[derive(Clone, Debug)]
pub struct Cfcg {
    grid: Grid,
}

impl Cfcg {
    /// Builds a CFCG over `n ≥ 1` nodes using the near-cubic
    /// [`Shape::cube_for`] factorisation.
    pub fn new(n: u32) -> Self {
        Cfcg {
            grid: Grid::new(TopologyKind::Cfcg, Shape::cube_for(n), n),
        }
    }

    /// Builds a CFCG with an explicit `x × y × z` shape.
    ///
    /// # Panics
    /// Panics if `n` does not fit the shape or leaves a whole top slice empty.
    pub fn with_shape(x: u32, y: u32, z: u32, n: u32) -> Self {
        Cfcg {
            grid: Grid::new(TopologyKind::Cfcg, Shape::new(vec![x, y, z]), n),
        }
    }
}

delegate_topology!(Cfcg);

/// The binary hypercube: node `i` is connected to every node differing in one
/// bit (paper §III-C, Fig. 3c).
///
/// Included, as in the paper, to probe the extreme of the memory/forwarding
/// trade-off: `log₂ n` buffers but up to `log₂ n − 1` forwarding steps. Only
/// power-of-two populations are supported.
#[derive(Clone, Debug)]
pub struct Hypercube {
    grid: Grid,
}

impl Hypercube {
    /// Builds the hypercube over `n` nodes.
    ///
    /// # Errors
    /// Returns [`HypercubeError`] unless `n` is a power of two (`n = 1` is
    /// allowed as the trivial 0-cube).
    pub fn new(n: u32) -> Result<Self, HypercubeError> {
        if n == 1 {
            return Ok(Hypercube {
                grid: Grid::new(TopologyKind::Hypercube, Shape::line_for(1), 1),
            });
        }
        let shape = Shape::hypercube_for(n).ok_or(HypercubeError { n })?;
        Ok(Hypercube {
            grid: Grid::new(TopologyKind::Hypercube, shape, n),
        })
    }
}

delegate_topology!(Hypercube);

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fcg_is_fully_connected() {
        let t = Fcg::new(6);
        for i in 0..6 {
            assert_eq!(t.out_degree(i), 5);
            for j in 0..6 {
                assert_eq!(t.has_edge(i, j), i != j);
                if i != j {
                    assert_eq!(t.route(i, j), vec![j]);
                }
            }
        }
        assert_eq!(t.max_forwarding_steps(), 0);
    }

    #[test]
    fn mfcg_3x3_matches_paper_figure() {
        // Fig. 3a: 9 nodes on a 3x3 mesh; node 0's row is {1, 2} and its
        // column is {3, 6}.
        let t = Mfcg::new(9);
        assert_eq!(t.shape().dims(), &[3, 3]);
        assert_eq!(t.out_neighbors(0), vec![1, 2, 3, 6]);
        assert_eq!(t.out_degree(4), 4);
        // Node 8 = (2,2) reaches node 0 via (0,2) = 6.
        assert_eq!(t.route(8, 0), vec![6, 0]);
        assert_eq!(t.max_forwarding_steps(), 1);
    }

    #[test]
    fn mfcg_1024_has_62_edges() {
        // §III-A with X = Y = 32: (X-1) + (Y-1) = 62 outgoing edges.
        let t = Mfcg::new(1024);
        for node in [0u32, 1, 31, 512, 1023] {
            assert_eq!(t.out_degree(node), 62);
        }
    }

    #[test]
    fn cfcg_3x3x3_matches_paper_figure() {
        let t = Cfcg::new(27);
        assert_eq!(t.shape().dims(), &[3, 3, 3]);
        assert_eq!(t.out_degree(0), 6);
        // Node 26 = (2,2,2) reaches 0 in three hops: fix X, then Y, then Z.
        assert_eq!(t.route(26, 0), vec![24, 18, 0]);
        assert_eq!(t.max_forwarding_steps(), 2);
    }

    #[test]
    fn hypercube_16_has_log_degree() {
        let t = Hypercube::new(16).unwrap();
        for node in 0..16 {
            assert_eq!(t.out_degree(node), 4);
            let nbrs = t.out_neighbors(node);
            for nbr in nbrs {
                assert_eq!((node ^ nbr).count_ones(), 1);
            }
        }
        assert_eq!(t.max_forwarding_steps(), 3);
    }

    #[test]
    fn hypercube_rejects_non_power_of_two() {
        assert_eq!(Hypercube::new(12).unwrap_err(), HypercubeError { n: 12 });
        assert!(Hypercube::new(1).is_ok());
        assert!(Hypercube::new(2).is_ok());
        assert!(!TopologyKind::Hypercube.supports(100));
        assert!(TopologyKind::Mfcg.supports(100));
    }

    #[test]
    fn partial_mfcg_has_no_edges_to_missing_nodes() {
        // 7 nodes on a 3x3 shape: top row holds only node 6.
        let t = Mfcg::new(7);
        assert_eq!(t.shape().dims(), &[3, 3]);
        for node in 0..7 {
            for nbr in t.out_neighbors(node) {
                assert!(nbr < 7);
                assert!(t.has_edge(node, nbr));
            }
        }
        // Node 6 = (0,2) connects down its column {0, 3} only (its row has
        // no other populated node).
        assert_eq!(t.out_neighbors(6), vec![0, 3]);
    }

    #[test]
    fn edges_are_symmetric() {
        for n in [5u32, 12, 16, 27, 40] {
            for kind in TopologyKind::ALL {
                if !kind.supports(n) {
                    continue;
                }
                let t = kind.build(n);
                for i in 0..n {
                    for j in 0..n {
                        assert_eq!(t.has_edge(i, j), t.has_edge(j, i), "{kind} {i} {j}");
                    }
                }
            }
        }
    }

    #[test]
    fn in_degree_equals_out_degree() {
        for kind in TopologyKind::ALL {
            let t = kind.build(16);
            for node in 0..16 {
                let real_in = (0..16).filter(|&j| t.has_edge(j, node)).count();
                assert_eq!(t.in_degree(node), real_in);
                assert_eq!(t.out_degree(node), real_in);
            }
        }
    }

    #[test]
    fn routes_stay_on_edges_for_all_kinds() {
        for kind in TopologyKind::ALL {
            let n = 16;
            let t = kind.build(n);
            for src in 0..n {
                for dst in 0..n {
                    let mut cur = src;
                    for &hop in &t.route(src, dst) {
                        assert!(t.has_edge(cur, hop), "{kind}: {cur} -> {hop}");
                        cur = hop;
                    }
                    assert_eq!(cur, dst);
                }
            }
        }
    }

    #[test]
    fn build_matches_wrappers() {
        let a = TopologyKind::Mfcg.build(50);
        let b = Mfcg::new(50);
        assert_eq!(a.shape(), b.shape());
        for node in 0..50 {
            assert_eq!(a.out_neighbors(node), b.out_neighbors(node));
        }
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TopologyKind::Fcg.name(), "fcg");
        assert_eq!(TopologyKind::Hypercube.to_string(), "hypercube");
        assert_eq!(TopologyKind::KFcg(4).to_string(), "kfcg4");
    }

    #[test]
    fn kfcg_generalises_the_paper_topologies() {
        // k = 1, 2, 3 coincide with FCG, MFCG, CFCG.
        let n = 100;
        for (k, kind) in [
            (1u32, TopologyKind::Fcg),
            (2, TopologyKind::Mfcg),
            (3, TopologyKind::Cfcg),
        ] {
            let generic = Grid::kfcg(k, n);
            let specific = kind.build(n);
            assert_eq!(generic.shape(), specific.shape(), "k={k}");
            for node in 0..n {
                assert_eq!(
                    generic.out_neighbors(node),
                    specific.out_neighbors(node),
                    "k={k} node={node}"
                );
            }
        }
    }

    #[test]
    fn kfcg_high_dimensions_shrink_degree_and_stretch_routes() {
        let n = 4096;
        let mut prev_degree = usize::MAX;
        for k in 1..=6u32 {
            let t = Grid::kfcg(k, n);
            let deg = t.out_degree(0);
            assert!(deg < prev_degree, "k={k}: degree must fall");
            prev_degree = deg;
            assert_eq!(t.max_forwarding_steps(), k - 1);
            // Routes stay valid.
            let route = t.route(n - 1, 0);
            assert!(route.len() as u32 <= k);
            assert_eq!(*route.last().unwrap(), 0);
        }
    }

    #[test]
    fn kfcg_partial_populations_route_correctly() {
        for n in [13u32, 29, 61, 97] {
            for k in [4u32, 5] {
                let t = Grid::kfcg(k, n);
                for src in 0..n {
                    let mut cur = src;
                    for &hop in &t.route(src, 0) {
                        assert!(t.has_edge(cur, hop), "k={k} n={n}: {cur}->{hop}");
                        cur = hop;
                    }
                    assert_eq!(cur, 0);
                }
            }
        }
    }

    #[test]
    fn single_node_topologies_work() {
        for kind in TopologyKind::ALL {
            let t = kind.build(1);
            assert_eq!(t.num_nodes(), 1);
            assert_eq!(t.out_degree(0), 0);
            assert_eq!(t.next_hop(0, 0), None);
        }
    }
}
