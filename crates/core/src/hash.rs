//! Deterministic fast hashing for simulator-internal tables.
//!
//! `std`'s default `HashMap` hasher (SipHash-1-3) is keyed with per-process
//! randomness and burns ~50 ns per small key — both properties are wrong for
//! the simulator's hot-path tables (buffer-credit accounts, dedup state,
//! lock registries): the tables are never fed attacker-controlled keys, and
//! the runtime hashes them on every message hop. [`FxHasher`] is the
//! multiply-xor hash used by the Rust compiler itself: unkeyed (so every run
//! and every platform hashes identically — one less source of accidental
//! nondeterminism), a handful of cycles per word, and more than uniform
//! enough for the small integer-tuple keys the runtime uses.
//!
//! Determinism note: even with a fixed hasher, *iteration order* of a
//! `HashMap` is an implementation detail. The simulator's rule is unchanged:
//! any map iteration that can influence the timeline or a report must be
//! sorted first. The fixed hasher exists for speed; the sorted-iteration
//! discipline exists for correctness.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by the deterministic [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Builder producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc multiply-xor hasher: fast, unkeyed, deterministic across
/// processes and platforms.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (3u32, (7u32, 9u32), 1u8);
        assert_eq!(hash_of(&key), hash_of(&key));
        assert_eq!(hash_of(&"stream"), hash_of(&"stream"));
    }

    #[test]
    fn distinguishes_nearby_keys() {
        let mut seen = std::collections::HashSet::new();
        for a in 0..64u32 {
            for b in 0..64u64 {
                assert!(seen.insert(hash_of(&(a, b))), "collision at ({a},{b})");
            }
        }
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(u32, u64), u32> = FxHashMap::default();
        m.insert((1, 2), 3);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(s.contains(&42));
    }
}
