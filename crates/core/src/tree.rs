//! Request-path trees rooted at a hot-spot node.
//!
//! For a fixed destination (the contended node), the LDF routes from every
//! other node form a tree rooted at the destination (paper Figs. 2 and 4):
//! flat (depth 1) for FCG, height 2 for MFCG, a k-nomial tree of height 3 for
//! CFCG and a binomial tree of depth `log₂ n` for the hypercube. The tree's
//! *fan-in* at each vertex is the number of children whose requests funnel
//! through it — the paper's software-level measure of contention pressure.

use crate::topology::{NodeId, VirtualTopology};

/// The tree of LDF request paths from every node to one root.
#[derive(Clone, Debug)]
pub struct RequestTree {
    root: NodeId,
    /// `parent[v]` is the next hop of `v` towards the root; the root maps to
    /// itself.
    parent: Vec<NodeId>,
    /// `depth[v]` is the number of hops from `v` to the root.
    depth: Vec<u32>,
}

impl RequestTree {
    /// Builds the request tree of `topo` rooted at `root`.
    ///
    /// # Panics
    /// Panics if `root` is out of range.
    pub fn build(topo: &dyn VirtualTopology, root: NodeId) -> Self {
        let n = topo.num_nodes();
        assert!(root < n, "root {root} out of range (n = {n})");
        let mut parent = vec![root; n as usize];
        let mut depth = vec![0u32; n as usize];
        for v in 0..n {
            if v == root {
                continue;
            }
            // Invariant: every VirtualTopology is connected under LDF, so a
            // non-root node always has a first hop towards the root.
            #[allow(clippy::expect_used)]
            let first = topo
                .next_hop(v, root)
                .expect("non-root node must have a hop towards the root");
            parent[v as usize] = first;
            depth[v as usize] = 1 + hops_from(topo, first, root);
        }
        RequestTree {
            root,
            parent,
            depth,
        }
    }

    /// The root (contended) node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Number of nodes in the tree (the whole population).
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True only for the degenerate single-node machine.
    pub fn is_empty(&self) -> bool {
        self.parent.len() <= 1
    }

    /// Parent (next hop towards the root) of `v`; the root returns itself.
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Hop distance from `v` to the root.
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v as usize]
    }

    /// Height of the tree: the maximum hop distance over all nodes.
    pub fn height(&self) -> u32 {
        self.depth.iter().copied().max().unwrap_or(0)
    }

    /// Number of direct children of `v` — how many nodes forward straight
    /// into it.
    pub fn fan_in(&self, v: NodeId) -> usize {
        self.parent
            .iter()
            .enumerate()
            .filter(|&(i, &p)| p == v && i as u32 != self.root)
            .count()
    }

    /// Fan-in at the root: the number of nodes whose requests arrive at the
    /// contended node *directly*. This is the paper's headline contention
    /// metric — `n − 1` for FCG, `O(√n)` for MFCG, `O(∛n)` for CFCG and
    /// `O(log n)` for the hypercube.
    pub fn root_fan_in(&self) -> usize {
        self.fan_in(self.root)
    }

    /// Number of nodes at each depth, index 0 being the root itself.
    pub fn depth_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.height() as usize + 1];
        for &d in &self.depth {
            hist[d as usize] += 1;
        }
        hist
    }

    /// Total number of hops summed over all leaf-to-root paths — the total
    /// message count needed for an all-to-one pattern.
    pub fn total_hops(&self) -> u64 {
        self.depth.iter().map(|&d| u64::from(d)).sum()
    }
}

fn hops_from(topo: &dyn VirtualTopology, mut cur: NodeId, root: NodeId) -> u32 {
    let mut hops = 0;
    while let Some(next) = topo.next_hop(cur, root) {
        cur = next;
        hops += 1;
    }
    hops
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::topology::{Cfcg, Fcg, Hypercube, Mfcg, TopologyKind};

    #[test]
    fn fcg_tree_is_flat() {
        // Paper Fig. 2: FCG request paths form a flat tree of depth 1.
        let t = Fcg::new(10);
        let tree = RequestTree::build(&t, 0);
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.root_fan_in(), 9);
        assert_eq!(tree.depth_histogram(), vec![1, 9]);
    }

    #[test]
    fn mfcg_3x3_tree_has_height_2() {
        // Paper Fig. 4a: 3x3 MFCG tree rooted at node 0 has height 2 and the
        // root receives directly from its 4 neighbours.
        let t = Mfcg::new(9);
        let tree = RequestTree::build(&t, 0);
        assert_eq!(tree.height(), 2);
        assert_eq!(tree.root_fan_in(), 4);
        // Nodes 4,5,7,8 (not sharing a row/column with 0) are at depth 2.
        for v in [4u32, 5, 7, 8] {
            assert_eq!(tree.depth(v), 2);
        }
    }

    #[test]
    fn cfcg_27_tree_is_trinomial_of_height_3() {
        // Paper Fig. 4b: 3x3x3 CFCG tree rooted at 0 is a trinomial tree of
        // height 3.
        let t = Cfcg::new(27);
        let tree = RequestTree::build(&t, 0);
        assert_eq!(tree.height(), 3);
        assert_eq!(tree.root_fan_in(), 6);
        assert_eq!(tree.depth_histogram(), vec![1, 6, 12, 8]);
    }

    #[test]
    fn hypercube_16_tree_is_binomial() {
        // Paper Fig. 4c: 16-node hypercube tree rooted at 0 is the binomial
        // tree: C(4, d) nodes at depth d.
        let t = Hypercube::new(16).unwrap();
        let tree = RequestTree::build(&t, 0);
        assert_eq!(tree.height(), 4);
        assert_eq!(tree.depth_histogram(), vec![1, 4, 6, 4, 1]);
        assert_eq!(tree.root_fan_in(), 4);
    }

    #[test]
    fn parents_follow_next_hop() {
        for kind in TopologyKind::ALL {
            let n = 16;
            let t = kind.build(n);
            for root in [0u32, 5, 15] {
                let tree = RequestTree::build(&t, root);
                for v in 0..n {
                    if v == root {
                        assert_eq!(tree.parent(v), root);
                        assert_eq!(tree.depth(v), 0);
                    } else {
                        assert_eq!(Some(tree.parent(v)), t.next_hop(v, root));
                        assert_eq!(tree.depth(tree.parent(v)), tree.depth(v) - 1);
                    }
                }
                assert_eq!(
                    tree.total_hops(),
                    (0..n).map(|v| u64::from(tree.depth(v))).sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn root_fan_in_scaling_orders() {
        // The contention-attenuation orders claimed in §III: n-1, O(√n),
        // O(∛n), O(log n).
        let n = 4096u32;
        let fcg = RequestTree::build(&Fcg::new(n), 0).root_fan_in();
        let mfcg = RequestTree::build(&Mfcg::new(n), 0).root_fan_in();
        let cfcg = RequestTree::build(&Cfcg::new(n), 0).root_fan_in();
        let hc = RequestTree::build(&Hypercube::new(n).unwrap(), 0).root_fan_in();
        assert_eq!(fcg, (n - 1) as usize);
        assert_eq!(mfcg, 2 * (64 - 1)); // 64x64 mesh
        assert_eq!(cfcg, 3 * (16 - 1)); // 16x16x16 cube
        assert_eq!(hc, 12); // log2(4096)
        assert!(fcg > mfcg && mfcg > cfcg && cfcg > hc);
    }

    #[test]
    fn partial_population_tree_reaches_every_node() {
        for n in [2u32, 7, 11, 13, 30] {
            for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
                let t = kind.build(n);
                for root in 0..n {
                    let tree = RequestTree::build(&t, root);
                    assert!(tree.height() <= t.shape().ndims() as u32);
                    assert_eq!(tree.len(), n as usize);
                }
            }
        }
    }

    #[test]
    fn single_node_tree_is_empty() {
        let t = Fcg::new(1);
        let tree = RequestTree::build(&t, 0);
        assert!(tree.is_empty());
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root_fan_in(), 0);
    }
}
