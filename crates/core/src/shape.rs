//! Grid shapes and the id ⇄ coordinate encoding.
//!
//! A [`Shape`] is the list of per-dimension extents of a virtual topology,
//! lowest dimension first. Node ids are the mixed-radix encoding of their
//! coordinates with dimension 0 varying fastest, which is exactly the
//! "lowest dimension first" node ordering the paper uses to support
//! partially-populated meshes and cubes (§IV-B): for a population of `n`
//! nodes, ids `0..n` fill complete lower-dimension slices first and only the
//! top of the highest dimension is incomplete.

use crate::coords::{Coord, MAX_DIMS};
use serde::{Deserialize, Serialize};

/// Extents of a multi-dimensional grid, lowest dimension first.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<u32>,
}

impl Shape {
    /// Builds a shape from per-dimension extents.
    ///
    /// # Panics
    /// Panics if `dims` is empty, longer than [`MAX_DIMS`], contains a zero
    /// extent, or its capacity overflows `u64`.
    pub fn new(dims: Vec<u32>) -> Self {
        assert!(
            !dims.is_empty() && dims.len() <= MAX_DIMS,
            "shape must have between 1 and {MAX_DIMS} dimensions, got {}",
            dims.len()
        );
        assert!(
            dims.iter().all(|&d| d >= 1),
            "all shape extents must be >= 1, got {dims:?}"
        );
        let mut cap: u64 = 1;
        for &d in &dims {
            cap = match cap.checked_mul(u64::from(d)) {
                Some(c) => c,
                None => panic!("shape {dims:?} capacity overflows u64"),
            };
        }
        Shape { dims }
    }

    /// A one-dimensional shape of extent `n` (the FCG "shape").
    pub fn line_for(n: u32) -> Self {
        assert!(n >= 1, "need at least one node");
        Shape::new(vec![n])
    }

    /// The smallest near-square `X × Y` mesh covering `n` nodes.
    ///
    /// `X = ⌈√n⌉` and `Y = ⌈n / X⌉`, so every row except possibly the topmost
    /// is fully populated — the invariant required by extended LDF.
    pub fn mesh_for(n: u32) -> Self {
        assert!(n >= 1, "need at least one node");
        let x = ceil_sqrt(n);
        let y = div_ceil_u32(n, x);
        Shape::new(vec![x, y])
    }

    /// The smallest near-cubic `X × Y × Z` cube covering `n` nodes.
    ///
    /// Only the topmost Z slice may be partial.
    pub fn cube_for(n: u32) -> Self {
        assert!(n >= 1, "need at least one node");
        let x = ceil_cbrt(n);
        let rest = div_ceil_u32(n, x);
        let y = ceil_sqrt(rest);
        let z = div_ceil_u32(n, x * y);
        Shape::new(vec![x, y, z])
    }

    /// The smallest near-balanced `k`-dimensional grid covering `n` nodes,
    /// with only the topmost slice of the highest dimension partial — the
    /// generalisation of [`Shape::mesh_for`]/[`Shape::cube_for`] to any
    /// dimensionality (`k = 1` is the FCG line, 2 the MFCG mesh, 3 the CFCG
    /// cube).
    pub fn balanced_for(n: u32, k: usize) -> Self {
        assert!(n >= 1, "need at least one node");
        assert!((1..=MAX_DIMS).contains(&k), "k must be 1..={MAX_DIMS}");
        let mut dims = Vec::with_capacity(k);
        let mut remaining = u64::from(n);
        for i in 0..k {
            let d = if i + 1 == k {
                remaining.max(1) as u32
            } else {
                ceil_root(remaining, (k - i) as u32)
            };
            dims.push(d);
            remaining = remaining.div_ceil(u64::from(d)).max(1);
        }
        // Trim the highest dimension so no whole top slice is empty.
        let slice: u64 = dims[..k - 1].iter().map(|&d| u64::from(d)).product();
        let top = u64::from(n).div_ceil(slice).max(1) as u32;
        dims[k - 1] = top;
        Shape::new(dims)
    }

    /// The `log₂ n`-dimensional binary hypercube shape, or `None` if `n` is
    /// not a power of two (the paper only supports fully populated
    /// hypercubes, §IV).
    pub fn hypercube_for(n: u32) -> Option<Self> {
        if n < 2 || !n.is_power_of_two() {
            return None;
        }
        let k = n.trailing_zeros() as usize;
        Some(Shape::new(vec![2; k]))
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Extent along dimension `dim`.
    #[inline]
    pub fn dim(&self, dim: usize) -> u32 {
        self.dims[dim]
    }

    /// All extents, lowest dimension first.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims
    }

    /// Total number of grid points (`∏ dims`), i.e. the population of a
    /// *fully* populated topology of this shape.
    pub fn capacity(&self) -> u64 {
        self.dims.iter().map(|&d| u64::from(d)).product()
    }

    /// Decodes a node id into its coordinate (mixed radix, dimension 0
    /// fastest).
    ///
    /// # Panics
    /// Panics if `id >= self.capacity()`.
    pub fn coord_of(&self, id: u32) -> Coord {
        assert!(
            u64::from(id) < self.capacity(),
            "id {id} out of range for shape {:?}",
            self.dims
        );
        let mut c = Coord::zero(self.ndims());
        let mut rem = id;
        for (i, &d) in self.dims.iter().enumerate() {
            c.set(i, rem % d);
            rem /= d;
        }
        c
    }

    /// Encodes a coordinate back into a node id.
    ///
    /// # Panics
    /// Panics if the coordinate has the wrong dimensionality or any value is
    /// out of range for its extent.
    pub fn id_of(&self, c: &Coord) -> u32 {
        assert_eq!(c.ndims(), self.ndims(), "dimension mismatch");
        let mut id: u64 = 0;
        let mut stride: u64 = 1;
        for (i, &d) in self.dims.iter().enumerate() {
            let v = c.get(i);
            assert!(
                v < d,
                "coordinate {c} out of range for shape {:?}",
                self.dims
            );
            id += u64::from(v) * stride;
            stride *= u64::from(d);
        }
        id as u32
    }
}

/// `⌈a / b⌉` for `u32`.
fn div_ceil_u32(a: u32, b: u32) -> u32 {
    debug_assert!(b > 0);
    a / b + u32::from(!a.is_multiple_of(b))
}

/// Smallest `x` with `x * x >= n`.
fn ceil_sqrt(n: u32) -> u32 {
    if n <= 1 {
        return n.max(1);
    }
    let mut x = (n as f64).sqrt() as u32;
    while u64::from(x) * u64::from(x) < u64::from(n) {
        x += 1;
    }
    while x > 1 && u64::from(x - 1) * u64::from(x - 1) >= u64::from(n) {
        x -= 1;
    }
    x
}

/// Smallest `x ≥ 1` with `xᵏ >= n` (exact integer adjustment around the
/// floating-point estimate).
fn ceil_root(n: u64, k: u32) -> u32 {
    if n <= 1 || k == 0 {
        return 1;
    }
    let powk = |v: u64| -> u128 { (0..k).fold(1u128, |acc, _| acc.saturating_mul(v as u128)) };
    let mut x = (n as f64).powf(1.0 / f64::from(k)).round().max(1.0) as u64;
    while powk(x) < u128::from(n) {
        x += 1;
    }
    while x > 1 && powk(x - 1) >= u128::from(n) {
        x -= 1;
    }
    x as u32
}

/// Smallest `x` with `x³ >= n`.
fn ceil_cbrt(n: u32) -> u32 {
    if n <= 1 {
        return n.max(1);
    }
    let mut x = (n as f64).cbrt() as u32;
    let cube = |v: u32| u64::from(v) * u64::from(v) * u64::from(v);
    while cube(x) < u64::from(n) {
        x += 1;
    }
    while x > 1 && cube(x - 1) >= u64::from(n) {
        x -= 1;
    }
    x
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_roundtrip_3x3() {
        let s = Shape::new(vec![3, 3]);
        for id in 0..9 {
            assert_eq!(s.id_of(&s.coord_of(id)), id);
        }
        // Lowest dimension varies fastest: node 4 of a 3x3 mesh is (1,1).
        assert_eq!(s.coord_of(4).as_slice(), &[1, 1]);
        assert_eq!(s.coord_of(5).as_slice(), &[2, 1]);
    }

    #[test]
    fn mesh_for_covers_and_is_tight() {
        for n in 1..=600u32 {
            let s = Shape::mesh_for(n);
            assert_eq!(s.ndims(), 2);
            let (x, y) = (s.dim(0), s.dim(1));
            assert!(s.capacity() >= u64::from(n), "mesh too small for {n}");
            // Only the topmost row may be partial.
            assert!(
                u64::from(x) * u64::from(y - 1) < u64::from(n),
                "mesh {x}x{y} wastes a whole row for {n}"
            );
        }
    }

    #[test]
    fn mesh_for_perfect_square_is_square() {
        let s = Shape::mesh_for(1024);
        assert_eq!(s.dims(), &[32, 32]);
        let s = Shape::mesh_for(9);
        assert_eq!(s.dims(), &[3, 3]);
    }

    #[test]
    fn cube_for_covers_and_is_tight() {
        for n in 1..=600u32 {
            let s = Shape::cube_for(n);
            assert_eq!(s.ndims(), 3);
            assert!(s.capacity() >= u64::from(n), "cube too small for {n}");
            let slice = u64::from(s.dim(0)) * u64::from(s.dim(1));
            assert!(
                slice * u64::from(s.dim(2) - 1) < u64::from(n),
                "cube {:?} wastes a whole slice for {n}",
                s.dims()
            );
        }
    }

    #[test]
    fn cube_for_perfect_cube_is_cubic() {
        assert_eq!(Shape::cube_for(27).dims(), &[3, 3, 3]);
        assert_eq!(Shape::cube_for(1000).dims(), &[10, 10, 10]);
    }

    #[test]
    fn balanced_for_generalises_mesh_and_cube() {
        assert_eq!(Shape::balanced_for(1024, 1).dims(), &[1024]);
        assert_eq!(
            Shape::balanced_for(1024, 2).dims(),
            Shape::mesh_for(1024).dims()
        );
        assert_eq!(Shape::balanced_for(27, 3).dims(), &[3, 3, 3]);
        assert_eq!(Shape::balanced_for(1024, 5).dims(), &[4, 4, 4, 4, 4]);
    }

    #[test]
    fn balanced_for_covers_and_keeps_lower_dims_full() {
        for n in 1..=300u32 {
            for k in 1..=5usize {
                let s = Shape::balanced_for(n, k);
                assert_eq!(s.ndims(), k);
                assert!(s.capacity() >= u64::from(n), "k={k} n={n}: too small");
                let slice: u64 = s.dims()[..k - 1].iter().map(|&d| u64::from(d)).product();
                assert!(
                    slice * u64::from(s.dim(k - 1) - 1) < u64::from(n),
                    "k={k} n={n}: wasted top slice in {:?}",
                    s.dims()
                );
            }
        }
    }

    #[test]
    fn ceil_root_is_exact() {
        assert_eq!(ceil_root(1, 4), 1);
        assert_eq!(ceil_root(16, 4), 2);
        assert_eq!(ceil_root(17, 4), 3);
        assert_eq!(ceil_root(81, 4), 3);
        assert_eq!(ceil_root(1024, 10), 2);
        assert_eq!(ceil_root(1_000_000, 2), 1000);
    }

    #[test]
    fn hypercube_for_powers_of_two_only() {
        assert_eq!(Shape::hypercube_for(16).unwrap().dims(), &[2, 2, 2, 2]);
        assert!(Shape::hypercube_for(12).is_none());
        assert!(Shape::hypercube_for(1).is_none());
        assert_eq!(Shape::hypercube_for(2).unwrap().ndims(), 1);
    }

    #[test]
    fn capacity_is_product() {
        assert_eq!(Shape::new(vec![3, 4, 5]).capacity(), 60);
        assert_eq!(Shape::line_for(7).capacity(), 7);
    }

    #[test]
    fn ceil_helpers_are_exact() {
        assert_eq!(ceil_sqrt(1), 1);
        assert_eq!(ceil_sqrt(2), 2);
        assert_eq!(ceil_sqrt(4), 2);
        assert_eq!(ceil_sqrt(5), 3);
        assert_eq!(ceil_sqrt(1024), 32);
        assert_eq!(ceil_cbrt(1), 1);
        assert_eq!(ceil_cbrt(8), 2);
        assert_eq!(ceil_cbrt(9), 3);
        assert_eq!(ceil_cbrt(27), 3);
        assert_eq!(ceil_cbrt(1000), 10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_rejects_out_of_range_id() {
        Shape::new(vec![2, 2]).coord_of(4);
    }

    #[test]
    #[should_panic(expected = "extents must be >= 1")]
    fn zero_extent_rejected() {
        Shape::new(vec![3, 0]);
    }
}
