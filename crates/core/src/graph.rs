//! Directed graphs and the buffer-dependency deadlock check.
//!
//! Forwarding a request occupies a buffer at the current node *while waiting
//! for* a buffer at the next node, so every two consecutive hops of a route
//! create a dependency between two virtual channels (topology edges). If the
//! channel-dependency graph is acyclic, no set of in-flight requests can
//! deadlock — the classic argument of Dally & Seitz that the paper's LDF
//! ordering instantiates (§IV-A) and that its extension to partial
//! populations preserves (§IV-B).
//!
//! [`DependencyGraph`] builds that graph from *all-pairs* routes and checks
//! it for cycles, turning the paper's informal proof into an executable
//! property.

use crate::topology::{NodeId, VirtualTopology};
use std::collections::HashMap;

/// A small adjacency-list directed graph over `u32` vertices.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `from → to` (duplicates are ignored).
    pub fn add_edge(&mut self, from: u32, to: u32) {
        let list = &mut self.adj[from as usize];
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// Successors of `v`.
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Adds every edge of `other` to `self` (both over the same vertex set).
    ///
    /// # Panics
    /// Panics if the vertex counts differ.
    pub fn merge_from(&mut self, other: &DiGraph) {
        assert_eq!(self.adj.len(), other.adj.len(), "vertex counts differ");
        for v in 0..other.adj.len() as u32 {
            for &s in other.successors(v) {
                self.add_edge(v, s);
            }
        }
    }

    /// Whether the graph contains a directed cycle (iterative three-colour
    /// DFS, safe for large graphs).
    pub fn has_cycle(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.adj.len()];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..self.adj.len() as u32 {
            if colour[start as usize] != Colour::White {
                continue;
            }
            colour[start as usize] = Colour::Grey;
            stack.push((start, 0));
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if let Some(&succ) = self.adj[v as usize].get(*next) {
                    *next += 1;
                    match colour[succ as usize] {
                        Colour::Grey => return true,
                        Colour::White => {
                            colour[succ as usize] = Colour::Grey;
                            stack.push((succ, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[v as usize] = Colour::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// A concrete directed cycle, as the sequence of vertices
    /// `v₀ → v₁ → … → v₀` (the closing vertex repeated at the end), or
    /// `None` when the graph is acyclic.
    ///
    /// This is the counterexample extractor behind the static analyzer's
    /// deadlock verdicts: [`DiGraph::has_cycle`] answers *whether* a cyclic
    /// buffer dependency exists, `find_cycle` exhibits one so it can be
    /// rendered (e.g. as DOT) and independently re-checked edge by edge.
    pub fn find_cycle(&self) -> Option<Vec<u32>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.adj.len()];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..self.adj.len() as u32 {
            if colour[start as usize] != Colour::White {
                continue;
            }
            colour[start as usize] = Colour::Grey;
            stack.push((start, 0));
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if let Some(&succ) = self.adj[v as usize].get(*next) {
                    *next += 1;
                    match colour[succ as usize] {
                        Colour::Grey => {
                            // The grey stack from `succ` to the top is the cycle.
                            // Invariant: a grey vertex is by definition on
                            // the DFS stack, so the position always exists.
                            #[allow(clippy::expect_used)]
                            let from = stack
                                .iter()
                                .position(|&(u, _)| u == succ)
                                .expect("grey vertex is on the DFS stack");
                            let mut cycle: Vec<u32> =
                                stack[from..].iter().map(|&(u, _)| u).collect();
                            cycle.push(succ);
                            return Some(cycle);
                        }
                        Colour::White => {
                            colour[succ as usize] = Colour::Grey;
                            stack.push((succ, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[v as usize] = Colour::Black;
                    stack.pop();
                }
            }
        }
        None
    }

    /// A topological order of the vertices, or `None` if the graph is cyclic.
    pub fn topological_order(&self) -> Option<Vec<u32>> {
        let mut indeg = vec![0usize; self.adj.len()];
        for succs in &self.adj {
            for &s in succs {
                indeg[s as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..self.adj.len() as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.adj.len());
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.adj[v as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == self.adj.len()).then_some(order)
    }
}

/// The channel-dependency graph of a topology under a routing function.
///
/// Vertices are the topology's directed edges ("channels"); an arc `c₁ → c₂`
/// records that some route uses channel `c₂` immediately after `c₁`, i.e. a
/// request can hold a buffer on `c₁`'s head node while waiting for one on
/// `c₂`'s head node.
pub struct DependencyGraph {
    channels: Vec<(NodeId, NodeId)>,
    index: HashMap<(NodeId, NodeId), u32>,
    graph: DiGraph,
}

impl DependencyGraph {
    /// Builds the dependency graph from the topology's own LDF routes over
    /// *all* source/destination pairs.
    pub fn from_topology(topo: &dyn VirtualTopology) -> Self {
        Self::from_router(topo, |src, dst| topo.route(src, dst))
    }

    /// Builds the dependency graph from an arbitrary routing function —
    /// used in tests to demonstrate that *non*-LDF orders produce cycles.
    ///
    /// # Panics
    /// Panics if a route uses a pair of nodes that is not a topology edge.
    pub fn from_router<F>(topo: &dyn VirtualTopology, mut router: F) -> Self
    where
        F: FnMut(NodeId, NodeId) -> Vec<NodeId>,
    {
        Self::from_fallible_router(topo, |src, dst| Some(router(src, dst)))
    }

    /// Builds the dependency graph from a routing function that may decline
    /// some pairs (`None` contributes no dependencies) — the shape of a
    /// *route-around* router on a topology with dead nodes, where severed
    /// pairs are reported as unreachable rather than routed.
    ///
    /// # Panics
    /// Panics if a returned route uses a pair of nodes that is not a
    /// topology edge.
    pub fn from_fallible_router<F>(topo: &dyn VirtualTopology, mut router: F) -> Self
    where
        F: FnMut(NodeId, NodeId) -> Option<Vec<NodeId>>,
    {
        let n = topo.num_nodes();
        let mut channels = Vec::new();
        let mut index = HashMap::new();
        for from in 0..n {
            for to in topo.out_neighbors(from) {
                index.insert((from, to), channels.len() as u32);
                channels.push((from, to));
            }
        }
        let mut graph = DiGraph::new(channels.len());
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let Some(route) = router(src, dst) else {
                    continue;
                };
                let mut prev: Option<u32> = None;
                let mut cur = src;
                for &hop in &route {
                    let ch = *index
                        .get(&(cur, hop))
                        .unwrap_or_else(|| panic!("route uses non-edge {cur} -> {hop}"));
                    if let Some(p) = prev {
                        graph.add_edge(p, ch);
                    }
                    prev = Some(ch);
                    cur = hop;
                }
            }
        }
        DependencyGraph {
            channels,
            index,
            graph,
        }
    }

    /// The union of this dependency graph's arcs with `other`'s, over the
    /// same topology. Models a routing *transition*: requests routed under
    /// the old function are still in flight while new requests follow the
    /// new one, so freedom from deadlock across the switch needs the union
    /// to be acyclic (cf. re-proving deadlock freedom whenever next-hop
    /// choice changes).
    ///
    /// # Panics
    /// Panics if the two graphs were built over different channel sets.
    pub fn union(mut self, other: &DependencyGraph) -> DependencyGraph {
        assert_eq!(
            self.channels, other.channels,
            "dependency graphs over different topologies"
        );
        self.graph.merge_from(&other.graph);
        self
    }

    /// Number of channels (topology edges).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The channel endpoints for channel id `c`.
    pub fn channel(&self, c: u32) -> (NodeId, NodeId) {
        self.channels[c as usize]
    }

    /// Channel id of the edge `from → to`, if it exists.
    pub fn channel_id(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.index.get(&(from, to)).copied()
    }

    /// The underlying dependency digraph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// True when no cyclic buffer dependency exists — the routing order is
    /// deadlock-free.
    pub fn is_deadlock_free(&self) -> bool {
        !self.graph.has_cycle()
    }
}

/// The buffer-dependency digraph of **classed** routes: each hop carries an
/// escape buffer class (see `crate::ldf::route_avoiding_classed`), and the
/// buffer resources are *(channel, class)* pairs — vertex
/// `class * channel_count + channel`. Plain channel-level analysis is the
/// special case `classes = 1` with every hop in class 0.
///
/// This is the model under which the route-around order is deadlock-free:
/// rank `(class, dimension)` rises strictly along every classed route, so
/// the digraph this returns must be acyclic for any dead set — a property
/// the fault-injection tests check rather than assume.
///
/// The router may decline pairs (`None` contributes no dependencies).
///
/// # Panics
/// Panics if a route uses a pair of nodes that is not a topology edge or a
/// class `>= classes`.
pub fn classed_dependency_digraph<F>(
    topo: &dyn VirtualTopology,
    classes: u8,
    mut router: F,
) -> DiGraph
where
    F: FnMut(NodeId, NodeId) -> Option<Vec<(NodeId, u8)>>,
{
    assert!(classes >= 1, "need at least one buffer class");
    let n = topo.num_nodes();
    let mut index = HashMap::new();
    for from in 0..n {
        for to in topo.out_neighbors(from) {
            let next = index.len() as u32;
            index.insert((from, to), next);
        }
    }
    let channel_count = index.len() as u32;
    let mut graph = DiGraph::new((channel_count as usize) * usize::from(classes));
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let Some(route) = router(src, dst) else {
                continue;
            };
            let mut prev: Option<u32> = None;
            let mut cur = src;
            for &(hop, class) in &route {
                assert!(class < classes, "class {class} out of range 0..{classes}");
                let ch = *index
                    .get(&(cur, hop))
                    .unwrap_or_else(|| panic!("route uses non-edge {cur} -> {hop}"));
                let v = u32::from(class) * channel_count + ch;
                if let Some(p) = prev {
                    graph.add_edge(p, v);
                }
                prev = Some(v);
                cur = hop;
            }
        }
    }
    graph
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::topology::{Cfcg, Mfcg, TopologyKind, VirtualTopology};

    #[test]
    fn digraph_cycle_detection() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.has_cycle());
        assert!(g.topological_order().is_some());
        g.add_edge(2, 0);
        assert!(g.has_cycle());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn digraph_ignores_duplicate_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 0);
        assert!(g.has_cycle());
        assert_eq!(g.find_cycle(), Some(vec![0, 0]));
    }

    #[test]
    fn find_cycle_returns_a_real_closed_walk() {
        let mut g = DiGraph::new(6);
        // A DAG prefix hanging off a 3-cycle: 0 -> 1 -> {2 -> 3 -> 4 -> 2}.
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        g.add_edge(3, 4);
        g.add_edge(4, 2);
        g.add_edge(5, 0);
        let cycle = g.find_cycle().expect("graph is cyclic");
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
        for pair in cycle.windows(2) {
            assert!(
                g.successors(pair[0]).contains(&pair[1]),
                "{} -> {} is not an edge",
                pair[0],
                pair[1]
            );
        }
        // Acyclic graphs yield no counterexample.
        let mut dag = DiGraph::new(3);
        dag.add_edge(0, 1);
        dag.add_edge(1, 2);
        assert_eq!(dag.find_cycle(), None);
    }

    #[test]
    fn ldf_is_deadlock_free_on_full_topologies() {
        for kind in TopologyKind::ALL {
            for n in [4u32, 8, 16, 32] {
                if !kind.supports(n) {
                    continue;
                }
                let t = kind.build(n);
                let dep = DependencyGraph::from_topology(&t);
                assert!(dep.is_deadlock_free(), "{kind} over {n} nodes deadlocks");
            }
        }
    }

    #[test]
    fn extended_ldf_is_deadlock_free_on_partial_populations() {
        // Every population from 2 to 80, including primes — the paper's
        // "any number of nodes" claim (§IV-B).
        for n in 2..=80u32 {
            for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
                let t = kind.build(n);
                let dep = DependencyGraph::from_topology(&t);
                assert!(dep.is_deadlock_free(), "{kind} over {n} nodes deadlocks");
            }
        }
    }

    #[test]
    fn naive_highest_dimension_first_mix_deadlocks() {
        // Demonstrate the detector catches genuinely cyclic orders: route
        // X-then-Y for some pairs and Y-then-X for others on a full mesh.
        let t = Mfcg::new(9);
        let shape = t.shape().clone();
        let dep = DependencyGraph::from_router(&t, |src, dst| {
            let s = shape.coord_of(src);
            let d = shape.coord_of(dst);
            let mut hops = Vec::new();
            let mut cur = s;
            // Odd sources fix Y first, even sources fix X first — a mixed
            // order with no global dimension ranking.
            let dims: [usize; 2] = if src % 2 == 1 { [1, 0] } else { [0, 1] };
            for dim in dims {
                if cur.get(dim) != d.get(dim) {
                    cur.set(dim, d.get(dim));
                    hops.push(shape.id_of(&cur));
                }
            }
            hops
        });
        assert!(!dep.is_deadlock_free());
    }

    #[test]
    fn fallible_router_skips_declined_pairs() {
        // A router that declines everything yields no arcs at all.
        let t = Mfcg::new(9);
        let dep = DependencyGraph::from_fallible_router(&t, |_, _| None);
        assert_eq!(dep.graph().edge_count(), 0);
        assert!(dep.is_deadlock_free());
    }

    #[test]
    fn naive_route_around_without_classes_can_cycle() {
        // The motivating counter-example for escape buffer classes: on a
        // 16-node CFCG with node 0 dead, the escape hops' out-of-order
        // dimension crossings close a cycle at the plain channel level.
        use crate::ldf;
        let t = TopologyKind::Cfcg.build(16);
        let shape = t.shape().clone();
        let dead = [0u32];
        let around = DependencyGraph::from_fallible_router(&t, |src, dst| {
            if dead.contains(&src) || dead.contains(&dst) {
                return None;
            }
            ldf::route_avoiding(&shape, 16, src, dst, &dead)
        });
        assert!(
            !around.is_deadlock_free(),
            "expected the classless escape order to cycle — if this ever \
             becomes acyclic the escape-class machinery may be removable"
        );
    }

    #[test]
    fn classed_route_around_stays_acyclic_even_with_ldf_in_flight() {
        // Kill one node and route around it under escape classes: the
        // surviving pairs' classed routes must be deadlock-free on their
        // own AND together with the original (class-0) LDF routes, because
        // pre-crash traffic is still in flight when the first rerouted
        // request is issued.
        use crate::ldf;
        for kind in [
            TopologyKind::Mfcg,
            TopologyKind::Cfcg,
            TopologyKind::Hypercube,
        ] {
            for n in [8u32, 9, 16, 27] {
                if !kind.supports(n) {
                    continue;
                }
                let t = kind.build(n);
                let shape = t.shape().clone();
                let classes = shape.ndims() as u8;
                let healthy = classed_dependency_digraph(&t, classes, |src, dst| {
                    Some(
                        ldf::route(&shape, n, src, dst)
                            .into_iter()
                            .map(|h| (h, 0))
                            .collect(),
                    )
                });
                assert!(!healthy.has_cycle());
                for victim in [0u32, n / 2, n - 1] {
                    let dead = [victim];
                    let mut around = classed_dependency_digraph(&t, classes, |src, dst| {
                        if dead.contains(&src) || dead.contains(&dst) {
                            return None;
                        }
                        ldf::route_avoiding_classed(&shape, n, src, dst, &dead)
                    });
                    assert!(
                        !around.has_cycle(),
                        "{kind}/{n} classed route-around past {victim} cycles"
                    );
                    around.merge_from(&healthy);
                    assert!(
                        !around.has_cycle(),
                        "{kind}/{n} transition past {victim} cycles"
                    );
                }
            }
        }
    }

    #[test]
    fn union_of_conflicting_orders_is_cyclic() {
        // Sanity-check that `union` actually detects transition hazards:
        // X-then-Y and Y-then-X are each deadlock-free alone, but their
        // union contains both orderings and cycles.
        let t = Mfcg::new(9);
        let shape = t.shape().clone();
        let router = |dims: [usize; 2]| {
            let shape = shape.clone();
            move |src: u32, dst: u32| {
                let d = shape.coord_of(dst);
                let mut cur = shape.coord_of(src);
                let mut hops = Vec::new();
                for dim in dims {
                    if cur.get(dim) != d.get(dim) {
                        cur.set(dim, d.get(dim));
                        hops.push(shape.id_of(&cur));
                    }
                }
                hops
            }
        };
        let xy = DependencyGraph::from_router(&t, router([0, 1]));
        let yx = DependencyGraph::from_router(&t, router([1, 0]));
        assert!(xy.is_deadlock_free());
        assert!(yx.is_deadlock_free());
        assert!(!xy.union(&yx).is_deadlock_free());
    }

    #[test]
    #[should_panic(expected = "different topologies")]
    fn union_over_different_topologies_panics() {
        let a = DependencyGraph::from_topology(&Mfcg::new(9));
        let b = DependencyGraph::from_topology(&Mfcg::new(16));
        let _ = a.union(&b);
    }

    #[test]
    fn channel_lookup_roundtrips() {
        let t = Cfcg::new(27);
        let dep = DependencyGraph::from_topology(&t);
        assert_eq!(dep.channel_count(), 27 * 6);
        for c in 0..dep.channel_count() as u32 {
            let (from, to) = dep.channel(c);
            assert!(t.has_edge(from, to));
            assert_eq!(dep.channel_id(from, to), Some(c));
        }
        assert_eq!(dep.channel_id(0, 0), None);
    }

    #[test]
    fn fcg_dependency_graph_has_no_arcs() {
        // Single-hop routes create no dependencies at all.
        let t = TopologyKind::Fcg.build(8);
        let dep = DependencyGraph::from_topology(&t);
        assert_eq!(dep.graph().edge_count(), 0);
        assert!(dep.is_deadlock_free());
    }
}
