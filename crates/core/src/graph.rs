//! Directed graphs and the buffer-dependency deadlock check.
//!
//! Forwarding a request occupies a buffer at the current node *while waiting
//! for* a buffer at the next node, so every two consecutive hops of a route
//! create a dependency between two virtual channels (topology edges). If the
//! channel-dependency graph is acyclic, no set of in-flight requests can
//! deadlock — the classic argument of Dally & Seitz that the paper's LDF
//! ordering instantiates (§IV-A) and that its extension to partial
//! populations preserves (§IV-B).
//!
//! [`DependencyGraph`] builds that graph from *all-pairs* routes and checks
//! it for cycles, turning the paper's informal proof into an executable
//! property.

use crate::topology::{NodeId, VirtualTopology};
use std::collections::HashMap;

/// A small adjacency-list directed graph over `u32` vertices.
#[derive(Clone, Debug, Default)]
pub struct DiGraph {
    adj: Vec<Vec<u32>>,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph {
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds the edge `from → to` (duplicates are ignored).
    pub fn add_edge(&mut self, from: u32, to: u32) {
        let list = &mut self.adj[from as usize];
        if !list.contains(&to) {
            list.push(to);
        }
    }

    /// Successors of `v`.
    pub fn successors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Whether the graph contains a directed cycle (iterative three-colour
    /// DFS, safe for large graphs).
    pub fn has_cycle(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Colour {
            White,
            Grey,
            Black,
        }
        let mut colour = vec![Colour::White; self.adj.len()];
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..self.adj.len() as u32 {
            if colour[start as usize] != Colour::White {
                continue;
            }
            colour[start as usize] = Colour::Grey;
            stack.push((start, 0));
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if let Some(&succ) = self.adj[v as usize].get(*next) {
                    *next += 1;
                    match colour[succ as usize] {
                        Colour::Grey => return true,
                        Colour::White => {
                            colour[succ as usize] = Colour::Grey;
                            stack.push((succ, 0));
                        }
                        Colour::Black => {}
                    }
                } else {
                    colour[v as usize] = Colour::Black;
                    stack.pop();
                }
            }
        }
        false
    }

    /// A topological order of the vertices, or `None` if the graph is cyclic.
    pub fn topological_order(&self) -> Option<Vec<u32>> {
        let mut indeg = vec![0usize; self.adj.len()];
        for succs in &self.adj {
            for &s in succs {
                indeg[s as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..self.adj.len() as u32)
            .filter(|&v| indeg[v as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.adj.len());
        while let Some(v) = queue.pop() {
            order.push(v);
            for &s in &self.adj[v as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        (order.len() == self.adj.len()).then_some(order)
    }
}

/// The channel-dependency graph of a topology under a routing function.
///
/// Vertices are the topology's directed edges ("channels"); an arc `c₁ → c₂`
/// records that some route uses channel `c₂` immediately after `c₁`, i.e. a
/// request can hold a buffer on `c₁`'s head node while waiting for one on
/// `c₂`'s head node.
pub struct DependencyGraph {
    channels: Vec<(NodeId, NodeId)>,
    index: HashMap<(NodeId, NodeId), u32>,
    graph: DiGraph,
}

impl DependencyGraph {
    /// Builds the dependency graph from the topology's own LDF routes over
    /// *all* source/destination pairs.
    pub fn from_topology(topo: &dyn VirtualTopology) -> Self {
        Self::from_router(topo, |src, dst| topo.route(src, dst))
    }

    /// Builds the dependency graph from an arbitrary routing function —
    /// used in tests to demonstrate that *non*-LDF orders produce cycles.
    ///
    /// # Panics
    /// Panics if a route uses a pair of nodes that is not a topology edge.
    pub fn from_router<F>(topo: &dyn VirtualTopology, mut router: F) -> Self
    where
        F: FnMut(NodeId, NodeId) -> Vec<NodeId>,
    {
        let n = topo.num_nodes();
        let mut channels = Vec::new();
        let mut index = HashMap::new();
        for from in 0..n {
            for to in topo.out_neighbors(from) {
                index.insert((from, to), channels.len() as u32);
                channels.push((from, to));
            }
        }
        let mut graph = DiGraph::new(channels.len());
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let route = router(src, dst);
                let mut prev: Option<u32> = None;
                let mut cur = src;
                for &hop in &route {
                    let ch = *index
                        .get(&(cur, hop))
                        .unwrap_or_else(|| panic!("route uses non-edge {cur} -> {hop}"));
                    if let Some(p) = prev {
                        graph.add_edge(p, ch);
                    }
                    prev = Some(ch);
                    cur = hop;
                }
            }
        }
        DependencyGraph {
            channels,
            index,
            graph,
        }
    }

    /// Number of channels (topology edges).
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// The channel endpoints for channel id `c`.
    pub fn channel(&self, c: u32) -> (NodeId, NodeId) {
        self.channels[c as usize]
    }

    /// Channel id of the edge `from → to`, if it exists.
    pub fn channel_id(&self, from: NodeId, to: NodeId) -> Option<u32> {
        self.index.get(&(from, to)).copied()
    }

    /// The underlying dependency digraph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// True when no cyclic buffer dependency exists — the routing order is
    /// deadlock-free.
    pub fn is_deadlock_free(&self) -> bool {
        !self.graph.has_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{Cfcg, Mfcg, TopologyKind, VirtualTopology};

    #[test]
    fn digraph_cycle_detection() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(!g.has_cycle());
        assert!(g.topological_order().is_some());
        g.add_edge(2, 0);
        assert!(g.has_cycle());
        assert!(g.topological_order().is_none());
    }

    #[test]
    fn digraph_ignores_duplicate_edges() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = DiGraph::new(1);
        g.add_edge(0, 0);
        assert!(g.has_cycle());
    }

    #[test]
    fn ldf_is_deadlock_free_on_full_topologies() {
        for kind in TopologyKind::ALL {
            for n in [4u32, 8, 16, 32] {
                if !kind.supports(n) {
                    continue;
                }
                let t = kind.build(n);
                let dep = DependencyGraph::from_topology(&t);
                assert!(dep.is_deadlock_free(), "{kind} over {n} nodes deadlocks");
            }
        }
    }

    #[test]
    fn extended_ldf_is_deadlock_free_on_partial_populations() {
        // Every population from 2 to 80, including primes — the paper's
        // "any number of nodes" claim (§IV-B).
        for n in 2..=80u32 {
            for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
                let t = kind.build(n);
                let dep = DependencyGraph::from_topology(&t);
                assert!(dep.is_deadlock_free(), "{kind} over {n} nodes deadlocks");
            }
        }
    }

    #[test]
    fn naive_highest_dimension_first_mix_deadlocks() {
        // Demonstrate the detector catches genuinely cyclic orders: route
        // X-then-Y for some pairs and Y-then-X for others on a full mesh.
        let t = Mfcg::new(9);
        let shape = t.shape().clone();
        let dep = DependencyGraph::from_router(&t, |src, dst| {
            let s = shape.coord_of(src);
            let d = shape.coord_of(dst);
            let mut hops = Vec::new();
            let mut cur = s;
            // Odd sources fix Y first, even sources fix X first — a mixed
            // order with no global dimension ranking.
            let dims: [usize; 2] = if src % 2 == 1 { [1, 0] } else { [0, 1] };
            for dim in dims {
                if cur.get(dim) != d.get(dim) {
                    cur.set(dim, d.get(dim));
                    hops.push(shape.id_of(&cur));
                }
            }
            hops
        });
        assert!(!dep.is_deadlock_free());
    }

    #[test]
    fn channel_lookup_roundtrips() {
        let t = Cfcg::new(27);
        let dep = DependencyGraph::from_topology(&t);
        assert_eq!(dep.channel_count(), 27 * 6);
        for c in 0..dep.channel_count() as u32 {
            let (from, to) = dep.channel(c);
            assert!(t.has_edge(from, to));
            assert_eq!(dep.channel_id(from, to), Some(c));
        }
        assert_eq!(dep.channel_id(0, 0), None);
    }

    #[test]
    fn fcg_dependency_graph_has_no_arcs() {
        // Single-hop routes create no dependencies at all.
        let t = TopologyKind::Fcg.build(8);
        let dep = DependencyGraph::from_topology(&t);
        assert_eq!(dep.graph().edge_count(), 0);
        assert!(dep.is_deadlock_free());
    }
}
