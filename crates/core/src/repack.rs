//! Survivor re-packing: rebuilding a valid LDF packing after permanent
//! node loss.
//!
//! The paper's packings assume a static node set: ids `0..n` fill complete
//! lower-dimension slices first, and only the top of the highest dimension
//! may be partial. A permanent crash punches a hole in that order, and the
//! PR 3 verifier proved the hole can be *escape-critical*: for some partial
//! MFCG/CFCG populations a single boundary victim leaves live pairs with no
//! legal (deadlock-free) route at all. Route-around cannot fix that — only
//! re-numbering can.
//!
//! [`repack`] computes the repair: the survivors, taken in ascending
//! physical-id order, are assigned *dense* new slots `0..n_live` and a fresh
//! lowest-dimension-first packing is recomputed over the survivor count.
//! Because the new packing is dense, it is exactly the class of (possibly
//! partial-top-slice) grids whose extended-LDF forwarding is total, depth
//! bounded and acyclic — there are no interior holes left to be critical.
//!
//! When the original topology kind cannot cover the survivor count (a
//! hypercube over a non-power-of-two), or an external certifier refuses the
//! rebuilt grid, the packing **falls down a dimension ladder** — cube to
//! mesh to line — ultimately reaching the FCG over the survivors, which a
//! certifier can never refuse (zero forwarding, nothing to deadlock).
//! [`SurvivorPacking::fallback_depth`] records how far down the ladder the
//! repair had to go.

use crate::topology::{Grid, NodeId, TopologyKind, VirtualTopology};

/// Why a survivor set could not be re-packed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepackError {
    /// Every node is dead; there is nothing to pack.
    NoSurvivors,
    /// A dead id named a node outside the population.
    DeadOutOfRange {
        /// The offending id.
        node: NodeId,
        /// The population size.
        n_total: u32,
    },
    /// Every rung of the fallback ladder was refused; each entry is
    /// `(kind, reason)`.
    AllRungsRefused(Vec<(TopologyKind, String)>),
}

impl std::fmt::Display for RepackError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepackError::NoSurvivors => write!(f, "no survivors to re-pack"),
            RepackError::DeadOutOfRange { node, n_total } => {
                write!(f, "dead node {node} outside population 0..{n_total}")
            }
            RepackError::AllRungsRefused(tried) => {
                write!(f, "every fallback rung refused:")?;
                for (kind, why) in tried {
                    write!(f, " [{kind}: {why}]")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RepackError {}

/// A certified re-packing of the survivors of a crashed population: the
/// physical-id ⇄ dense-slot maps plus the rebuilt topology over the slots.
#[derive(Clone, Debug)]
pub struct SurvivorPacking {
    original_kind: TopologyKind,
    grid: Grid,
    /// Physical node id → dense slot; `None` for dead nodes.
    slot_of: Vec<Option<u32>>,
    /// Dense slot → physical node id (ascending by construction).
    node_of: Vec<NodeId>,
    fallback_depth: u32,
}

impl SurvivorPacking {
    /// The rebuilt topology over the dense survivor slots.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The topology kind actually used (the original, or a fallback rung).
    pub fn kind(&self) -> TopologyKind {
        self.grid.kind()
    }

    /// The kind the population ran before the repair.
    pub fn original_kind(&self) -> TopologyKind {
        self.original_kind
    }

    /// How many rungs below the original kind the repair settled
    /// (0 = same kind re-packed).
    pub fn fallback_depth(&self) -> u32 {
        self.fallback_depth
    }

    /// Number of surviving nodes.
    pub fn num_live(&self) -> u32 {
        self.node_of.len() as u32
    }

    /// Size of the original population the packing was derived from.
    pub fn num_total(&self) -> u32 {
        self.slot_of.len() as u32
    }

    /// The dense slot of physical node `node`, or `None` when it is dead
    /// or out of range.
    pub fn slot_of(&self, node: NodeId) -> Option<u32> {
        self.slot_of.get(node as usize).copied().flatten()
    }

    /// The physical node occupying dense slot `slot`.
    ///
    /// # Panics
    /// Panics if `slot >= self.num_live()`.
    pub fn node_of(&self, slot: u32) -> NodeId {
        self.node_of[slot as usize]
    }

    /// Whether physical node `node` is part of the packing.
    pub fn is_live(&self, node: NodeId) -> bool {
        self.slot_of(node).is_some()
    }
}

/// The dimension ladder tried for `kind`, highest (the kind itself) first,
/// ending at a rung that supports every population: cube falls to mesh,
/// mesh to line, the hypercube through cube and mesh, and `KFcg(k)` down
/// through each lower `k`. The final rung (FCG / `KFcg(1)`) supports any
/// `n ≥ 1`, so the ladder always terminates.
pub fn fallback_ladder(kind: TopologyKind) -> Vec<TopologyKind> {
    match kind {
        TopologyKind::Fcg => vec![TopologyKind::Fcg],
        TopologyKind::Mfcg => vec![TopologyKind::Mfcg, TopologyKind::Fcg],
        TopologyKind::Cfcg => vec![TopologyKind::Cfcg, TopologyKind::Mfcg, TopologyKind::Fcg],
        TopologyKind::Hypercube => vec![
            TopologyKind::Hypercube,
            TopologyKind::Cfcg,
            TopologyKind::Mfcg,
            TopologyKind::Fcg,
        ],
        TopologyKind::KFcg(k) => {
            let mut ladder: Vec<TopologyKind> =
                (2..=k.max(1)).rev().map(TopologyKind::KFcg).collect();
            ladder.push(TopologyKind::Fcg);
            ladder
        }
    }
}

/// Re-packs the survivors of an `n_total`-node population of `kind` after
/// the nodes in `dead` crashed. Structural fallback only — every rung that
/// *builds* is accepted; use [`repack_with`] to interpose an external
/// certifier (e.g. `vt_analyze::certify`) between build and commit.
///
/// # Errors
/// Returns [`RepackError`] when no survivors remain, a dead id is out of
/// range, or (impossible with the built-in ladder, which ends at FCG)
/// every rung is refused.
pub fn repack(
    kind: TopologyKind,
    n_total: u32,
    dead: &[NodeId],
) -> Result<SurvivorPacking, RepackError> {
    repack_with(kind, n_total, dead, |_, _| Ok(()))
}

/// [`repack`] with an external certifier consulted on every ladder rung:
/// the first rung whose rebuilt grid the certifier accepts wins; a refusal
/// falls to the next-lower-dimension rung.
///
/// # Errors
/// As [`repack`], plus [`RepackError::AllRungsRefused`] when the certifier
/// rejects every rung including the FCG terminal.
pub fn repack_with(
    kind: TopologyKind,
    n_total: u32,
    dead: &[NodeId],
    certify: impl Fn(TopologyKind, u32) -> Result<(), String>,
) -> Result<SurvivorPacking, RepackError> {
    if let Some(&bad) = dead.iter().find(|&&d| d >= n_total) {
        return Err(RepackError::DeadOutOfRange { node: bad, n_total });
    }
    // Dense renumbering in ascending physical order: deterministic, and
    // lowest-dimension-first order over the new slots by construction.
    let mut slot_of: Vec<Option<u32>> = vec![None; n_total as usize];
    let mut node_of: Vec<NodeId> = Vec::with_capacity(n_total as usize);
    for node in 0..n_total {
        if dead.contains(&node) {
            continue;
        }
        slot_of[node as usize] = Some(node_of.len() as u32);
        node_of.push(node);
    }
    let n_live = node_of.len() as u32;
    if n_live == 0 {
        return Err(RepackError::NoSurvivors);
    }
    let mut refused = Vec::new();
    for (depth, rung) in fallback_ladder(kind).into_iter().enumerate() {
        if !rung.supports(n_live) {
            refused.push((rung, format!("does not support {n_live} nodes")));
            continue;
        }
        let grid = match rung.try_build(n_live) {
            Ok(g) => g,
            Err(e) => {
                refused.push((rung, e.to_string()));
                continue;
            }
        };
        if let Err(why) = certify(rung, n_live) {
            refused.push((rung, why));
            continue;
        }
        return Ok(SurvivorPacking {
            original_kind: kind,
            grid,
            slot_of,
            node_of,
            fallback_depth: depth as u32,
        });
    }
    Err(RepackError::AllRungsRefused(refused))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn survivors_are_renumbered_densely_in_order() {
        let p = repack(TopologyKind::Mfcg, 9, &[3, 7]).unwrap();
        assert_eq!(p.num_live(), 7);
        assert_eq!(p.num_total(), 9);
        assert_eq!(p.slot_of(0), Some(0));
        assert_eq!(p.slot_of(3), None);
        assert_eq!(p.slot_of(4), Some(3));
        assert_eq!(p.slot_of(8), Some(6));
        for slot in 0..p.num_live() {
            assert_eq!(p.slot_of(p.node_of(slot)), Some(slot));
        }
        assert!(!p.is_live(7));
        assert!(p.is_live(8));
    }

    #[test]
    fn same_kind_is_kept_when_it_covers_the_survivors() {
        let p = repack(TopologyKind::Mfcg, 23, &[2]).unwrap();
        assert_eq!(p.kind(), TopologyKind::Mfcg);
        assert_eq!(p.fallback_depth(), 0);
        // The rebuilt mesh is dense: every live pair routes.
        let g = p.grid();
        for a in 0..p.num_live() {
            for b in 0..p.num_live() {
                if a != b {
                    assert!(!g.route(a, b).is_empty(), "{a} -> {b} must route");
                }
            }
        }
    }

    #[test]
    fn hypercube_falls_down_the_ladder() {
        // 16-node hypercube loses one node: 15 is not a power of two, so
        // the repair falls to the cube rung.
        let p = repack(TopologyKind::Hypercube, 16, &[5]).unwrap();
        assert_eq!(p.kind(), TopologyKind::Cfcg);
        assert_eq!(p.fallback_depth(), 1);
        assert_eq!(p.original_kind(), TopologyKind::Hypercube);
    }

    #[test]
    fn certifier_refusal_falls_to_next_rung() {
        let p = repack_with(TopologyKind::Cfcg, 29, &[24], |kind, _| {
            if kind == TopologyKind::Cfcg {
                Err("refused by test certifier".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap();
        assert_eq!(p.kind(), TopologyKind::Mfcg);
        assert_eq!(p.fallback_depth(), 1);
    }

    #[test]
    fn fcg_terminal_rung_is_always_reached() {
        let p = repack_with(TopologyKind::Hypercube, 8, &[1], |kind, _| {
            if kind == TopologyKind::Fcg {
                Ok(())
            } else {
                Err("no".to_string())
            }
        })
        .unwrap();
        assert_eq!(p.kind(), TopologyKind::Fcg);
        assert_eq!(p.fallback_depth(), 3);
    }

    #[test]
    fn errors_are_typed() {
        assert_eq!(
            repack(TopologyKind::Fcg, 4, &[0, 1, 2, 3]).unwrap_err(),
            RepackError::NoSurvivors
        );
        assert_eq!(
            repack(TopologyKind::Fcg, 4, &[9]).unwrap_err(),
            RepackError::DeadOutOfRange {
                node: 9,
                n_total: 4
            }
        );
        let all_refused = repack_with(TopologyKind::Mfcg, 6, &[0], |_, _| Err("never".to_string()));
        assert!(matches!(all_refused, Err(RepackError::AllRungsRefused(_))));
    }

    #[test]
    fn deterministic() {
        let a = repack(TopologyKind::Cfcg, 29, &[24, 3]).unwrap();
        let b = repack(TopologyKind::Cfcg, 29, &[3, 24]).unwrap();
        assert_eq!(a.kind(), b.kind());
        assert_eq!(a.num_live(), b.num_live());
        for n in 0..29 {
            assert_eq!(a.slot_of(n), b.slot_of(n));
        }
    }

    #[test]
    fn kfcg_ladder_descends_through_k() {
        let ladder = fallback_ladder(TopologyKind::KFcg(4));
        assert_eq!(
            ladder,
            vec![
                TopologyKind::KFcg(4),
                TopologyKind::KFcg(3),
                TopologyKind::KFcg(2),
                TopologyKind::Fcg,
            ]
        );
    }
}
