//! Fixed-capacity multi-dimensional coordinates.
//!
//! A [`Coord`] locates a node inside a [`Shape`](crate::Shape): dimension 0 is
//! the *lowest* dimension and varies fastest in the node-id encoding, matching
//! the paper's lowest-dimension-first packing of partially populated
//! topologies.

use std::fmt;

/// Maximum number of dimensions a topology may have.
///
/// A hypercube over `u32` node ids needs at most 32 binary dimensions; the
/// meshes and cubes of the paper use 2 and 3.
pub const MAX_DIMS: usize = 32;

/// A point in a multi-dimensional grid, stored inline (no heap allocation) so
/// routing decisions stay allocation-free on the hot path.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coord {
    len: u8,
    vals: [u32; MAX_DIMS],
}

impl Coord {
    /// Builds a coordinate from a slice of per-dimension values.
    ///
    /// # Panics
    /// Panics if `vals` is empty or longer than [`MAX_DIMS`].
    pub fn new(vals: &[u32]) -> Self {
        assert!(
            !vals.is_empty() && vals.len() <= MAX_DIMS,
            "coordinate must have between 1 and {MAX_DIMS} dimensions, got {}",
            vals.len()
        );
        let mut c = Coord {
            len: vals.len() as u8,
            vals: [0; MAX_DIMS],
        };
        c.vals[..vals.len()].copy_from_slice(vals);
        c
    }

    /// Builds the all-zero coordinate with `ndims` dimensions.
    pub fn zero(ndims: usize) -> Self {
        assert!((1..=MAX_DIMS).contains(&ndims));
        Coord {
            len: ndims as u8,
            vals: [0; MAX_DIMS],
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.len as usize
    }

    /// Value along dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim >= self.ndims()`.
    #[inline]
    pub fn get(&self, dim: usize) -> u32 {
        assert!(dim < self.ndims(), "dimension {dim} out of range");
        self.vals[dim]
    }

    /// Sets the value along dimension `dim`.
    #[inline]
    pub fn set(&mut self, dim: usize, val: u32) {
        assert!(dim < self.ndims(), "dimension {dim} out of range");
        self.vals[dim] = val;
    }

    /// The coordinate values as a slice, lowest dimension first.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.vals[..self.len as usize]
    }

    /// Number of dimensions along which `self` and `other` differ.
    ///
    /// Two nodes are directly connected in MFCG/CFCG/Hypercube exactly when
    /// this distance is 1 (they share all other offsets).
    pub fn differing_dims(&self, other: &Coord) -> usize {
        assert_eq!(self.ndims(), other.ndims(), "dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Lowest dimension along which `self` and `other` differ, if any.
    pub fn lowest_differing_dim(&self, other: &Coord) -> Option<usize> {
        assert_eq!(self.ndims(), other.ndims(), "dimension mismatch");
        self.as_slice()
            .iter()
            .zip(other.as_slice())
            .position(|(a, b)| a != b)
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Coord{:?}", self.as_slice())
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn new_roundtrips_values() {
        let c = Coord::new(&[3, 1, 4]);
        assert_eq!(c.ndims(), 3);
        assert_eq!(c.as_slice(), &[3, 1, 4]);
        assert_eq!(c.get(0), 3);
        assert_eq!(c.get(2), 4);
    }

    #[test]
    fn set_updates_single_dimension() {
        let mut c = Coord::new(&[0, 0]);
        c.set(1, 7);
        assert_eq!(c.as_slice(), &[0, 7]);
    }

    #[test]
    fn zero_has_all_zero_values() {
        let c = Coord::zero(4);
        assert_eq!(c.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    fn differing_dims_counts_mismatches() {
        let a = Coord::new(&[1, 2, 3]);
        let b = Coord::new(&[1, 5, 4]);
        assert_eq!(a.differing_dims(&b), 2);
        assert_eq!(a.differing_dims(&a), 0);
    }

    #[test]
    fn lowest_differing_dim_is_first_mismatch() {
        let a = Coord::new(&[1, 2, 3]);
        let b = Coord::new(&[1, 5, 4]);
        assert_eq!(a.lowest_differing_dim(&b), Some(1));
        assert_eq!(a.lowest_differing_dim(&a), None);
    }

    #[test]
    fn display_formats_tuple() {
        let c = Coord::new(&[2, 0, 1]);
        assert_eq!(c.to_string(), "(2,0,1)");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let c = Coord::new(&[1]);
        c.get(1);
    }

    #[test]
    #[should_panic(expected = "between 1 and")]
    fn empty_coord_panics() {
        Coord::new(&[]);
    }
}
