//! # vt-core — virtual topologies for GAS runtimes
//!
//! This crate implements the primary contribution of *"Virtual Topologies for
//! Scalable Resource Management and Contention Attenuation in a Global Address
//! Space Model on the Cray XT5"* (ICPP 2011):
//!
//! * a representation of communication-resource allocation as a **directed
//!   graph** over nodes ([`VirtualTopology`]),
//! * the four virtual topologies studied by the paper — the fully connected
//!   graph ([`Fcg`], the ARMCI default), meshed FCGs ([`Mfcg`]), cubic FCGs
//!   ([`Cfcg`]) and the [`Hypercube`],
//! * **lowest-dimension-first (LDF) forwarding** ([`ldf`]), the deadlock-free
//!   request-forwarding order, including the paper's extension to
//!   partially-populated meshes and cubes on *any* number of nodes,
//! * analysis tools: request-path trees rooted at a hot-spot node
//!   ([`tree`], paper Figs. 2 and 4), the buffer-dependency graph with cycle
//!   detection used to check deadlock freedom ([`graph`]), and the analytic
//!   buffer-memory model behind paper Fig. 5 ([`memory`]).
//!
//! Everything in this crate is pure and deterministic; the machine and runtime
//! simulation live in the `vt-simnet` and `vt-armci` crates.
//!
//! ## Quick example
//!
//! ```
//! use vt_core::{Mfcg, TopologyKind, VirtualTopology};
//!
//! // 1 024 nodes arranged as a 32x32 meshed fully connected graph.
//! let topo = Mfcg::new(1024);
//! assert_eq!(topo.out_degree(0), 62); // (X-1) + (Y-1) edges
//!
//! // A request from node 1023 to node 0 is forwarded once (two hops).
//! let route = topo.route(1023, 0);
//! assert_eq!(route.len(), 2);
//!
//! // The same topology via the dynamic constructor.
//! let dyn_topo = TopologyKind::Mfcg.build(1024);
//! assert_eq!(dyn_topo.next_hop(1023, 0), topo.next_hop(1023, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
pub mod coords;
pub mod dot;
pub mod graph;
pub mod hash;
pub mod ldf;
pub mod memory;
pub mod repack;
pub mod shape;
pub mod stats;
pub mod topology;
pub mod tree;

pub use coords::{Coord, MAX_DIMS};
pub use dot::{topology_dot, tree_dot};
pub use graph::{DependencyGraph, DiGraph};
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use memory::MemoryModel;
pub use repack::{fallback_ladder, repack, repack_with, RepackError, SurvivorPacking};
pub use shape::Shape;
pub use stats::{analyze, TopologyStats};
pub use topology::{
    Cfcg, Fcg, Grid, Hypercube, HypercubeError, Mfcg, NodeId, TopologyKind, VirtualTopology,
};
pub use tree::RequestTree;
