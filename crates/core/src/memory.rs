//! Analytic model of CHT request-buffer memory (paper §II and Fig. 5).
//!
//! On every node, the communication helper thread (CHT) pre-allocates `M`
//! request buffers of `B` bytes for **each remote process that may send to it
//! directly** — i.e. each process on a node with an incoming edge in the
//! virtual topology. Under FCG this is every remote process, so the total
//! requirement is roughly `N × B × M` per node (1 GiB at 32 000 processes
//! with two 16-KiB buffers each, §II); the virtual topologies cut the edge
//! count to `O(√N)`, `O(∛N)` or `O(log N)`.
//!
//! The model also carries a per-remote-process bookkeeping constant that is
//! *independent* of the topology (rank translation tables, completion state).
//! This is why measured VmRSS ratios in the paper (e.g. FCG/MFCG ≈ 7.5×) are
//! smaller than the raw edge-count ratio (≈ 16×): the fixed bookkeeping is
//! paid under every topology.

use crate::topology::{NodeId, VirtualTopology};
use serde::{Deserialize, Serialize};

/// Parameters of the buffer-memory model, defaulting to the paper's
/// measurement setup (§V-A): 16-KiB buffers, 4 buffers per process,
/// 12 processes per node, ~612 MiB base footprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Size of one CHT request buffer in bytes (`B`). Paper: 16 KiB.
    pub buffer_bytes: u64,
    /// Request buffers dedicated to each remote process (`M`). Paper: 4.
    pub buffers_per_proc: u32,
    /// Processes per node. Paper Fig. 5: 12.
    pub procs_per_node: u32,
    /// Topology-independent bookkeeping bytes per remote process.
    pub per_remote_proc_overhead: u64,
    /// Baseline resident set of a master process before any CHT pools.
    /// Paper: ~612 MiB.
    pub base_process_bytes: u64,
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel {
            buffer_bytes: 16 * 1024,
            buffers_per_proc: 4,
            procs_per_node: 12,
            per_remote_proc_overhead: 2 * 1024,
            base_process_bytes: 612 * 1024 * 1024,
        }
    }
}

impl MemoryModel {
    /// Bytes of request buffers the CHT on `node` must allocate: one set of
    /// `M × B` for every process on every in-neighbour node.
    pub fn cht_pool_bytes(&self, topo: &dyn VirtualTopology, node: NodeId) -> u64 {
        let in_edges = topo.in_degree(node) as u64;
        in_edges
            * u64::from(self.procs_per_node)
            * u64::from(self.buffers_per_proc)
            * self.buffer_bytes
    }

    /// Topology-independent bookkeeping bytes for all remote processes.
    pub fn bookkeeping_bytes(&self, topo: &dyn VirtualTopology) -> u64 {
        let remote_procs =
            u64::from(topo.num_nodes().saturating_sub(1)) * u64::from(self.procs_per_node);
        remote_procs * self.per_remote_proc_overhead
    }

    /// Modelled VmRSS of the *master* process on `node` (the process that
    /// hosts the CHT and its buffer pools), in bytes — the quantity paper
    /// Fig. 5 reads from `/proc`.
    pub fn master_vmrss_bytes(&self, topo: &dyn VirtualTopology, node: NodeId) -> u64 {
        self.base_process_bytes + self.cht_pool_bytes(topo, node) + self.bookkeeping_bytes(topo)
    }

    /// Increment of the master's VmRSS over the base footprint, in bytes.
    pub fn increment_bytes(&self, topo: &dyn VirtualTopology, node: NodeId) -> u64 {
        self.master_vmrss_bytes(topo, node) - self.base_process_bytes
    }

    /// Total number of processes implied by the topology size.
    pub fn total_procs(&self, topo: &dyn VirtualTopology) -> u64 {
        u64::from(topo.num_nodes()) * u64::from(self.procs_per_node)
    }
}

/// Convenience: bytes as mebibytes, for report output.
pub fn to_mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::topology::{Cfcg, Fcg, Hypercube, Mfcg};

    fn model() -> MemoryModel {
        MemoryModel::default()
    }

    #[test]
    fn fcg_pool_matches_paper_formula() {
        // §II: total request buffers ≈ N × B × M (N remote processes).
        let n_nodes = 1024u32; // 12 288 processes at 12 ppn
        let t = Fcg::new(n_nodes);
        let m = model();
        let expected = u64::from(n_nodes - 1) * 12 * 4 * 16 * 1024;
        assert_eq!(m.cht_pool_bytes(&t, 0), expected);
        // ~768 MiB of pure buffers at 12 288 processes, in line with the
        // paper's 812 MiB VmRSS increment.
        assert!((to_mib(expected) - 768.0).abs() < 1.0);
    }

    #[test]
    fn increment_ordering_matches_fig5() {
        // Fig. 5: FCG ≫ MFCG > CFCG > Hypercube.
        let n = 1024u32;
        let m = model();
        let fcg = m.increment_bytes(&Fcg::new(n), 0);
        let mfcg = m.increment_bytes(&Mfcg::new(n), 0);
        let cfcg = m.increment_bytes(&Cfcg::new(n), 0);
        let hc = m.increment_bytes(&Hypercube::new(n).unwrap(), 0);
        assert!(
            fcg > mfcg && mfcg > cfcg && cfcg > hc,
            "{fcg} {mfcg} {cfcg} {hc}"
        );
        // The FCG/MFCG ratio sits between the bookkeeping-dominated lower
        // bound and the raw edge ratio (~16.5x for 1 024 nodes).
        let ratio = fcg as f64 / mfcg as f64;
        assert!(ratio > 4.0 && ratio < 17.0, "ratio {ratio}");
    }

    #[test]
    fn fcg_increment_is_linear_in_nodes() {
        let m = model();
        let a = m.increment_bytes(&Fcg::new(256), 0);
        let b = m.increment_bytes(&Fcg::new(512), 0);
        let ratio = b as f64 / a as f64;
        assert!((ratio - 2.0).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn mfcg_increment_grows_like_sqrt() {
        let m = model();
        // Quadrupling the node count should roughly double the MFCG pool.
        let a = m.cht_pool_bytes(&Mfcg::new(256), 0);
        let b = m.cht_pool_bytes(&Mfcg::new(1024), 0);
        let ratio = b as f64 / a as f64;
        assert!(ratio > 1.8 && ratio < 2.2, "ratio {ratio}");
    }

    #[test]
    fn bookkeeping_is_topology_independent() {
        let m = model();
        let n = 512u32;
        assert_eq!(
            m.bookkeeping_bytes(&Fcg::new(n)),
            m.bookkeeping_bytes(&Mfcg::new(n))
        );
    }

    #[test]
    fn vmrss_starts_at_base() {
        let m = model();
        let t = Fcg::new(1);
        assert_eq!(m.master_vmrss_bytes(&t, 0), m.base_process_bytes);
        assert_eq!(m.increment_bytes(&t, 0), 0);
    }

    #[test]
    fn total_procs_counts_all_nodes() {
        let m = model();
        assert_eq!(m.total_procs(&Fcg::new(1024)), 12288);
    }
}
