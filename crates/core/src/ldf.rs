//! Lowest-dimension-first (LDF) forwarding.
//!
//! LDF is the paper's deadlock-free request-forwarding order (§IV,
//! Algorithm 1): to route from `S` to `T` on a `k`-dimensional topology,
//! always fix the **lowest** dimension on which the current node and the
//! destination differ. Because the dimension order is monotone along a path,
//! the buffer-dependency graph between virtual channels is acyclic, which
//! rules out deadlock (the classic dimension-order argument of Dally &
//! Seitz, specialised to buffer credits instead of wormhole channels).
//!
//! **Extension to any node count (§IV-B).** Nodes are packed in
//! lowest-dimension-first order, so only the top of the highest dimension is
//! incomplete. The extended algorithm adds one guard: a hop is taken only if
//! the resulting node id exists (`D ≤ M`, i.e. `D < n` with 0-based ids);
//! otherwise the scan continues with the next higher dimension and the
//! skipped dimension is corrected later, after the route has left the partial
//! top slice. Two facts make this safe:
//!
//! * **Termination / progress** — every hop permanently fixes one coordinate
//!   to the destination's value, so a route takes at most `k` hops.
//! * **Existence** — a legal hop always exists. By induction on `k`: if the
//!   destination's highest coordinate differs it is reachable (moving the
//!   highest coordinate of `S` towards `T`'s never leaves the population,
//!   because `T < n` and complete slices are below); if it is equal, the
//!   problem reduces to the same question one dimension down inside that
//!   slice, whose population is again packed lowest-dimension-first.
//!
//! Deadlock freedom of the extended order is additionally *checked* (not
//! assumed) by the dependency-graph cycle tests in [`crate::graph`].

use crate::shape::Shape;

/// The next node on the LDF route from `current` to `dest` in a topology of
/// `shape` populated by nodes `0..n`, or `None` when `current == dest`.
///
/// # Panics
/// Panics if `current` or `dest` is `>= n`, or if `n` exceeds the shape's
/// capacity.
pub fn next_hop(shape: &Shape, n: u32, current: u32, dest: u32) -> Option<u32> {
    assert!(u64::from(n) <= shape.capacity(), "population exceeds shape");
    assert!(current < n, "current node {current} out of range (n = {n})");
    assert!(dest < n, "destination node {dest} out of range (n = {n})");
    if current == dest {
        return None;
    }
    let s = shape.coord_of(current);
    let t = shape.coord_of(dest);
    for dim in 0..shape.ndims() {
        if s.get(dim) != t.get(dim) {
            let mut d = s;
            d.set(dim, t.get(dim));
            let id = shape.id_of(&d);
            if id < n {
                return Some(id);
            }
            // Extended LDF: the natural hop would leave the population
            // (possible only inside the partial top slice); defer this
            // dimension and try the next higher one.
        }
    }
    unreachable!(
        "extended LDF invariant violated: no legal hop from {current} to {dest} \
         on shape {:?} with n = {n}",
        shape.dims()
    );
}

/// The full LDF route from `src` to `dest`: every intermediate node followed
/// by `dest` itself. Empty when `src == dest`.
///
/// The route's length is the number of *messages* sent; the number of
/// *forwarding* steps is `route.len() - 1`.
pub fn route(shape: &Shape, n: u32, src: u32, dest: u32) -> Vec<u32> {
    let mut hops = Vec::with_capacity(shape.ndims());
    let mut cur = src;
    while let Some(next) = next_hop(shape, n, cur, dest) {
        hops.push(next);
        cur = next;
        assert!(
            hops.len() <= shape.ndims(),
            "LDF route from {src} to {dest} exceeded {} hops",
            shape.ndims()
        );
    }
    hops
}

/// Number of hops (messages) on the LDF route without materialising it.
pub fn hop_count(shape: &Shape, n: u32, src: u32, dest: u32) -> u32 {
    let mut hops = 0;
    let mut cur = src;
    while let Some(next) = next_hop(shape, n, cur, dest) {
        hops += 1;
        cur = next;
    }
    hops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_node_routes_nowhere() {
        let s = Shape::new(vec![3, 3]);
        assert_eq!(next_hop(&s, 9, 4, 4), None);
        assert!(route(&s, 9, 4, 4).is_empty());
    }

    #[test]
    fn full_mesh_fixes_lowest_dimension_first() {
        // 3x3 mesh, node 8 = (2,2) -> node 0 = (0,0):
        // first fix X (hop to (0,2) = 6), then Y (hop to (0,0) = 0).
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 9, 8, 0), vec![6, 0]);
    }

    #[test]
    fn one_dimensional_shape_is_direct() {
        // FCG: a single dimension, always one hop.
        let s = Shape::line_for(16);
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    assert_eq!(route(&s, 16, src, dst), vec![dst]);
                }
            }
        }
    }

    #[test]
    fn hypercube_flips_lowest_bit_first() {
        // 16-node hypercube: 15 = 1111 -> 0 goes 1111,1110,1100,1000,0000.
        let s = Shape::hypercube_for(16).unwrap();
        assert_eq!(route(&s, 16, 15, 0), vec![14, 12, 8, 0]);
    }

    #[test]
    fn partial_mesh_skips_missing_node() {
        // 3x3 shape, 8 nodes (node 8 missing). From 7 = (1,2) to 2 = (2,0):
        // the X-first hop would be (2,2) = 8 which does not exist, so LDF
        // defers X, hops Y to (1,0) = 1, then X to (2,0) = 2.
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 8, 7, 2), vec![1, 2]);
    }

    #[test]
    fn partial_mesh_direct_within_top_row() {
        // 3x3 shape, 8 nodes. 7 = (1,2) and 6 = (0,2) share the top row.
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 8, 7, 6), vec![6]);
    }

    #[test]
    fn every_pair_routes_within_ndims_hops() {
        for n in 1..=40u32 {
            for shape in [Shape::mesh_for(n), Shape::cube_for(n)] {
                for src in 0..n {
                    for dst in 0..n {
                        let r = route(&shape, n, src, dst);
                        assert!(r.len() <= shape.ndims());
                        if src != dst {
                            assert_eq!(*r.last().unwrap(), dst);
                        }
                        assert_eq!(hop_count(&shape, n, src, dst) as usize, r.len());
                    }
                }
            }
        }
    }

    #[test]
    fn hops_follow_single_dimension_changes() {
        // Every hop on a route must change exactly one coordinate, i.e. use a
        // real topology edge.
        let n = 23;
        let shape = Shape::cube_for(n);
        for src in 0..n {
            for dst in 0..n {
                let mut cur = src;
                for &hop in &route(&shape, n, src, dst) {
                    let a = shape.coord_of(cur);
                    let b = shape.coord_of(hop);
                    assert_eq!(a.differing_dims(&b), 1, "{cur} -> {hop} not an edge");
                    cur = hop;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn next_hop_rejects_missing_nodes() {
        let s = Shape::new(vec![3, 3]);
        next_hop(&s, 8, 8, 0);
    }
}
