//! Lowest-dimension-first (LDF) forwarding.
//!
//! LDF is the paper's deadlock-free request-forwarding order (§IV,
//! Algorithm 1): to route from `S` to `T` on a `k`-dimensional topology,
//! always fix the **lowest** dimension on which the current node and the
//! destination differ. Because the dimension order is monotone along a path,
//! the buffer-dependency graph between virtual channels is acyclic, which
//! rules out deadlock (the classic dimension-order argument of Dally &
//! Seitz, specialised to buffer credits instead of wormhole channels).
//!
//! **Extension to any node count (§IV-B).** Nodes are packed in
//! lowest-dimension-first order, so only the top of the highest dimension is
//! incomplete. The extended algorithm adds one guard: a hop is taken only if
//! the resulting node id exists (`D ≤ M`, i.e. `D < n` with 0-based ids);
//! otherwise the scan continues with the next higher dimension and the
//! skipped dimension is corrected later, after the route has left the partial
//! top slice. Two facts make this safe:
//!
//! * **Termination / progress** — every hop permanently fixes one coordinate
//!   to the destination's value, so a route takes at most `k` hops.
//! * **Existence** — a legal hop always exists. By induction on `k`: if the
//!   destination's highest coordinate differs it is reachable (moving the
//!   highest coordinate of `S` towards `T`'s never leaves the population,
//!   because `T < n` and complete slices are below); if it is equal, the
//!   problem reduces to the same question one dimension down inside that
//!   slice, whose population is again packed lowest-dimension-first.
//!
//! Deadlock freedom of the extended order is additionally *checked* (not
//! assumed) by the dependency-graph cycle tests in [`crate::graph`].

use crate::shape::Shape;

/// The next node on the LDF route from `current` to `dest` in a topology of
/// `shape` populated by nodes `0..n`, or `None` when `current == dest`.
///
/// # Panics
/// Panics if `current` or `dest` is `>= n`, or if `n` exceeds the shape's
/// capacity.
pub fn next_hop(shape: &Shape, n: u32, current: u32, dest: u32) -> Option<u32> {
    assert!(u64::from(n) <= shape.capacity(), "population exceeds shape");
    assert!(current < n, "current node {current} out of range (n = {n})");
    assert!(dest < n, "destination node {dest} out of range (n = {n})");
    if current == dest {
        return None;
    }
    let s = shape.coord_of(current);
    let t = shape.coord_of(dest);
    for dim in 0..shape.ndims() {
        if s.get(dim) != t.get(dim) {
            let mut d = s;
            d.set(dim, t.get(dim));
            let id = shape.id_of(&d);
            if id < n {
                return Some(id);
            }
            // Extended LDF: the natural hop would leave the population
            // (possible only inside the partial top slice); defer this
            // dimension and try the next higher one.
        }
    }
    unreachable!(
        "extended LDF invariant violated: no legal hop from {current} to {dest} \
         on shape {:?} with n = {n}",
        shape.dims()
    );
}

/// Outcome of a dead-set-aware next-hop decision ([`next_hop_avoiding`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopDecision {
    /// `current == dest`: nothing to route.
    Arrived,
    /// The next node on the fault-tolerant LDF route.
    Hop(u32),
    /// No live hop exists: the destination is dead, or every differing
    /// dimension's hop is dead or outside the population.
    Unreachable,
}

/// The next hop of the **route-around** variant of extended LDF: fix the
/// lowest differing dimension whose hop node exists *and is not in `dead`*.
///
/// This is the ordinary extended-LDF scan with one more skip condition, so
/// it degenerates to [`next_hop`] when `dead` is empty.
///
/// **Deadlock freedom needs escape classes.** The partial-slice skips of
/// extended LDF keep a global channel order because the missing nodes sit
/// only in the topmost slice; a dead node can sit *anywhere*, and skipping
/// it makes some routes fix a lower dimension *after* a higher one. The
/// channel-level dependencies of such routes can close cycles against
/// ordinary LDF traffic — the [`crate::graph`] harness finds a concrete
/// cycle on a 16-node CFCG with node 0 dead — mirroring the classic result
/// that fault-adaptive dimension-order routing is not deadlock-free without
/// extra virtual channels. The cure is the standard one: every *descent* —
/// a hop fixing a lower dimension than the previous hop did — moves the
/// request into the next **escape buffer class**
/// ([`route_avoiding_classed`]), a separate credit pool on the same edge.
/// Ranking hops by `(class, dimension)` then increases strictly along every
/// route (same class ⇒ the dimension rose; descent ⇒ the class rose), so
/// the buffer-dependency graph over *(channel, class)* pairs is acyclic for
/// **any** dead set; and a route takes at most `ndims` hops, so fewer than
/// `ndims` classes ever exist. A fault-free run never descends and stays
/// entirely in class 0 — plain LDF. The argument is additionally *checked*,
/// not assumed, by [`crate::graph::classed_dependency_digraph`] cycle tests
/// over sampled and randomised dead sets.
///
/// Unlike plain extended LDF, a legal hop is **not** guaranteed to exist:
/// when only one dimension differs, the sole candidate hop *is* the
/// destination, and killing the last alternative forwarder severs the pair.
/// Route-around never detours through a non-differing dimension — that
/// would break both the ≤ `ndims` hop bound and the monotone-progress
/// argument — so such pairs report [`HopDecision::Unreachable`] and the
/// caller surfaces a diagnostic instead of risking an unbounded escape.
///
/// `dead` is a small unordered slice of dead node ids; `current` must not
/// be in it (a dead node routes nothing).
///
/// # Panics
/// Panics if `current` or `dest` is `>= n`, or `n` exceeds the shape's
/// capacity.
pub fn next_hop_avoiding(
    shape: &Shape,
    n: u32,
    current: u32,
    dest: u32,
    dead: &[u32],
) -> HopDecision {
    assert!(u64::from(n) <= shape.capacity(), "population exceeds shape");
    assert!(current < n, "current node {current} out of range (n = {n})");
    assert!(dest < n, "destination node {dest} out of range (n = {n})");
    debug_assert!(!dead.contains(&current), "dead node {current} cannot route");
    if current == dest {
        return HopDecision::Arrived;
    }
    if dead.contains(&dest) {
        return HopDecision::Unreachable;
    }
    let s = shape.coord_of(current);
    let t = shape.coord_of(dest);
    for dim in 0..shape.ndims() {
        if s.get(dim) != t.get(dim) {
            let mut d = s;
            d.set(dim, t.get(dim));
            let id = shape.id_of(&d);
            if id < n && !dead.contains(&id) {
                return HopDecision::Hop(id);
            }
            // Missing (partial top slice) or dead: defer this dimension and
            // escape to the next higher differing one.
        }
    }
    HopDecision::Unreachable
}

/// The full route-around route from `src` to `dest`, or `None` when some
/// prefix of it dead-ends. Empty when `src == dest`.
pub fn route_avoiding(
    shape: &Shape,
    n: u32,
    src: u32,
    dest: u32,
    dead: &[u32],
) -> Option<Vec<u32>> {
    let mut hops = Vec::with_capacity(shape.ndims());
    let mut cur = src;
    loop {
        match next_hop_avoiding(shape, n, cur, dest, dead) {
            HopDecision::Arrived => return Some(hops),
            HopDecision::Unreachable => return None,
            HopDecision::Hop(next) => {
                hops.push(next);
                cur = next;
                assert!(
                    hops.len() <= shape.ndims(),
                    "route-around from {src} to {dest} exceeded {} hops",
                    shape.ndims()
                );
            }
        }
    }
}

/// The dimension an edge between topology neighbours `a` and `b` crosses.
///
/// # Panics
/// Panics if `a` and `b` do not differ in exactly one dimension.
pub fn crossing_dim(shape: &Shape, a: u32, b: u32) -> usize {
    let ca = shape.coord_of(a);
    let cb = shape.coord_of(b);
    let mut found = None;
    for dim in 0..shape.ndims() {
        if ca.get(dim) != cb.get(dim) {
            assert!(
                found.is_none(),
                "{a} and {b} differ in more than one dimension"
            );
            found = Some(dim);
        }
    }
    found.unwrap_or_else(|| panic!("{a} and {b} occupy the same position"))
}

/// The escape buffer class a request forwarded `prev -> current -> next`
/// travels on, given it arrived at `current` in class `base_class`.
///
/// This is the per-hop form of the descent rule of
/// [`route_avoiding_classed`]: the class escalates exactly when the
/// outgoing edge crosses a lower dimension than the incoming edge did. It
/// is the **batch key** of the coalescing layer — two queued requests may
/// share a forwarding envelope only if they leave on the same edge *and*
/// in the same class, because an envelope occupies a single buffer credit
/// and credits are partitioned by `(edge, class)`. Requests *originating*
/// at `current` have no incoming edge; callers pass `prev == current`,
/// which never escalates.
///
/// # Panics
/// Panics if `prev`/`current` or `current`/`next` are not topology
/// neighbours (unless `prev == current`).
pub fn forward_class(shape: &Shape, prev: u32, current: u32, next: u32, base_class: u8) -> u8 {
    if prev == current {
        return base_class;
    }
    let in_dim = crossing_dim(shape, prev, current);
    let out_dim = crossing_dim(shape, current, next);
    if out_dim < in_dim {
        base_class + 1
    } else {
        base_class
    }
}

/// [`route_avoiding`] with each hop's **escape buffer class**: hops start in
/// class 0 and every descent (a hop crossing a lower dimension than the hop
/// before it) increments the class. See [`next_hop_avoiding`] for why the
/// classes exist; with an empty `dead` set every hop is class 0.
pub fn route_avoiding_classed(
    shape: &Shape,
    n: u32,
    src: u32,
    dest: u32,
    dead: &[u32],
) -> Option<Vec<(u32, u8)>> {
    let hops = route_avoiding(shape, n, src, dest, dead)?;
    let mut out = Vec::with_capacity(hops.len());
    let mut class = 0u8;
    let mut prev_dim: Option<usize> = None;
    let mut cur = src;
    for &hop in &hops {
        let dim = crossing_dim(shape, cur, hop);
        if prev_dim.is_some_and(|p| dim < p) {
            class += 1;
        }
        out.push((hop, class));
        prev_dim = Some(dim);
        cur = hop;
    }
    Some(out)
}

/// The full LDF route from `src` to `dest`: every intermediate node followed
/// by `dest` itself. Empty when `src == dest`.
///
/// The route's length is the number of *messages* sent; the number of
/// *forwarding* steps is `route.len() - 1`.
pub fn route(shape: &Shape, n: u32, src: u32, dest: u32) -> Vec<u32> {
    let mut hops = Vec::with_capacity(shape.ndims());
    let mut cur = src;
    while let Some(next) = next_hop(shape, n, cur, dest) {
        hops.push(next);
        cur = next;
        assert!(
            hops.len() <= shape.ndims(),
            "LDF route from {src} to {dest} exceeded {} hops",
            shape.ndims()
        );
    }
    hops
}

/// Number of hops (messages) on the LDF route without materialising it.
pub fn hop_count(shape: &Shape, n: u32, src: u32, dest: u32) -> u32 {
    let mut hops = 0;
    let mut cur = src;
    while let Some(next) = next_hop(shape, n, cur, dest) {
        hops += 1;
        cur = next;
    }
    hops
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn same_node_routes_nowhere() {
        let s = Shape::new(vec![3, 3]);
        assert_eq!(next_hop(&s, 9, 4, 4), None);
        assert!(route(&s, 9, 4, 4).is_empty());
    }

    #[test]
    fn full_mesh_fixes_lowest_dimension_first() {
        // 3x3 mesh, node 8 = (2,2) -> node 0 = (0,0):
        // first fix X (hop to (0,2) = 6), then Y (hop to (0,0) = 0).
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 9, 8, 0), vec![6, 0]);
    }

    #[test]
    fn one_dimensional_shape_is_direct() {
        // FCG: a single dimension, always one hop.
        let s = Shape::line_for(16);
        for src in 0..16 {
            for dst in 0..16 {
                if src != dst {
                    assert_eq!(route(&s, 16, src, dst), vec![dst]);
                }
            }
        }
    }

    #[test]
    fn hypercube_flips_lowest_bit_first() {
        // 16-node hypercube: 15 = 1111 -> 0 goes 1111,1110,1100,1000,0000.
        let s = Shape::hypercube_for(16).unwrap();
        assert_eq!(route(&s, 16, 15, 0), vec![14, 12, 8, 0]);
    }

    #[test]
    fn partial_mesh_skips_missing_node() {
        // 3x3 shape, 8 nodes (node 8 missing). From 7 = (1,2) to 2 = (2,0):
        // the X-first hop would be (2,2) = 8 which does not exist, so LDF
        // defers X, hops Y to (1,0) = 1, then X to (2,0) = 2.
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 8, 7, 2), vec![1, 2]);
    }

    #[test]
    fn partial_mesh_direct_within_top_row() {
        // 3x3 shape, 8 nodes. 7 = (1,2) and 6 = (0,2) share the top row.
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 8, 7, 6), vec![6]);
    }

    #[test]
    fn every_pair_routes_within_ndims_hops() {
        for n in 1..=40u32 {
            for shape in [Shape::mesh_for(n), Shape::cube_for(n)] {
                for src in 0..n {
                    for dst in 0..n {
                        let r = route(&shape, n, src, dst);
                        assert!(r.len() <= shape.ndims());
                        if src != dst {
                            assert_eq!(*r.last().unwrap(), dst);
                        }
                        assert_eq!(hop_count(&shape, n, src, dst) as usize, r.len());
                    }
                }
            }
        }
    }

    #[test]
    fn hops_follow_single_dimension_changes() {
        // Every hop on a route must change exactly one coordinate, i.e. use a
        // real topology edge.
        let n = 23;
        let shape = Shape::cube_for(n);
        for src in 0..n {
            for dst in 0..n {
                let mut cur = src;
                for &hop in &route(&shape, n, src, dst) {
                    let a = shape.coord_of(cur);
                    let b = shape.coord_of(hop);
                    assert_eq!(a.differing_dims(&b), 1, "{cur} -> {hop} not an edge");
                    cur = hop;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn next_hop_rejects_missing_nodes() {
        let s = Shape::new(vec![3, 3]);
        next_hop(&s, 8, 8, 0);
    }

    #[test]
    fn avoiding_nothing_matches_plain_ldf() {
        for n in [7u32, 9, 16, 27] {
            for shape in [Shape::mesh_for(n), Shape::cube_for(n)] {
                for src in 0..n {
                    for dst in 0..n {
                        let plain = next_hop(&shape, n, src, dst);
                        let avoiding = next_hop_avoiding(&shape, n, src, dst, &[]);
                        match plain {
                            None => assert_eq!(avoiding, HopDecision::Arrived),
                            Some(h) => assert_eq!(avoiding, HopDecision::Hop(h)),
                        }
                        assert_eq!(
                            route_avoiding(&shape, n, src, dst, &[]).unwrap(),
                            route(&shape, n, src, dst)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn route_around_escapes_a_dead_forwarder() {
        // 3x3 mesh, node 8 = (2,2) -> node 0 = (0,0). Plain LDF forwards
        // via (0,2) = 6; with 6 dead the escape fixes Y first via (2,0) = 2.
        let s = Shape::new(vec![3, 3]);
        assert_eq!(route(&s, 9, 8, 0), vec![6, 0]);
        assert_eq!(route_avoiding(&s, 9, 8, 0, &[6]).unwrap(), vec![2, 0]);
    }

    #[test]
    fn dead_destination_is_unreachable() {
        let s = Shape::new(vec![3, 3]);
        assert_eq!(
            next_hop_avoiding(&s, 9, 8, 0, &[0]),
            HopDecision::Unreachable
        );
        assert!(route_avoiding(&s, 9, 8, 0, &[0]).is_none());
    }

    #[test]
    fn single_differing_dimension_cannot_route_around() {
        // (0,0) -> (2,0) differ only in X: the only candidate hop is the
        // destination itself, so no third-party death can sever the pair,
        // but a two-node cut in the other dimension cannot be escaped
        // either: from (0,0) to (0,2) with (0,2) alive there is exactly one
        // hop — route-around never detours through non-differing dims.
        let s = Shape::new(vec![3, 3]);
        assert_eq!(next_hop_avoiding(&s, 9, 0, 2, &[1, 5]), HopDecision::Hop(2));
        // All alternatives in both differing dimensions dead: unreachable.
        assert_eq!(
            next_hop_avoiding(&s, 9, 8, 0, &[6, 2]),
            HopDecision::Unreachable
        );
    }

    #[test]
    fn route_around_stays_within_ndims_hops() {
        let n = 27;
        let shape = Shape::cube_for(n);
        for dead in [vec![13u32], vec![1, 9], vec![4, 10, 22]] {
            for src in 0..n {
                for dst in 0..n {
                    if dead.contains(&src) || dead.contains(&dst) {
                        continue;
                    }
                    if let Some(r) = route_avoiding(&shape, n, src, dst, &dead) {
                        assert!(r.len() <= shape.ndims());
                        for hop in &r {
                            assert!(!dead.contains(hop), "{src}->{dst} via dead {hop}");
                        }
                        if src != dst {
                            assert_eq!(*r.last().unwrap(), dst);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn crossing_dim_identifies_the_edge_dimension() {
        let s = Shape::new(vec![3, 3, 2]);
        assert_eq!(crossing_dim(&s, 0, 2), 0); // (0,0,0) -> (2,0,0)
        assert_eq!(crossing_dim(&s, 0, 6), 1); // (0,0,0) -> (0,2,0)
        assert_eq!(crossing_dim(&s, 0, 9), 2); // (0,0,0) -> (0,0,1)
    }

    #[test]
    #[should_panic(expected = "more than one dimension")]
    fn crossing_dim_rejects_non_neighbours() {
        let s = Shape::new(vec![3, 3]);
        crossing_dim(&s, 0, 8); // (0,0) vs (2,2)
    }

    #[test]
    fn classed_routes_stay_in_class_zero_without_deaths() {
        let n = 27;
        let shape = Shape::cube_for(n);
        for src in 0..n {
            for dst in 0..n {
                let classed = route_avoiding_classed(&shape, n, src, dst, &[]).unwrap();
                assert!(classed.iter().all(|&(_, c)| c == 0), "{src}->{dst}");
                let hops: Vec<u32> = classed.iter().map(|&(h, _)| h).collect();
                assert_eq!(hops, route(&shape, n, src, dst));
            }
        }
    }

    #[test]
    fn descent_escalates_the_escape_class() {
        // 3x3 mesh, forwarder (0,2)=6 dead: (2,2)=8 -> (0,0)=0 escapes to
        // dimension 1 first (hop to (2,0)=2) and then descends back to
        // dimension 0 — the descent hop must carry class 1.
        let s = Shape::new(vec![3, 3]);
        let classed = route_avoiding_classed(&s, 9, 8, 0, &[6]).unwrap();
        assert_eq!(classed, vec![(2, 0), (0, 1)]);
    }

    #[test]
    fn forward_class_matches_route_classing() {
        // Replaying any classed route hop-by-hop through forward_class must
        // reproduce the per-hop classes, with and without dead sets.
        let n = 27;
        let shape = Shape::cube_for(n);
        for dead in [vec![], vec![13u32], vec![1, 9]] {
            for src in 0..n {
                for dst in 0..n {
                    if dead.contains(&src) || dead.contains(&dst) {
                        continue;
                    }
                    let Some(classed) = route_avoiding_classed(&shape, n, src, dst, &dead) else {
                        continue;
                    };
                    let mut prev = src;
                    let mut cur = src;
                    let mut class = 0u8;
                    for &(hop, expect) in &classed {
                        class = forward_class(&shape, prev, cur, hop, class);
                        assert_eq!(class, expect, "{src}->{dst} hop {hop}");
                        prev = cur;
                        cur = hop;
                    }
                }
            }
        }
    }

    #[test]
    fn forward_class_origin_never_escalates() {
        let s = Shape::new(vec![3, 3]);
        assert_eq!(forward_class(&s, 8, 8, 6, 0), 0);
        // Descent 2->0 after arriving via dimension 1 escalates.
        assert_eq!(forward_class(&s, 8, 2, 0, 0), 1);
        // Same-or-higher dimension keeps the class.
        assert_eq!(forward_class(&s, 2, 0, 6, 1), 1);
    }

    #[test]
    fn escape_classes_stay_below_ndims() {
        let n = 27;
        let shape = Shape::cube_for(n);
        for dead in [vec![13u32], vec![1, 9], vec![4, 10, 22]] {
            for src in 0..n {
                for dst in 0..n {
                    if dead.contains(&src) || dead.contains(&dst) {
                        continue;
                    }
                    if let Some(r) = route_avoiding_classed(&shape, n, src, dst, &dead) {
                        for &(_, class) in &r {
                            assert!(usize::from(class) < shape.ndims());
                        }
                    }
                }
            }
        }
    }
}
