//! Graphviz DOT export for topologies and request-path trees.
//!
//! Renders the paper's illustrations from live data structures: Fig. 1/3
//! (the resource-allocation graph of a topology) via [`topology_dot`], and
//! Fig. 2/4 (the tree of request paths into a hot node) via [`tree_dot`].
//! Feed the output to `dot -Tsvg`.

use crate::topology::{NodeId, VirtualTopology};
use crate::tree::RequestTree;
use std::fmt::Write as _;

/// Renders the buffer-allocation graph as DOT.
///
/// Undirected rendering (one edge per symmetric pair): all four paper
/// topologies allocate buffers symmetrically, and Fig. 3 draws them as
/// plain edges.
pub fn topology_dot(topo: &dyn VirtualTopology) -> String {
    let n = topo.num_nodes();
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", topo.kind().name());
    let _ = writeln!(out, "  layout=neato; node [shape=circle];");
    for v in 0..n {
        let c = topo.coord_of(v);
        let _ = writeln!(out, "  n{v} [label=\"{v}\", tooltip=\"{c}\"];");
    }
    for v in 0..n {
        for w in topo.out_neighbors(v) {
            if v < w {
                let _ = writeln!(out, "  n{v} -- n{w};");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the tree of LDF request paths into `root` as DOT (the paper's
/// Figs. 2 and 4), edges pointing towards the root.
pub fn tree_dot(topo: &dyn VirtualTopology, root: NodeId) -> String {
    let tree = RequestTree::build(topo, root);
    let mut out = String::new();
    let _ = writeln!(out, "digraph {}_tree {{", topo.kind().name());
    let _ = writeln!(out, "  rankdir=BT; node [shape=circle];");
    let _ = writeln!(out, "  n{root} [style=filled, fillcolor=lightgray];");
    for v in 0..topo.num_nodes() {
        if v != root {
            let _ = writeln!(out, "  n{v} -> n{};", tree.parent(v));
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    #[test]
    fn topology_dot_emits_every_edge_once() {
        let t = TopologyKind::Mfcg.build(9);
        let dot = topology_dot(&t);
        assert!(dot.starts_with("graph mfcg {"));
        // 9 nodes, 4 undirected edges each / 2 = 18 edge lines.
        assert_eq!(dot.matches(" -- ").count(), 18);
        assert_eq!(dot.matches("[label=").count(), 9);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn tree_dot_has_one_arc_per_non_root() {
        let t = TopologyKind::Cfcg.build(27);
        let dot = tree_dot(&t, 0);
        assert!(dot.starts_with("digraph cfcg_tree {"));
        assert_eq!(dot.matches(" -> ").count(), 26);
        assert!(dot.contains("n0 [style=filled"));
    }

    #[test]
    fn fcg_tree_is_a_star() {
        let t = TopologyKind::Fcg.build(6);
        let dot = tree_dot(&t, 2);
        // Every non-root points straight at the root.
        for v in [0u32, 1, 3, 4, 5] {
            assert!(dot.contains(&format!("n{v} -> n2;")));
        }
    }

    #[test]
    fn dot_handles_single_node() {
        let t = TopologyKind::Fcg.build(1);
        assert_eq!(topology_dot(&t).matches(" -- ").count(), 0);
        assert_eq!(tree_dot(&t, 0).matches(" -> ").count(), 0);
    }
}
