//! Aggregate structural statistics of a virtual topology.
//!
//! These quantify the §III trade-off table directly: edge count (buffer
//! memory), route lengths (forwarding latency) and the hot-spot fan-in
//! (contention attenuation), all from the same `VirtualTopology` the runtime
//! uses.

use crate::topology::{NodeId, VirtualTopology};
use crate::tree::RequestTree;

/// Structural summary of one topology instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TopologyStats {
    /// Populated nodes.
    pub nodes: u32,
    /// Total directed edges (buffer-allocation relationships).
    pub edges: u64,
    /// Largest out-degree over all nodes.
    pub max_degree: usize,
    /// Mean hops of an LDF route over all ordered pairs.
    pub avg_route_hops: f64,
    /// Largest hop count over all ordered pairs (the virtual diameter).
    pub max_route_hops: u32,
    /// Direct fan-in at node 0's request tree (the contention metric).
    pub root_fan_in: usize,
}

/// Computes the summary by enumerating all pairs — O(n² · k), intended for
/// analysis and reports, not hot paths.
pub fn analyze(topo: &dyn VirtualTopology) -> TopologyStats {
    let n = topo.num_nodes();
    let mut edges = 0u64;
    let mut max_degree = 0usize;
    for v in 0..n {
        let d = topo.out_degree(v);
        edges += d as u64;
        max_degree = max_degree.max(d);
    }
    let mut total_hops = 0u64;
    let mut max_hops = 0u32;
    for src in 0..n {
        for dst in 0..n {
            if src == dst {
                continue;
            }
            let mut cur = src;
            let mut hops = 0u32;
            while let Some(next) = topo.next_hop(cur, dst) {
                cur = next;
                hops += 1;
            }
            total_hops += u64::from(hops);
            max_hops = max_hops.max(hops);
        }
    }
    let pairs = u64::from(n) * u64::from(n.saturating_sub(1));
    TopologyStats {
        nodes: n,
        edges,
        max_degree,
        avg_route_hops: if pairs == 0 {
            0.0
        } else {
            total_hops as f64 / pairs as f64
        },
        max_route_hops: max_hops,
        root_fan_in: RequestTree::build(topo, 0 as NodeId).root_fan_in(),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    #[test]
    fn fcg_stats_are_complete_graph() {
        let s = analyze(&TopologyKind::Fcg.build(16));
        assert_eq!(s.nodes, 16);
        assert_eq!(s.edges, 16 * 15);
        assert_eq!(s.max_degree, 15);
        assert_eq!(s.avg_route_hops, 1.0);
        assert_eq!(s.max_route_hops, 1);
        assert_eq!(s.root_fan_in, 15);
    }

    #[test]
    fn mfcg_64_stats() {
        let s = analyze(&TopologyKind::Mfcg.build(64));
        assert_eq!(s.edges, 64 * 14); // 8x8 mesh: (8-1)+(8-1) per node
        assert_eq!(s.max_route_hops, 2);
        assert!(s.avg_route_hops > 1.0 && s.avg_route_hops < 2.0);
        assert_eq!(s.root_fan_in, 14);
    }

    #[test]
    fn hypercube_diameter_is_dimension() {
        let s = analyze(&TopologyKind::Hypercube.build(64));
        assert_eq!(s.max_route_hops, 6);
        assert_eq!(s.max_degree, 6);
        // Mean Hamming distance over ordered pairs excluding self:
        // (k/2) * n/(n-1) = 3 * 64/63.
        assert!((s.avg_route_hops - 3.0 * 64.0 / 63.0).abs() < 1e-9);
    }

    #[test]
    fn trade_off_ordering_across_kinds() {
        // Fewer edges <-> longer routes: the §III trade-off.
        let n = 64;
        let stats: Vec<TopologyStats> = TopologyKind::ALL
            .iter()
            .map(|k| analyze(&k.build(n)))
            .collect();
        for w in stats.windows(2) {
            assert!(w[0].edges > w[1].edges, "edge count must fall");
            assert!(
                w[0].avg_route_hops < w[1].avg_route_hops,
                "route length must rise"
            );
        }
    }

    #[test]
    fn single_node_stats_are_zero() {
        let s = analyze(&TopologyKind::Fcg.build(1));
        assert_eq!(s.edges, 0);
        assert_eq!(s.avg_route_hops, 0.0);
        assert_eq!(s.root_fan_in, 0);
    }

    #[test]
    fn partial_population_stats_are_consistent() {
        let s = analyze(&TopologyKind::Cfcg.build(23));
        assert!(s.max_route_hops <= 3);
        let edge_check: u64 = (0..23)
            .map(|v| TopologyKind::Cfcg.build(23).out_degree(v) as u64)
            .sum();
        assert_eq!(s.edges, edge_check);
    }
}
