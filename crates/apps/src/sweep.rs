//! Parallel execution of independent simulation jobs.
//!
//! Every simulation is single-threaded and deterministic; a parameter sweep
//! (one run per topology × scale × scenario) is embarrassingly parallel.
//! [`run_parallel`] fans jobs out over `std::thread::scope` workers while
//! preserving input order in the results — determinism of each job plus
//! ordered collection keeps the whole harness reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over all `inputs` on up to `threads` worker threads (0 means
/// one per available CPU), returning outputs in input order.
pub fn run_parallel<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if threads <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&inputs[i]);
                results.lock().expect("sweep worker panicked")[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .expect("sweep worker panicked")
        .into_iter()
        .map(|o| o.expect("job not completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_parallel(inputs.clone(), 8, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), 4, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_parallel(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn auto_thread_count() {
        let out = run_parallel((0..17).collect::<Vec<i32>>(), 0, |&x| -x);
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], -16);
    }

    #[test]
    fn matches_serial_results() {
        // Parallelism must not change results — the reproducibility
        // guarantee the harnesses rely on.
        let inputs: Vec<u64> = (0..64).collect();
        let serial = run_parallel(inputs.clone(), 1, |&x| x.wrapping_mul(0x9E3779B9));
        let parallel = run_parallel(inputs, 6, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }
}
