//! Parallel execution of independent simulation jobs.
//!
//! Every simulation is single-threaded and deterministic; a parameter sweep
//! (one run per topology × scale × scenario) is embarrassingly parallel.
//! [`run_parallel`] fans jobs out over `std::thread::scope` workers while
//! preserving input order in the results — determinism of each job plus
//! ordered collection keeps the whole harness reproducible.
//!
//! [`SweepCell`] names one point of the standard experiment grid
//! (topology × population × coalescing × faults) with a deterministic
//! per-cell seed; [`grid`] enumerates the cross product in a fixed
//! row-major order so a sweep's output layout never depends on the worker
//! count. The figure and ablation harnesses, the CI verification matrices,
//! and `vtsim bench` all fan their cells through this module.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use vt_core::TopologyKind;

/// One point of the standard sweep grid: a topology at a population, with
/// the two protocol toggles the matrices vary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepCell {
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Number of simulated processes.
    pub n_procs: u32,
    /// Whether request coalescing is enabled.
    pub coalesce: bool,
    /// Whether the cell runs under fault injection.
    pub faults: bool,
}

impl SweepCell {
    /// The cell's deterministic RNG seed.
    ///
    /// The base value matches the tracked bench workload (`0xBE7C` xor the
    /// population, the seed `BENCH_sim.json` trajectories are measured
    /// under); the protocol toggles perturb it so no two cells of one grid
    /// share a random stream. The topology deliberately does *not* fold
    /// in: comparing topologies at identical seeds is the whole point of
    /// the paper's figures.
    pub fn seed(&self) -> u64 {
        let mut s = 0xBE7C ^ u64::from(self.n_procs);
        if self.coalesce {
            s ^= 0x40_0000;
        }
        if self.faults {
            s ^= 0x80_0000;
        }
        s
    }
}

/// Enumerates the cross product `topologies × sizes × coalesce × faults`
/// in a fixed row-major order (topology outermost, fault flag innermost).
/// `sizes` are process counts at `ppn` processes per node; cells whose
/// topology cannot be built at the implied node count are skipped, so e.g.
/// hypercube rows silently drop non-power-of-two populations.
pub fn grid(
    topologies: &[TopologyKind],
    sizes: &[u32],
    ppn: u32,
    coalesce: &[bool],
    faults: &[bool],
) -> Vec<SweepCell> {
    assert!(ppn >= 1, "ppn must be at least 1");
    let mut cells = Vec::new();
    for &topology in topologies {
        for &n_procs in sizes {
            if !topology.supports(n_procs / ppn) {
                continue;
            }
            for &c in coalesce {
                for &f in faults {
                    cells.push(SweepCell {
                        topology,
                        n_procs,
                        coalesce: c,
                        faults: f,
                    });
                }
            }
        }
    }
    cells
}

/// Runs `f` over all `cells` on up to `threads` workers (see
/// [`run_parallel`]), returning outputs in grid order.
pub fn run_cells<O, F>(cells: Vec<SweepCell>, threads: usize, f: F) -> Vec<O>
where
    O: Send,
    F: Fn(&SweepCell) -> O + Sync,
{
    run_parallel(cells, threads, f)
}

/// Runs `f` over all `inputs` on up to `threads` worker threads (0 means
/// one per available CPU), returning outputs in input order.
pub fn run_parallel<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
    .min(n);

    if threads <= 1 {
        return inputs.iter().map(&f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(&inputs[i]);
                // A poisoned lock means another worker panicked mid-store;
                // the slot vector is still well-formed (each slot is
                // written at most once), and the scope re-raises the panic
                // at join, so recover rather than double-panic here.
                results.lock().unwrap_or_else(PoisonError::into_inner)[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(||
                // The scope joins every worker and worker panics propagate,
                // so a missing slot cannot be observed here.
                unreachable!("scope joined with an unfilled result slot"))
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_parallel(inputs.clone(), 8, |&x| x * x);
        let expected: Vec<u64> = inputs.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = run_parallel(Vec::<u32>::new(), 4, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn single_thread_path() {
        let out = run_parallel(vec![1, 2, 3], 1, |&x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn auto_thread_count() {
        let out = run_parallel((0..17).collect::<Vec<i32>>(), 0, |&x| -x);
        assert_eq!(out.len(), 17);
        assert_eq!(out[16], -16);
    }

    #[test]
    fn matches_serial_results() {
        // Parallelism must not change results — the reproducibility
        // guarantee the harnesses rely on.
        let inputs: Vec<u64> = (0..64).collect();
        let serial = run_parallel(inputs.clone(), 1, |&x| x.wrapping_mul(0x9E3779B9));
        let parallel = run_parallel(inputs, 6, |&x| x.wrapping_mul(0x9E3779B9));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_is_row_major_and_skips_unsupported() {
        let cells = grid(
            &[TopologyKind::Fcg, TopologyKind::Hypercube],
            &[4096, 4600], // 4600/4 = 1150 nodes: not a power of two
            4,
            &[false, true],
            &[false],
        );
        // fcg gets both sizes, hypercube only the power-of-two one.
        assert_eq!(cells.len(), 2 * 2 + 2);
        assert_eq!(cells[0].topology, TopologyKind::Fcg);
        assert_eq!(cells[0].n_procs, 4096);
        assert!(!cells[0].coalesce);
        assert!(cells[1].coalesce);
        assert!(cells
            .iter()
            .filter(|c| c.topology == TopologyKind::Hypercube)
            .all(|c| c.n_procs == 4096));
    }

    #[test]
    fn cell_seeds_match_the_bench_trajectory() {
        // The plain (no coalescing, no faults) cell must reproduce the
        // seed the committed BENCH_sim.json numbers were measured under.
        let plain = SweepCell {
            topology: TopologyKind::Mfcg,
            n_procs: 4096,
            coalesce: false,
            faults: false,
        };
        assert_eq!(plain.seed(), 0xBE7C ^ 4096);
        // Toggles perturb the seed; topology does not.
        let coalesced = SweepCell {
            coalesce: true,
            ..plain
        };
        let faulted = SweepCell {
            faults: true,
            ..plain
        };
        let fcg = SweepCell {
            topology: TopologyKind::Fcg,
            ..plain
        };
        assert_ne!(coalesced.seed(), plain.seed());
        assert_ne!(faulted.seed(), plain.seed());
        assert_ne!(coalesced.seed(), faulted.seed());
        assert_eq!(fcg.seed(), plain.seed());
    }

    #[test]
    fn run_cells_preserves_grid_order() {
        let cells = grid(
            &[TopologyKind::Fcg],
            &[64, 128],
            4,
            &[false, true],
            &[false, true],
        );
        let serial = run_cells(cells.clone(), 1, |c| (c.n_procs, c.seed()));
        let parallel = run_cells(cells, 4, |c| (c.n_procs, c.seed()));
        assert_eq!(serial, parallel);
    }
}
