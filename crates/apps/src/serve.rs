//! The open-system serving experiment: overload resilience past
//! saturation.
//!
//! Every other experiment in this crate is a *closed* system — each rank
//! runs a finite program and the job ends when the last operation drains.
//! This one opens the system: every rank doubles as a serving client fed
//! by a deterministic arrival process ([`ArrivalProcess`]), issuing
//! fetch-&-adds at a hot rank for as long as the offered-load curve says
//! so. Because arrivals do not wait for completions, offered load can
//! exceed the hot CHT's service capacity — the regime the paper's
//! many-to-one contention collapse (§IV) lives in — and the runtime has to
//! *survive* it rather than merely finish:
//!
//! * bounded admission queues shed excess arrivals deterministically
//!   (typed `Overloaded` diagnostics, never a hang),
//! * retransmissions draw capped decorrelated jitter under per-client
//!   retry budgets, with a metastability guard that suppresses retry
//!   storms while the shed fraction is high,
//! * optionally, sustained hot-spot skew triggers a **live re-pack** onto
//!   the next topology kind up the attenuation ladder (FCG → MFCG → CFCG
//!   → k-FCG), committed as a membership epoch under traffic and certified
//!   by `vt-analyze` before it lands.
//!
//! Expected shape: goodput rises with offered load until the hot CHT
//! saturates, then *plateaus* (instead of collapsing) while the shed
//! fraction absorbs the excess; the ledger `admitted = completed +
//! gave_up` balances; credits never leak; and the hot counter stays within
//! `[completed, admitted]` — the exactly-once window (an abandoned
//! request's effect may land after its client stopped waiting, but no
//! increment is ever applied twice).

use serde::{Deserialize, Serialize};
use vt_armci::{
    ArrivalProcess, Rank, RuntimeConfig, ScriptProgram, ServeConfig, ServeStats, SimTime,
    Simulation,
};
use vt_core::TopologyKind;
use vt_simnet::stats::percentile;

/// Configuration of an open-system serving run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ServeScenarioConfig {
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Number of nodes.
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Offered-load curve driving every client.
    pub arrivals: ArrivalProcess,
    /// How long arrivals are generated (admitted work drains past it).
    pub horizon: SimTime,
    /// Per-client in-flight admission bound.
    pub queue_cap: u32,
    /// Per-client retry budget for the whole run.
    pub retry_budget: u32,
    /// Base response timeout before a retransmission (serve retries always
    /// draw capped decorrelated jitter on top of this).
    pub retry_timeout: SimTime,
    /// Windowed shed fraction at which the metastability guard engages.
    pub guard_threshold: f64,
    /// Serving-control tick (guard + skew detector cadence).
    pub tick: SimTime,
    /// Escalate the topology kind on sustained hot-spot skew.
    pub load_repack: bool,
    /// Root seed.
    pub seed: u64,
}

impl ServeScenarioConfig {
    /// The headline scenario: a flash crowd against MFCG at 1024 ranks.
    /// Base load is comfortably under capacity; the 10x spike in the
    /// middle of the horizon drives the hot CHT well past saturation.
    pub fn flash_crowd() -> Self {
        ServeScenarioConfig {
            topology: TopologyKind::Mfcg,
            nodes: 256,
            ppn: 4,
            arrivals: ArrivalProcess::flash_crowd(
                800.0,
                10.0,
                SimTime::from_millis(8),
                SimTime::from_millis(4),
            ),
            horizon: SimTime::from_millis(20),
            queue_cap: 4,
            retry_budget: 16,
            retry_timeout: SimTime::from_millis(5),
            guard_threshold: 0.5,
            tick: SimTime::from_micros(250),
            load_repack: false,
            seed: 0x53_52_56,
        }
    }

    /// A small steady-load cell for smoke tests and CI: 8 clients against
    /// FCG at a rate the hot CHT can absorb.
    pub fn steady_small() -> Self {
        ServeScenarioConfig {
            topology: TopologyKind::Fcg,
            nodes: 2,
            ppn: 4,
            arrivals: ArrivalProcess::steady(50_000.0),
            horizon: SimTime::from_millis(2),
            queue_cap: 4,
            retry_budget: 16,
            retry_timeout: SimTime::from_millis(5),
            guard_threshold: 0.5,
            tick: SimTime::from_micros(250),
            load_repack: false,
            seed: 0x53_52_56,
        }
    }

    /// The load-repack scenario: FCG over 16 single-rank nodes driven past
    /// saturation, with the skew detector allowed to escalate the kind and
    /// commit the re-pack as a live epoch.
    pub fn load_repack_hotspot() -> Self {
        ServeScenarioConfig {
            topology: TopologyKind::Fcg,
            nodes: 16,
            ppn: 1,
            arrivals: ArrivalProcess::steady(100_000.0),
            horizon: SimTime::from_millis(4),
            queue_cap: 4,
            retry_budget: 16,
            retry_timeout: SimTime::from_millis(5),
            guard_threshold: 0.5,
            tick: SimTime::from_micros(100),
            load_repack: true,
            seed: 0x53_52_56,
        }
    }

    /// Total ranks.
    pub fn n_procs(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// The hot rank all clients target (rank 0, the paper's hot spot).
    pub fn hot_rank(&self) -> Rank {
        Rank(0)
    }

    /// This scenario with every client's offered rate scaled by `factor`
    /// (the knob the goodput-vs-offered-load curve turns).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.arrivals.rate_per_sec *= factor;
        self
    }

    /// The full runtime configuration this scenario runs under (also used
    /// by `vt-bench` to time the serving engine on the identical setup).
    pub fn runtime_config(&self) -> RuntimeConfig {
        let mut rt = RuntimeConfig::new(self.n_procs(), self.topology);
        rt.procs_per_node = self.ppn;
        rt.seed = self.seed;
        rt.retry.timeout = self.retry_timeout;
        let mut serve = ServeConfig::on(self.arrivals, self.horizon);
        serve.queue_cap = self.queue_cap;
        serve.retry_budget = self.retry_budget;
        serve.guard_threshold = self.guard_threshold;
        serve.tick = self.tick;
        serve.hot_rank = self.hot_rank().0;
        serve.load_repack = self.load_repack;
        rt.serve = serve;
        rt
    }
}

/// Result of one open-system serving run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeOutcome {
    /// Offered load: client arrivals generated over the horizon.
    pub arrivals: u64,
    /// Arrivals admitted past the per-client bound.
    pub admitted: u64,
    /// Arrivals shed by admission control.
    pub sheds: u64,
    /// Admitted requests completed with a response — the goodput.
    pub completed: u64,
    /// Admitted requests abandoned (budget exhausted or guard-shed).
    pub gave_up: u64,
    /// Serve-mode retransmissions issued.
    pub retries: u64,
    /// Retransmissions suppressed by budget or guard.
    pub shed_retries: u64,
    /// Metastability-guard engagements.
    pub guard_trips: u64,
    /// Offered load in requests/second over the horizon.
    pub offered_per_sec: f64,
    /// Goodput in completed requests/second over the full run.
    pub goodput_per_sec: f64,
    /// Median completion latency, µs.
    pub p50_us: f64,
    /// 99th-percentile completion latency, µs.
    pub p99_us: f64,
    /// 99.9th-percentile completion latency, µs.
    pub p999_us: f64,
    /// Run makespan (last admitted request drained), seconds.
    pub exec_seconds: f64,
    /// Buffer credits still held at quiescence (must be 0).
    pub credit_leaks: u64,
    /// Duplicate deliveries suppressed by the target-side dedup table.
    pub dedup_hits: u64,
    /// Corrupt frames caught by the end-to-end envelope checksum (zero
    /// unless a fault schedule corrupts payloads under the serving run).
    pub corrupt_detected: u64,
    /// Final value of the hot fetch-&-add counter.
    pub hot_final: u64,
    /// The exactly-once ledger balances: `admitted = completed + gave_up`,
    /// `arrivals = admitted + sheds`, and the hot counter lies in
    /// `[completed, admitted]`.
    pub exactly_once: bool,
    /// Load-triggered re-pack epochs committed (0 or 1).
    pub load_repacks: u64,
    /// The topology kind the re-pack committed, if one did.
    pub repack_kind: Option<TopologyKind>,
    /// The committed re-pack kind re-certifies under `vt-analyze`.
    pub repack_certified: bool,
    /// Membership epochs committed during the run.
    pub epoch_bumps: u64,
    /// Raw serving counters, for downstream tooling.
    pub stats: ServeStats,
}

/// One point on the goodput-vs-offered-load curve.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The rate multiplier applied to the base scenario.
    pub factor: f64,
    /// Offered load, requests/second.
    pub offered_per_sec: f64,
    /// Goodput, completed requests/second.
    pub goodput_per_sec: f64,
    /// Fraction of arrivals shed at admission.
    pub shed_frac: f64,
    /// 99th-percentile completion latency, µs.
    pub p99_us: f64,
}

/// Runs the serving scenario.
///
/// # Panics
/// Panics if the simulation ends abnormally — an overloaded open system
/// is expected to shed and degrade, never to deadlock. [`try_run`] is the
/// non-panicking variant.
pub fn run(cfg: &ServeScenarioConfig) -> ServeOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("serve scenario failed: {e}"))
}

/// Runs the serving scenario, surfacing abnormal endings as a typed error.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the run ends abnormally.
pub fn try_run(cfg: &ServeScenarioConfig) -> Result<ServeOutcome, crate::RunError> {
    let rt = cfg.runtime_config();
    // Every client's program is empty: all load comes through the open
    // arrival processes. The repair certifier guards load-triggered
    // re-pack commits exactly as it guards crash repairs.
    let report = Simulation::build(rt, |_| ScriptProgram::new(vec![]))
        .with_repair_certifier(vt_analyze::certify_repair)
        .run()?;

    let s = report.serve;
    let hot_final = u64::try_from(report.fetch_finals[cfg.hot_rank().idx()]).unwrap_or(0);
    let exactly_once = s.arrivals == s.admitted + s.sheds
        && s.admitted == s.completed + s.gave_up
        && hot_final >= s.completed
        && hot_final <= s.admitted;
    let repack_certified = match s.repack_kind {
        Some(kind) => vt_analyze::certify_repair(kind, cfg.nodes).is_ok(),
        None => false,
    };
    let horizon_s = cfg.horizon.as_secs_f64();
    let exec_s = report.finish_time.as_secs_f64();
    #[allow(clippy::cast_precision_loss)]
    let outcome = ServeOutcome {
        arrivals: s.arrivals,
        admitted: s.admitted,
        sheds: s.sheds,
        completed: s.completed,
        gave_up: s.gave_up,
        retries: s.retries,
        shed_retries: s.shed_retries,
        guard_trips: s.guard_trips,
        offered_per_sec: s.arrivals as f64 / horizon_s,
        goodput_per_sec: if exec_s > 0.0 {
            s.completed as f64 / exec_s
        } else {
            0.0
        },
        p50_us: percentile(&report.serve_latencies_us, 50.0),
        p99_us: percentile(&report.serve_latencies_us, 99.0),
        p999_us: percentile(&report.serve_latencies_us, 99.9),
        exec_seconds: exec_s,
        credit_leaks: report.credit_leaks,
        dedup_hits: report.faults.dedup_hits,
        corrupt_detected: report.faults.corrupt_detected,
        hot_final,
        exactly_once,
        load_repacks: s.load_repacks,
        repack_kind: s.repack_kind,
        repack_certified,
        epoch_bumps: report.repair.epoch_bumps,
        stats: s,
    };
    Ok(outcome)
}

/// Sweeps the offered-load multipliers in `factors` over the base
/// scenario, producing the goodput-vs-offered-load curve the experiment
/// plots: goodput should plateau past saturation while the shed fraction
/// absorbs the excess.
///
/// # Panics
/// Panics if any cell's simulation ends abnormally.
pub fn curve(base: &ServeScenarioConfig, factors: &[f64]) -> Vec<CurvePoint> {
    factors
        .iter()
        .map(|&factor| {
            let o = run(&base.scaled(factor));
            #[allow(clippy::cast_precision_loss)]
            let shed_frac = if o.arrivals == 0 {
                0.0
            } else {
                o.sheds as f64 / o.arrivals as f64
            };
            CurvePoint {
                factor,
                offered_per_sec: o.offered_per_sec,
                goodput_per_sec: o.goodput_per_sec,
                shed_frac,
                p99_us: o.p99_us,
            }
        })
        .collect()
}

/// Renders one outcome in the canonical multi-line form shared by the CLI
/// and the golden files.
pub fn render(cfg: &ServeScenarioConfig, o: &ServeOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "serve {} n={} ppn={} ({} procs), {} arrivals over {}:\n",
        cfg.topology.name(),
        cfg.nodes,
        cfg.ppn,
        cfg.n_procs(),
        cfg.arrivals.kind.name(),
        cfg.horizon,
    ));
    out.push_str(&format!(
        "load: {} arrivals ({:.0}/s offered), {} admitted, {} shed, {} completed ({:.0}/s goodput), {} gave up\n",
        o.arrivals, o.offered_per_sec, o.admitted, o.sheds, o.completed, o.goodput_per_sec, o.gave_up,
    ));
    out.push_str(&format!(
        "retries: {} issued, {} suppressed, {} guard trips, retry budget {}\n",
        o.retries, o.shed_retries, o.guard_trips, cfg.retry_budget,
    ));
    out.push_str(&format!(
        "latency: p50 {:.1} us, p99 {:.1} us, p99.9 {:.1} us, makespan {:.1} us\n",
        o.p50_us,
        o.p99_us,
        o.p999_us,
        o.exec_seconds * 1e6,
    ));
    out.push_str(&format!(
        "ledger: hot counter {} in [{}, {}], {} dedup hits, {} corrupt caught, {} credit leaks, exactly-once {}\n",
        o.hot_final,
        o.completed,
        o.admitted,
        o.dedup_hits,
        o.corrupt_detected,
        o.credit_leaks,
        if o.exactly_once { "HOLDS" } else { "VIOLATED" },
    ));
    match o.repack_kind {
        Some(kind) => out.push_str(&format!(
            "load re-pack: {} -> {} committed under traffic (epoch {}), {}\n",
            cfg.topology.name(),
            kind.name(),
            o.epoch_bumps,
            if o.repack_certified {
                "CERTIFIED"
            } else {
                "UNCERTIFIED"
            },
        )),
        None if cfg.load_repack => out.push_str("load re-pack: armed, not triggered\n"),
        None => {}
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn steady_small_balances_its_ledger() {
        let cfg = ServeScenarioConfig::steady_small();
        let o = run(&cfg);
        assert!(o.arrivals > 50, "{o:?}");
        assert!(o.completed > 0, "{o:?}");
        assert!(o.exactly_once, "{o:?}");
        assert_eq!(o.credit_leaks, 0, "{o:?}");
    }

    #[test]
    fn load_repack_hotspot_commits_certified_epoch() {
        let o = run(&ServeScenarioConfig::load_repack_hotspot());
        assert_eq!(o.load_repacks, 1, "{o:?}");
        assert_eq!(o.repack_kind, Some(TopologyKind::Mfcg), "{o:?}");
        assert!(o.repack_certified, "{o:?}");
        assert!(o.exactly_once, "{o:?}");
        assert_eq!(o.credit_leaks, 0);
    }

    #[test]
    fn deterministic_across_reruns() {
        let cfg = ServeScenarioConfig::steady_small().scaled(4.0);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.exec_seconds, b.exec_seconds);
        assert_eq!(render(&cfg, &a), render(&cfg, &b));
    }

    #[test]
    fn goodput_plateaus_past_saturation() {
        let base = ServeScenarioConfig::steady_small();
        let points = curve(&base, &[1.0, 8.0, 16.0]);
        assert_eq!(points.len(), 3);
        // Past saturation goodput must not collapse: the top cell keeps at
        // least half the middle cell's goodput while shedding more.
        assert!(points[2].shed_frac >= points[1].shed_frac);
        assert!(
            points[2].goodput_per_sec >= 0.5 * points[1].goodput_per_sec,
            "goodput collapsed: {points:?}"
        );
    }
}
