//! # vt-apps — workloads for the virtual-topology study
//!
//! The paper evaluates its virtual topologies with microbenchmarks and two
//! applications; this crate implements all of them on the `vt-armci`
//! runtime model:
//!
//! * [`contention`] — the hot-spot microbenchmark of Figs. 6 and 7:
//!   per-rank latency of vectored transfers and fetch-&-add against rank 0
//!   under 0 % / 11 % / 20 % contention, using the paper's exact
//!   measurement protocol.
//! * [`lu`] — a NAS LU proxy (Fig. 8): neighbour-only SSOR wavefront
//!   exchanges, no hot spot, topology-insensitive.
//! * [`nwchem_dft`] — an NWChem DFT SiOSi3 proxy (Fig. 9a): dynamic load
//!   balancing over a shared `nxtval` fetch-&-add counter — the hot-spot
//!   application where MFCG shines.
//! * [`nwchem_ccsd`] — an NWChem CCSD(T) water proxy (Fig. 9b):
//!   accumulate-heavy, spread traffic, memory-bound; FCG's `O(N)` buffer
//!   pools overflow node memory at scale.
//! * [`faults`] — the topology-resilience experiment: kill a forwarder
//!   mid-run and measure completion time, availability and the
//!   self-healing runtime's recovery counters per topology.
//! * [`serve`] — the open-system overload experiment: deterministic
//!   arrival processes drive every rank as a serving client past the hot
//!   CHT's saturation point, measuring shed/goodput/latency behaviour and
//!   (optionally) a certified load-triggered topology re-pack.
//! * [`chaos`] — the deterministic chaos-campaign harness: randomised
//!   composite fault schedules (crashes, reboots, partitions, loss,
//!   corruption) over a topology × population grid, every cell checked
//!   against invariant oracles and replay byte-identity, with greedy
//!   shrinking of failing schedules to minimized reproducers.
//! * [`report`] — gnuplot-ready series/panel/table rendering.
//! * [`sweep`] — a scoped-thread parallel runner for independent
//!   simulations (each simulation itself stays single-threaded and
//!   deterministic).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
pub mod chaos;
pub mod contention;
pub mod faults;
pub mod gups;
pub mod lu;
pub mod nwchem_ccsd;
pub mod nwchem_dft;
pub mod repair;
pub mod report;
pub mod serve;
pub mod sweep;

pub use chaos::{CellOutcome, ChaosConfig, ChaosOutcome, MinimizedRepro};
pub use contention::{ContentionConfig, ContentionOutcome, OpSpec, Scenario};
pub use faults::{FaultOutcome, FaultScenarioConfig};
pub use gups::{GupsConfig, GupsOutcome};
pub use lu::{LuConfig, LuOutcome};
pub use nwchem_ccsd::{CcsdConfig, CcsdOutcome};
pub use nwchem_dft::{DftConfig, DftOutcome};
pub use repair::{RepairOutcome, RepairScenarioConfig};
pub use report::{Panel, Series, Table};
pub use serve::{CurvePoint, ServeOutcome, ServeScenarioConfig};
pub use sweep::{grid, run_cells, run_parallel, SweepCell};

/// Error from an experiment driver's fallible entry point (`try_run`).
///
/// Every workload module pairs its panicking `run` convenience with a
/// `try_run` returning this type, so harnesses that must not abort (CI
/// drivers, the bench loop) can surface failures as data instead.
#[derive(Debug)]
pub enum RunError {
    /// The underlying simulation ended abnormally (deadlock, timeout,
    /// unreachable destination).
    Sim(vt_armci::SimError),
    /// The fault schedule failed [`FaultPlan::validate`](vt_simnet::FaultPlan::validate)
    /// before the run was built.
    Plan(vt_simnet::FaultPlanError),
    /// A harness-side invariant failed; the message names it.
    Harness(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::Plan(e) => write!(f, "invalid fault plan: {e}"),
            RunError::Harness(msg) => write!(f, "harness invariant failed: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<vt_armci::SimError> for RunError {
    fn from(e: vt_armci::SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<vt_simnet::FaultPlanError> for RunError {
    fn from(e: vt_simnet::FaultPlanError) -> Self {
        RunError::Plan(e)
    }
}
