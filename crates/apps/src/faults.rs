//! The topology-resilience experiment: kill a forwarder mid-run.
//!
//! The paper's virtual topologies interpose forwarders between a process
//! and its hot target; this scenario measures what that buys — and costs —
//! when one of those forwarders dies. Every rank hammers rank 0 with
//! fetch-&-adds (the Fig. 7 hot-spot pattern) and, mid-run, the node that
//! forwards the far corner's traffic toward node 0 is crashed. The
//! self-healing runtime must detect the loss by timeout, retransmit, and
//! route around the corpse on escape-class buffers; the experiment reports
//! completion time against a healthy baseline, availability, and the
//! recovery counters per topology.
//!
//! Expected shape: FCG has no forwarders, so a crash only loses the
//! victim's own ranks (nothing to reroute, `reroutes = 0`); the virtual
//! topologies lose the same ranks *plus* pay timeout/retransmit rounds for
//! every in-flight request the dead forwarder held, but complete with
//! availability `1 − ppn/P` all the same.

use serde::{Deserialize, Serialize};
use vt_armci::{
    Action, FaultPlan, MembershipConfig, Rank, RepairStats, RuntimeConfig, ScriptProgram, SimTime,
    Simulation,
};
use vt_core::{TopologyKind, VirtualTopology};

/// Configuration of a forwarder-kill run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FaultScenarioConfig {
    /// Total ranks.
    pub n_procs: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Blocking fetch-&-adds each rank issues at rank 0.
    pub ops_per_rank: u32,
    /// When the victim node is crashed.
    pub kill_at: SimTime,
    /// Root seed.
    pub seed: u64,
    /// Run with membership repair enabled: the failure detector confirms
    /// the crash and an epoch commit re-packs the survivors (with
    /// `vt-analyze` certifying the repaired topology), instead of relying
    /// on retry/route-around alone.
    pub membership: bool,
}

impl FaultScenarioConfig {
    /// The paper-scale setup: 256 ranks at 4 ppn (64 nodes), each issuing
    /// 8 fetch-&-adds at rank 0, with the forwarder killed at 300 µs.
    pub fn paper(topology: TopologyKind) -> Self {
        FaultScenarioConfig {
            n_procs: 256,
            ppn: 4,
            topology,
            ops_per_rank: 8,
            kill_at: SimTime::from_micros(300),
            seed: 0xFA17,
            membership: false,
        }
    }

    /// Number of nodes implied by the process count.
    pub fn num_nodes(&self) -> u32 {
        self.n_procs.div_ceil(self.ppn)
    }

    /// The node this scenario kills: the first hop on the far corner's
    /// (node `N−1`'s) route to node 0 — a genuine forwarder whenever the
    /// topology has one, otherwise (FCG, or an adjacent corner) the corner
    /// itself, so *some* node always dies and availability is comparable
    /// across topologies.
    pub fn victim_node(&self) -> u32 {
        let n = self.num_nodes();
        let topo = self.topology.build(n);
        match topo.next_hop(n - 1, 0) {
            Some(h) if h != 0 => h,
            _ => n - 1,
        }
    }
}

/// Result of a forwarder-kill run.
#[derive(Clone, Copy, Debug)]
pub struct FaultOutcome {
    /// Completion time of the faulted run, seconds.
    pub exec_seconds: f64,
    /// Completion time of the identical run without the crash, seconds.
    pub healthy_seconds: f64,
    /// Fraction of ranks that finished their program (neither lost with the
    /// victim node nor terminally failed).
    pub availability: f64,
    /// The node that was crashed.
    pub victim: u32,
    /// Ranks lost with the victim node.
    pub lost_ranks: u32,
    /// Operations that failed terminally.
    pub failed_ops: u64,
    /// Operations that completed across all ranks.
    pub completed_ops: u64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Forwarding decisions that routed around the dead node.
    pub reroutes: u64,
    /// Buffer credits reclaimed from destroyed request copies.
    pub reclaims: u64,
    /// Duplicates suppressed by the target-side dedup table.
    pub dedup_hits: u64,
    /// Corrupt frames caught by the end-to-end envelope checksum (zero in
    /// this scenario — the forwarder kill injects no corruption — but
    /// surfaced so chaos-composed schedules report through the same shape).
    pub corrupt_detected: u64,
    /// Partition windows that healed during the run (likewise zero here).
    pub partitions_healed: u64,
    /// Membership / repair activity counters (all zero with membership
    /// off).
    pub repair: RepairStats,
}

impl FaultOutcome {
    /// Completion-time cost of the crash relative to the healthy run.
    pub fn slowdown(&self) -> f64 {
        if self.healthy_seconds > 0.0 {
            self.exec_seconds / self.healthy_seconds
        } else {
            1.0
        }
    }
}

fn runtime_config(cfg: &FaultScenarioConfig) -> RuntimeConfig {
    let mut rt = RuntimeConfig::new(cfg.n_procs, cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    if cfg.membership {
        rt.membership = MembershipConfig::on();
    }
    rt
}

fn build(cfg: &FaultScenarioConfig, plan: &FaultPlan) -> Simulation {
    let ops = cfg.ops_per_rank;
    Simulation::build_with_faults(
        runtime_config(cfg),
        move |rank| {
            let mut script = Vec::new();
            if rank != Rank(0) {
                // A short stagger keeps every rank alive past t = 0 so a
                // crash always finds work in flight.
                script.push(Action::Compute(SimTime::from_micros(
                    2 + u64::from(rank.0 % 7),
                )));
                for _ in 0..ops {
                    script.push(Action::Op(vt_armci::Op::fetch_add(Rank(0), 1)));
                }
            }
            ScriptProgram::new(script)
        },
        plan,
    )
}

/// Runs the forwarder-kill scenario (plus the healthy baseline) and
/// reports completion time, availability and the recovery counters.
///
/// # Panics
/// Panics if the configuration is invalid for the topology, if the
/// `vt-analyze` pre-flight refuses to certify the crashed configuration,
/// or if the simulation deadlocks — the self-healing machinery is
/// expected to always terminate the run. [`try_run`] is the non-panicking
/// variant.
pub fn run(cfg: &FaultScenarioConfig) -> FaultOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("fault scenario failed: {e}"))
}

/// Runs the forwarder-kill scenario, surfacing abnormal simulation
/// endings as a typed error instead of panicking.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when either the healthy baseline
/// or the faulted run ends abnormally.
///
/// # Panics
/// Still panics when the `vt-analyze` pre-flight refuses to certify the
/// crashed configuration — that is a caller bug, not a runtime outcome.
pub fn try_run(cfg: &FaultScenarioConfig) -> Result<FaultOutcome, crate::RunError> {
    let victim = cfg.victim_node();
    let plan = FaultPlan::new().crash_node(cfg.kill_at, victim);
    plan.validate()?;
    // Pre-flight: the crashed configuration must stay certified — the
    // dependency graph acyclic over every crash prefix, and every
    // surviving pair still routable. A partial packing whose victim is
    // escape-critical is refused here instead of producing a run whose
    // "failed ops" are really a partitioned topology. With membership on
    // the refusal is survivable by design (live re-packing certifies at
    // repair time instead — see `crate::repair`), so the gate is skipped.
    if !cfg.membership {
        if let Err(report) = vt_analyze::certify(&runtime_config(cfg), Some(&plan)) {
            panic!("pre-flight verification failed:\n{report}");
        }
    }
    let healthy = build(cfg, &FaultPlan::default()).run()?;
    let mut faulted = build(cfg, &plan);
    if cfg.membership {
        faulted = faulted.with_repair_certifier(vt_analyze::certify_repair);
    }
    let report = faulted.run()?;
    Ok(FaultOutcome {
        exec_seconds: report.finish_time.as_secs_f64(),
        healthy_seconds: healthy.finish_time.as_secs_f64(),
        availability: report.availability(),
        victim,
        lost_ranks: report.lost_ranks.len() as u32,
        failed_ops: report.faults.failed_ops,
        completed_ops: report.metrics.total_ops(),
        retries: report.faults.retries,
        reroutes: report.faults.reroutes,
        reclaims: report.faults.reclaims,
        dedup_hits: report.faults.dedup_hits,
        corrupt_detected: report.faults.corrupt_detected,
        partitions_healed: report.faults.partitions_healed,
        repair: report.repair,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(topology: TopologyKind) -> FaultScenarioConfig {
        FaultScenarioConfig {
            n_procs: 64,
            ppn: 4,
            ops_per_rank: 4,
            kill_at: SimTime::from_micros(60),
            ..FaultScenarioConfig::paper(topology)
        }
    }

    #[test]
    fn victim_is_a_forwarder_on_forwarding_topologies() {
        let cfg = small(TopologyKind::Mfcg);
        let v = cfg.victim_node();
        assert_ne!(v, 0);
        assert_ne!(v, cfg.num_nodes() - 1, "MFCG 4x4 corner must forward");
        // FCG has no forwarders: the corner itself dies.
        assert_eq!(small(TopologyKind::Fcg).victim_node(), 15);
    }

    #[test]
    fn mfcg_survives_the_kill_with_reroutes() {
        let o = run(&small(TopologyKind::Mfcg));
        assert_eq!(o.lost_ranks, 4);
        assert!((o.availability - 60.0 / 64.0).abs() < 1e-9, "{o:?}");
        assert!(o.reroutes > 0, "{o:?}");
        assert!(o.exec_seconds >= o.healthy_seconds, "{o:?}");
        assert!(o.completed_ops > 0);
    }

    #[test]
    fn fcg_loses_ranks_but_has_nothing_to_reroute() {
        let o = run(&small(TopologyKind::Fcg));
        assert_eq!(o.lost_ranks, 4);
        assert_eq!(o.reroutes, 0, "{o:?}");
        assert!(o.availability > 0.9);
    }

    #[test]
    fn deterministic() {
        let a = run(&small(TopologyKind::Hypercube));
        let b = run(&small(TopologyKind::Hypercube));
        assert_eq!(a.exec_seconds, b.exec_seconds);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.reroutes, b.reroutes);
    }

    #[test]
    fn membership_completes_the_same_scenario_with_repair_counters() {
        // Enough work that the run outlives the ~8 ms detection horizon:
        // the interior-victim crash is repaired mid-run (route-around
        // bridges the gap until the epoch commits).
        let mut cfg = small(TopologyKind::Mfcg);
        cfg.membership = true;
        cfg.ops_per_rank = 80;
        let o = run(&cfg);
        assert_eq!(o.failed_ops, 0, "{o:?}");
        assert!(o.repair.epoch_bumps >= 1, "{o:?}");
        assert!(o.availability > 0.9);
        // Without membership the same run reports all-zero repair stats.
        let base = run(&small(TopologyKind::Mfcg));
        assert_eq!(base.repair, vt_armci::RepairStats::default());
    }
}
