//! NWChem DFT (SiOSi3) proxy (paper §VI-B, Fig. 9a).
//!
//! NWChem's DFT module builds Fock-matrix blocks under *dynamic load
//! balancing*: every process repeatedly grabs the next task index from a
//! shared counter (`nxtval`, an `ARMCI_Rmw` fetch-&-add on one process),
//! fetches the block's inputs from the distributed global array, computes,
//! and accumulates the result back. The `nxtval` counter is a textbook
//! hot spot: at ten thousand cores its request rate saturates the owner
//! node, and under FCG every request also pays the stream-thrash slow path.
//! This is the workload where the paper measures MFCG cutting total
//! execution time by up to 48 %, with CFCG in between and the Hypercube's
//! forwarding latency making it *worse* than FCG.

use serde::{Deserialize, Serialize};
use vt_armci::{Action, Op, ProcCtx, Program, Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;
use vt_simnet::SimTime;

/// Configuration of one DFT proxy run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DftConfig {
    /// Total ranks ("cores" on the paper's x-axis).
    pub n_procs: u32,
    /// Processes per node. Paper: 12 on the XT5.
    pub ppn: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Total Fock-block tasks over the whole run (fixed problem size).
    pub total_tasks: u32,
    /// Mean compute seconds per task.
    pub mean_task_seconds: f64,
    /// Bytes fetched per task (block inputs).
    pub get_bytes: u64,
    /// Bytes accumulated per task (block results).
    pub acc_bytes: u64,
    /// Root seed.
    pub seed: u64,
}

impl DftConfig {
    /// A SiOSi3-flavoured configuration: fixed total work calibrated so the
    /// `nxtval` rate approaches the hot node's service capacity near ten
    /// thousand cores, as in the paper's measurements.
    pub fn siosi3(n_procs: u32, topology: TopologyKind) -> Self {
        DftConfig {
            n_procs,
            ppn: 12,
            topology,
            total_tasks: 600_000,
            mean_task_seconds: 0.16,
            get_bytes: 8 * 1024,
            acc_bytes: 8 * 1024,
            seed: 0xDF7,
        }
    }
}

/// Result of one DFT proxy run.
#[derive(Clone, Copy, Debug)]
pub struct DftOutcome {
    /// Total execution time in seconds (paper Fig. 9a y-axis).
    pub exec_seconds: f64,
    /// Tasks actually executed (total minus the final over-grabs).
    pub tasks_executed: u64,
    /// BEER slow-path events — the hot-spot damage indicator.
    pub stream_misses: u64,
    /// Requests forwarded by intermediate CHTs.
    pub forwards: u64,
}

/// Deterministic per-task compute time: a ±50 % spread around the mean,
/// a pure function of the task id so every topology simulates identical
/// work.
fn task_seconds(task: i64, mean: f64) -> f64 {
    let mut x = task as u64;
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    let frac = (x % 1000) as f64 / 1000.0;
    mean * (0.5 + frac)
}

#[derive(Clone, Copy, PartialEq)]
enum St {
    Grab,
    Fetch,
    Work,
    Accumulate,
    Finish,
}

struct DftProgram {
    cfg: DftConfig,
    state: St,
    task: i64,
}

impl DftProgram {
    /// Owner of a task's input block: spread round-robin over all ranks.
    fn input_owner(&self, task: i64) -> Rank {
        Rank((task as u64 % u64::from(self.cfg.n_procs)) as u32)
    }

    /// Owner of a task's output block: a decorrelated spread.
    fn output_owner(&self, task: i64) -> Rank {
        Rank(((task as u64).wrapping_mul(7).wrapping_add(3) % u64::from(self.cfg.n_procs)) as u32)
    }
}

impl Program for DftProgram {
    fn next(&mut self, ctx: &ProcCtx) -> Action {
        loop {
            match self.state {
                St::Grab => {
                    self.state = St::Fetch;
                    return Action::Op(Op::fetch_add(Rank(0), 1));
                }
                St::Fetch => {
                    self.task = match ctx.last_fetch {
                        Some(v) => v,
                        // St::Fetch is only ever entered from St::Grab's
                        // fetch-&-add, which always deposits a value.
                        None => unreachable!("St::Fetch follows a fetch-&-add op"),
                    };
                    if self.task >= i64::from(self.cfg.total_tasks) {
                        self.state = St::Finish;
                        continue;
                    }
                    self.state = St::Work;
                    return Action::Op(Op::get_v(
                        self.input_owner(self.task),
                        8,
                        self.cfg.get_bytes / 8,
                    ));
                }
                St::Work => {
                    self.state = St::Accumulate;
                    return Action::Compute(SimTime::from_micros_f64(
                        task_seconds(self.task, self.cfg.mean_task_seconds) * 1e6,
                    ));
                }
                St::Accumulate => {
                    self.state = St::Grab;
                    return Action::Op(Op::acc(self.output_owner(self.task), self.cfg.acc_bytes));
                }
                St::Finish => {
                    self.state = St::Grab; // unreachable; keeps the machine total
                    return Action::Done;
                }
            }
        }
    }
}

/// Runs the DFT proxy.
///
/// # Panics
/// Panics if the simulation deadlocks; [`try_run`] is the non-panicking
/// variant.
pub fn run(cfg: &DftConfig) -> DftOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("DFT run failed: {e}"))
}

/// Runs the DFT proxy, surfacing abnormal simulation endings as a typed
/// error.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the simulation deadlocks or
/// times out.
pub fn try_run(cfg: &DftConfig) -> Result<DftOutcome, crate::RunError> {
    let mut rt = RuntimeConfig::new(cfg.n_procs, cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    let sim = Simulation::build(rt, |_| DftProgram {
        cfg: *cfg,
        state: St::Grab,
        task: 0,
    });
    let report = sim.run()?;
    // Each executed task completes three ops (fadd + getv + acc); the final
    // over-grab of each rank adds one fadd.
    let total_ops = report.metrics.total_ops();
    let tasks_executed = total_ops.saturating_sub(u64::from(cfg.n_procs)) / 3;
    Ok(DftOutcome {
        exec_seconds: report.finish_time.as_secs_f64(),
        tasks_executed,
        stream_misses: report.net.stream_misses,
        forwards: report.cht_totals.forwarded,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(topology: TopologyKind, n_procs: u32) -> DftConfig {
        DftConfig {
            n_procs,
            ppn: 4,
            topology,
            total_tasks: 200,
            mean_task_seconds: 0.002,
            get_bytes: 2048,
            acc_bytes: 2048,
            seed: 5,
        }
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let out = run(&tiny(TopologyKind::Fcg, 16));
        assert_eq!(out.tasks_executed, 200);
    }

    #[test]
    fn strong_scaling_without_contention() {
        let p16 = run(&tiny(TopologyKind::Fcg, 16));
        let p64 = run(&tiny(TopologyKind::Fcg, 64));
        assert!(
            p64.exec_seconds < p16.exec_seconds,
            "more cores must be faster at this scale: {} !< {}",
            p64.exec_seconds,
            p16.exec_seconds
        );
    }

    #[test]
    fn task_times_are_deterministic_and_spread() {
        let a = task_seconds(42, 1.0);
        assert_eq!(a, task_seconds(42, 1.0));
        assert!((0.5..1.5).contains(&a));
        let b = task_seconds(43, 1.0);
        assert_ne!(a, b);
        // Mean over many tasks approaches the configured mean.
        let mean: f64 = (0..10_000).map(|t| task_seconds(t, 1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn identical_work_across_topologies() {
        let fcg = run(&tiny(TopologyKind::Fcg, 16));
        let mfcg = run(&tiny(TopologyKind::Mfcg, 16));
        assert_eq!(fcg.tasks_executed, mfcg.tasks_executed);
        assert!(mfcg.forwards > 0 || fcg.forwards == 0);
    }

    #[test]
    fn deterministic() {
        let a = run(&tiny(TopologyKind::Cfcg, 32));
        let b = run(&tiny(TopologyKind::Cfcg, 32));
        assert_eq!(a.exec_seconds, b.exec_seconds);
        assert_eq!(a.stream_misses, b.stream_misses);
    }
}
