//! A UPC-style fine-grained random-access workload (GUPS).
//!
//! The paper's future work (§VIII) asks how virtual topologies behave under
//! PGAS *languages* such as UPC, whose hallmark is fine-grained shared
//! access: millions of tiny remote updates to random locations in the
//! global address space. This proxy performs random 8-byte remote
//! accumulates (the GUPS table-update pattern; accumulate rides the CHT
//! path, so the virtual topology applies on every update).
//!
//! Two regimes fall out, matching the paper's intuition:
//! * **uniform** targets — no hot spot; FCG's direct path wins and the
//!   virtual topologies pay their forwarding overhead on every update;
//! * **skewed** targets (a popular table region) — the hot owner saturates
//!   and the topologies invert, exactly like Figs. 6/7.

use serde::{Deserialize, Serialize};
use vt_armci::{Action, Op, ProcCtx, Program, Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;

/// Configuration of a GUPS run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GupsConfig {
    /// Total ranks.
    pub n_procs: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Updates issued per rank.
    pub updates_per_rank: u32,
    /// Fraction (0–1) of updates aimed at rank 0's table partition — 0 for
    /// classic uniform GUPS, higher for hot-spot skew.
    pub skew_to_rank0: f64,
    /// Root seed.
    pub seed: u64,
}

impl GupsConfig {
    /// A uniform GUPS run.
    pub fn uniform(n_procs: u32, topology: TopologyKind) -> Self {
        GupsConfig {
            n_procs,
            ppn: 4,
            topology,
            updates_per_rank: 64,
            skew_to_rank0: 0.0,
            seed: 0x6705,
        }
    }

    /// A skewed run with `skew` of the updates hitting rank 0.
    pub fn skewed(n_procs: u32, topology: TopologyKind, skew: f64) -> Self {
        assert!((0.0..=1.0).contains(&skew));
        GupsConfig {
            skew_to_rank0: skew,
            ..GupsConfig::uniform(n_procs, topology)
        }
    }
}

/// Result of a GUPS run.
#[derive(Clone, Copy, Debug)]
pub struct GupsOutcome {
    /// Total execution time in seconds.
    pub exec_seconds: f64,
    /// Billions of updates per second (the GUPS metric).
    pub gups: f64,
    /// Mean latency of one update in microseconds.
    pub mean_update_us: f64,
}

struct GupsProgram {
    cfg: GupsConfig,
    issued: u32,
    rng_state: u64,
}

impl GupsProgram {
    fn next_target(&mut self) -> Rank {
        // SplitMix64 stream per rank: deterministic, uncorrelated.
        self.rng_state = self.rng_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let skew_draw = (z % 10_000) as f64 / 10_000.0;
        if skew_draw < self.cfg.skew_to_rank0 {
            Rank(0)
        } else {
            Rank(((z >> 16) % u64::from(self.cfg.n_procs)) as u32)
        }
    }
}

impl Program for GupsProgram {
    fn next(&mut self, _ctx: &ProcCtx) -> Action {
        if self.issued < self.cfg.updates_per_rank {
            self.issued += 1;
            let target = self.next_target();
            return Action::Op(Op::acc(target, 8));
        }
        if self.issued == self.cfg.updates_per_rank {
            self.issued += 1;
            return Action::Barrier;
        }
        Action::Done
    }
}

/// Runs GUPS and reports throughput.
///
/// # Panics
/// Panics if the simulation deadlocks; [`try_run`] is the non-panicking
/// variant.
pub fn run(cfg: &GupsConfig) -> GupsOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("GUPS run failed: {e}"))
}

/// Runs GUPS, surfacing abnormal simulation endings as a typed error.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the simulation deadlocks or
/// times out.
pub fn try_run(cfg: &GupsConfig) -> Result<GupsOutcome, crate::RunError> {
    let mut rt = RuntimeConfig::new(cfg.n_procs, cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    let sim = Simulation::build(rt, |rank| GupsProgram {
        cfg: *cfg,
        issued: 0,
        rng_state: cfg.seed ^ (u64::from(rank.0) << 32),
    });
    let report = sim.run()?;
    let _ = report.metrics.per_rank.len();
    let updates = u64::from(cfg.n_procs) * u64::from(cfg.updates_per_rank);
    let secs = report.finish_time.as_secs_f64();
    let mean_us: f64 = report
        .metrics
        .per_rank
        .iter()
        .map(|s| s.latency_us.mean())
        .sum::<f64>()
        / f64::from(cfg.n_procs);
    Ok(GupsOutcome {
        exec_seconds: secs,
        gups: if secs > 0.0 {
            updates as f64 / secs / 1e9
        } else {
            0.0
        },
        mean_update_us: mean_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_gups_favours_fcg() {
        let fcg = run(&GupsConfig::uniform(64, TopologyKind::Fcg));
        let mfcg = run(&GupsConfig::uniform(64, TopologyKind::Mfcg));
        assert!(
            fcg.mean_update_us < mfcg.mean_update_us,
            "uniform fine-grained access: direct path must win ({} vs {})",
            fcg.mean_update_us,
            mfcg.mean_update_us
        );
        assert!(fcg.gups > 0.0);
    }

    #[test]
    fn heavy_skew_flips_the_ranking() {
        let fcg = run(&GupsConfig::skewed(256, TopologyKind::Fcg, 0.9));
        let mfcg = run(&GupsConfig::skewed(256, TopologyKind::Mfcg, 0.9));
        assert!(
            mfcg.exec_seconds < fcg.exec_seconds,
            "hot-spot skew: attenuation must win ({} vs {})",
            mfcg.exec_seconds,
            fcg.exec_seconds
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&GupsConfig::skewed(32, TopologyKind::Cfcg, 0.5));
        let b = run(&GupsConfig::skewed(32, TopologyKind::Cfcg, 0.5));
        assert_eq!(a.exec_seconds, b.exec_seconds);
    }

    #[test]
    fn targets_are_spread_without_skew() {
        let mut p = GupsProgram {
            cfg: GupsConfig::uniform(64, TopologyKind::Fcg),
            issued: 0,
            rng_state: 42,
        };
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(p.next_target().0);
        }
        assert!(seen.len() > 40, "only {} distinct targets", seen.len());
    }
}
