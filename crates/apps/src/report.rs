//! Plain-text report formatting for the figure harnesses.
//!
//! Output follows the paper's figures: each series is a `# label` header
//! followed by whitespace-separated `x y` rows — directly loadable by
//! gnuplot or any plotting tool.

use std::fmt::Write as _;

/// A named (x, y) series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// A series with a label and points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at the largest x, if any.
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Mean of the y values (0 for an empty series).
    pub fn mean_y(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, y)| y).sum::<f64>() / self.points.len() as f64
    }
}

/// A figure panel: a title, axis names, and one or more series.
#[derive(Clone, Debug)]
pub struct Panel {
    /// Panel title, e.g. `Figure 6(a): FCG & MFCG with No Contention`.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The series.
    pub series: Vec<Series>,
}

impl Panel {
    /// An empty panel.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Panel {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a series and returns self (builder style).
    pub fn with(mut self, series: Series) -> Self {
        self.series.push(series);
        self
    }

    /// Renders the panel as gnuplot-ready text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# ===== {} =====", self.title);
        let _ = writeln!(out, "# x: {}    y: {}", self.x_label, self.y_label);
        for s in &self.series {
            let _ = writeln!(out, "\n# series: {}", s.label);
            for &(x, y) in &s.points {
                let _ = writeln!(out, "{x:>12.3} {y:>16.3}");
            }
        }
        out
    }

    /// Finds a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// An aligned text table (used for Fig. 5-style numeric summaries).
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_stats() {
        let s = Series::new("fcg", vec![(1.0, 10.0), (2.0, 20.0)]);
        assert_eq!(s.last_y(), Some(20.0));
        assert_eq!(s.mean_y(), 15.0);
        assert_eq!(Series::new("e", vec![]).mean_y(), 0.0);
    }

    #[test]
    fn panel_renders_all_series() {
        let p = Panel::new("Figure X", "rank", "us")
            .with(Series::new("fcg", vec![(1.0, 2.0)]))
            .with(Series::new("mfcg", vec![(1.0, 3.0)]));
        let text = p.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("# series: fcg"));
        assert!(text.contains("# series: mfcg"));
        assert!(p.series("mfcg").is_some());
        assert!(p.series("nope").is_none());
    }

    #[test]
    fn table_aligns_columns() {
        let mut t = Table::new(&["topology", "MB"]);
        t.row(&["fcg".into(), "1424.0".into()]);
        t.row(&["hypercube".into(), "630.1".into()]);
        let text = t.render();
        assert!(text.contains("topology"));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
