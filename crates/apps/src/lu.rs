//! NAS LU proxy (paper §VI-A, Fig. 8).
//!
//! The NAS LU benchmark applies SSOR sweeps to a 3-D grid decomposed into
//! vertical pencils over a 2-D process grid. Its communication is
//! *neighbour-only*: every sweep exchanges block faces with the four mesh
//! neighbours, and an iteration ends in a global synchronisation. There is
//! no hot spot — which is exactly why the paper finds all virtual topologies
//! performing comparably on LU, with a slight edge for the leaner
//! topologies (smaller CHT pools → less cache pressure) at lower process
//! counts.
//!
//! Face exchanges use `ARMCI_PutV`-style strided transfers (a face of a 3-D
//! block is noncontiguous), so they do traverse the CHT and the virtual
//! topology; with dense rank placement, mesh neighbours usually live on the
//! same node or on a directly-connected one, so MFCG forwards only a small
//! fraction of them.

use serde::{Deserialize, Serialize};
use vt_armci::{Action, Op, ProcCtx, Program, Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;
use vt_simnet::SimTime;

/// Configuration of one LU run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LuConfig {
    /// Total ranks (must admit a near-square 2-D factorisation).
    pub n_procs: u32,
    /// Processes per node. Paper: 4 on the XT5 runs at this scale.
    pub ppn: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Grid points per side (class C = 162).
    pub grid_points: u32,
    /// SSOR time steps (class C = 250).
    pub iterations: u32,
    /// Serial compute seconds per time step (divided evenly over ranks).
    pub serial_seconds_per_iter: f64,
    /// Model the SSOR wavefront *dependencies* with notify-carrying faces.
    ///
    /// Real LU pipelines the wavefront at k-plane granularity (~160 planes
    /// per sweep), which keeps the fill cost below a few percent but would
    /// multiply the event count beyond what is practical to simulate at
    /// 1 536 processes. With `wavefront = false` (the default, used for
    /// Fig. 8) sweeps synchronise only at the per-iteration barrier — the
    /// right cost model when the pipeline is fine-grained. With
    /// `wavefront = true` faces carry notifications and each sweep is a
    /// genuine whole-block wavefront; use it at small scale to study
    /// dependency-driven behaviour.
    pub wavefront: bool,
    /// Root seed.
    pub seed: u64,
}

impl LuConfig {
    /// A class-C-like configuration calibrated to the paper's magnitudes
    /// (~1 200 s at 192 processes, strong-scaling down from there).
    ///
    /// 12 processes per node, as on the XT5's 12-core nodes — which also
    /// makes the node counts of the paper's process counts (192–1 536)
    /// powers of two, so the Hypercube is constructible.
    pub fn class_c(n_procs: u32, topology: TopologyKind) -> Self {
        LuConfig {
            n_procs,
            ppn: 12,
            topology,
            grid_points: 162,
            iterations: 250,
            serial_seconds_per_iter: 880.0,
            wavefront: false,
            seed: 0x001_u64,
        }
    }
}

/// Result of one LU run.
#[derive(Clone, Copy, Debug)]
pub struct LuOutcome {
    /// Total execution time in seconds — the paper's Fig. 8 quantity.
    pub exec_seconds: f64,
    /// Fraction of CHT requests that needed forwarding.
    pub forward_fraction: f64,
    /// BEER slow-path events (should stay near zero: no hot spot).
    pub stream_misses: u64,
}

/// Near-square factorisation `px × py = n` with `px ≤ py`.
///
/// # Panics
/// Panics if `n` has no factorisation with `px ≥ 2` other than `1 × n` and
/// `n > 3` (prime process counts don't appear in NAS configurations).
pub fn process_grid(n: u32) -> (u32, u32) {
    assert!(n >= 1);
    let mut px = (n as f64).sqrt().floor() as u32;
    while px > 1 && !n.is_multiple_of(px) {
        px -= 1;
    }
    (px.max(1), n / px.max(1))
}

struct LuProgram {
    rank: Rank,
    cfg: LuConfig,
    px: u32,
    py: u32,
    iter: u32,
    step: u8,
    /// Cumulative notification threshold this rank has waited up to.
    expected: u64,
    face_x: Op, // exchange with the ±x (same-row) neighbours
    face_y: Op, // exchange with the ±y neighbours
}

impl LuProgram {
    fn new(rank: Rank, cfg: LuConfig) -> Self {
        let (px, py) = process_grid(cfg.n_procs);
        let n = u64::from(cfg.grid_points);
        // A pencil is (n/px) x (n/py) x n points, 5 solution variables of
        // 8 bytes each. The x-face spans (n/py) x n points.
        let x_face_bytes = (n / u64::from(px).max(1)).max(1) * n * 5 * 8 / 8; // one variable slab per exchange step
        let y_face_bytes = (n / u64::from(py).max(1)).max(1) * n * 5 * 8 / 8;
        let segs = cfg.grid_points.clamp(1, 64);
        LuProgram {
            rank,
            cfg,
            px,
            py,
            iter: 0,
            step: 0,
            expected: 0,
            face_x: Op::put_v(rank, segs, (x_face_bytes / u64::from(segs)).max(8)),
            face_y: Op::put_v(rank, segs, (y_face_bytes / u64::from(segs)).max(8)),
        }
    }

    /// Number of upstream faces feeding this rank's *lower* sweep (from the
    /// south-west wavefront origin).
    fn upstream_lower(&self) -> u64 {
        let (x, y) = self.coords();
        u64::from(x > 0) + u64::from(y > 0)
    }

    /// Number of upstream faces feeding the *upper* sweep (from the
    /// north-east corner).
    fn upstream_upper(&self) -> u64 {
        let (x, y) = self.coords();
        u64::from(x + 1 < self.px) + u64::from(y + 1 < self.py)
    }

    fn coords(&self) -> (u32, u32) {
        (self.rank.0 % self.px, self.rank.0 / self.px)
    }

    fn neighbor(&self, dx: i32, dy: i32) -> Option<Rank> {
        let (x, y) = self.coords();
        let nx = x as i32 + dx;
        let ny = y as i32 + dy;
        if nx < 0 || ny < 0 || nx >= self.px as i32 || ny >= self.py as i32 {
            return None;
        }
        Some(Rank(ny as u32 * self.px + nx as u32))
    }

    fn compute_time(&self) -> SimTime {
        SimTime::from_micros_f64(
            self.cfg.serial_seconds_per_iter / f64::from(self.cfg.n_procs) * 1e6 / 2.0,
        )
    }
}

impl Program for LuProgram {
    fn next(&mut self, _ctx: &ProcCtx) -> Action {
        loop {
            if self.iter >= self.cfg.iterations {
                return Action::Done;
            }
            let step = self.step;
            self.step += 1;
            // One SSOR time step as a genuine wavefront: the lower sweep
            // waits for the south-west upstream faces (notify-carrying
            // puts), computes and pushes north-east; the upper sweep does
            // the reverse; a barrier closes the step (residual/global sum).
            // Notification thresholds are cumulative; the per-iteration
            // barrier keeps sweeps of different iterations from mixing.
            let action = match step {
                0 => {
                    if self.cfg.wavefront {
                        self.expected += self.upstream_lower();
                        Some(Action::WaitNotify(self.expected))
                    } else {
                        None
                    }
                }
                1 => Some(Action::Compute(self.compute_time())),
                2 => self.neighbor(1, 0).map(|nb| {
                    Action::Op(
                        Op {
                            target: nb,
                            ..self.face_x
                        }
                        .with_notify(),
                    )
                }),
                3 => self.neighbor(0, 1).map(|nb| {
                    Action::Op(
                        Op {
                            target: nb,
                            ..self.face_y
                        }
                        .with_notify(),
                    )
                }),
                4 => {
                    if self.cfg.wavefront {
                        self.expected += self.upstream_upper();
                        Some(Action::WaitNotify(self.expected))
                    } else {
                        None
                    }
                }
                5 => Some(Action::Compute(self.compute_time())),
                6 => self.neighbor(-1, 0).map(|nb| {
                    Action::Op(
                        Op {
                            target: nb,
                            ..self.face_x
                        }
                        .with_notify(),
                    )
                }),
                7 => self.neighbor(0, -1).map(|nb| {
                    Action::Op(
                        Op {
                            target: nb,
                            ..self.face_y
                        }
                        .with_notify(),
                    )
                }),
                8 => Some(Action::Barrier),
                _ => {
                    self.iter += 1;
                    self.step = 0;
                    None
                }
            };
            if let Some(a) = action {
                return a;
            }
        }
    }
}

/// Runs LU and reports the execution time.
///
/// # Panics
/// Panics if the simulation deadlocks; [`try_run`] is the non-panicking
/// variant.
pub fn run(cfg: &LuConfig) -> LuOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("LU run failed: {e}"))
}

/// Runs LU, surfacing abnormal simulation endings as a typed error.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the simulation deadlocks or
/// times out.
pub fn try_run(cfg: &LuConfig) -> Result<LuOutcome, crate::RunError> {
    let mut rt = RuntimeConfig::new(cfg.n_procs, cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    let sim = Simulation::build(rt, |rank| LuProgram::new(rank, *cfg));
    let report = sim.run()?;
    let handled = report.cht_totals.serviced + report.cht_totals.forwarded;
    Ok(LuOutcome {
        exec_seconds: report.finish_time.as_secs_f64(),
        forward_fraction: if handled == 0 {
            0.0
        } else {
            report.cht_totals.forwarded as f64 / handled as f64
        },
        stream_misses: report.net.stream_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(topology: TopologyKind) -> LuConfig {
        LuConfig {
            n_procs: 16,
            ppn: 4,
            topology,
            grid_points: 32,
            iterations: 3,
            serial_seconds_per_iter: 0.016,
            wavefront: false,
            seed: 3,
        }
    }

    #[test]
    fn wavefront_serialises_the_sweep() {
        // With whole-block wavefront dependencies, an iteration's critical
        // path crosses the process grid: execution must be substantially
        // longer than the dependency-free model, and bounded by the full
        // serialisation of all stages.
        let free = run(&tiny(TopologyKind::Fcg));
        let mut wf_cfg = tiny(TopologyKind::Fcg);
        wf_cfg.wavefront = true;
        let wf = run(&wf_cfg);
        assert!(
            wf.exec_seconds > 1.5 * free.exec_seconds,
            "wavefront {} !>> free {}",
            wf.exec_seconds,
            free.exec_seconds
        );
    }

    #[test]
    fn wavefront_completes_on_all_topologies() {
        for kind in [TopologyKind::Mfcg, TopologyKind::Cfcg] {
            let mut cfg = tiny(kind);
            cfg.wavefront = true;
            let out = run(&cfg);
            assert!(out.exec_seconds > 0.0);
        }
    }

    #[test]
    fn process_grid_factors() {
        assert_eq!(process_grid(192), (12, 16));
        assert_eq!(process_grid(384), (16, 24));
        assert_eq!(process_grid(768), (24, 32));
        assert_eq!(process_grid(1536), (32, 48));
        assert_eq!(process_grid(16), (4, 4));
        assert_eq!(process_grid(1), (1, 1));
    }

    #[test]
    fn runs_and_scales_down_with_more_procs() {
        let small = run(&tiny(TopologyKind::Fcg));
        let mut bigger_cfg = tiny(TopologyKind::Fcg);
        bigger_cfg.n_procs = 64;
        let big = run(&bigger_cfg);
        assert!(small.exec_seconds > 0.0);
        assert!(
            big.exec_seconds < small.exec_seconds,
            "strong scaling: {} !< {}",
            big.exec_seconds,
            small.exec_seconds
        );
    }

    #[test]
    fn topologies_are_comparable_without_hot_spot() {
        let fcg = run(&tiny(TopologyKind::Fcg));
        let mfcg = run(&tiny(TopologyKind::Mfcg));
        let ratio = mfcg.exec_seconds / fcg.exec_seconds;
        assert!(
            (0.5..2.0).contains(&ratio),
            "LU should be topology-insensitive, got ratio {ratio}"
        );
    }

    #[test]
    fn mfcg_forwards_some_faces_fcg_none() {
        let fcg = run(&tiny(TopologyKind::Fcg));
        assert_eq!(fcg.forward_fraction, 0.0);
        let mut cfg = tiny(TopologyKind::Mfcg);
        cfg.n_procs = 64; // 16 nodes as a 4x4 mesh: some cross-row faces
        let mfcg = run(&cfg);
        assert!(mfcg.forward_fraction > 0.0);
        assert!(mfcg.forward_fraction < 0.9);
    }

    #[test]
    fn deterministic() {
        let a = run(&tiny(TopologyKind::Cfcg));
        let b = run(&tiny(TopologyKind::Cfcg));
        assert_eq!(a.exec_seconds, b.exec_seconds);
    }
}
