//! NWChem CCSD(T) water-model proxy (paper §VI-B, Fig. 9b).
//!
//! Coupled-cluster amplitude updates are accumulate-heavy with *spread*
//! targets: there is no single hot process, so virtual topologies buy
//! nothing on the communication side and FCG's direct path keeps a small
//! edge. What CCSD(T) is instead is memory-hungry: node memory is close to
//! full, and ARMCI's `O(N)` FCG buffer pools push the node over the edge at
//! scale. The paper: *"The primary benefit of MFCG is the ability to
//! significantly reduce memory consumption of \[the\] ARMCI low-level runtime
//! library. This spares much more memory to be used by applications and
//! help them achieve better scaling."*
//!
//! The proxy models that directly: each node has a fixed application working
//! set plus the runtime's topology-dependent footprint; when the sum exceeds
//! the node's memory budget, compute slows by a paging factor. FCG crosses
//! the budget near ten thousand cores — the crossover in Fig. 9b.

use serde::{Deserialize, Serialize};
use vt_armci::{node_memory, Action, Op, ProcCtx, Program, Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;
use vt_simnet::SimTime;

/// Configuration of one CCSD proxy run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CcsdConfig {
    /// Total ranks ("cores" on the paper's x-axis).
    pub n_procs: u32,
    /// Processes per node. Paper: 12.
    pub ppn: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Serial compute seconds of the scalable amplitude work.
    pub serial_seconds: f64,
    /// Per-rank non-scalable seconds (redundant integrals, I/O, replicated
    /// work) — the reason CCSD(T)'s strong scaling saturates.
    pub fixed_seconds_per_proc: f64,
    /// Compute seconds per work grain (sets communication granularity).
    pub grain_seconds: f64,
    /// Bytes accumulated per grain.
    pub acc_bytes: u64,
    /// Node memory budget in bytes.
    pub node_mem_bytes: u64,
    /// Application working set per node in bytes (block caches, local
    /// amplitude tiles).
    pub app_bytes_per_node: u64,
    /// Compute slowdown per fraction of memory overflow (paging).
    pub paging_slowdown_per_overflow: f64,
    /// Root seed.
    pub seed: u64,
}

impl CcsdConfig {
    /// The (H₂O)₁₁ water-model flavour: heavy fixed per-process work (the
    /// paper's curves barely drop from 2 000 to 20 000 cores) and a node
    /// memory budget that FCG's buffer pools overflow near 10 000 cores.
    pub fn water(n_procs: u32, topology: TopologyKind) -> Self {
        CcsdConfig {
            n_procs,
            ppn: 12,
            topology,
            serial_seconds: 4_000_000.0,
            fixed_seconds_per_proc: 800.0,
            grain_seconds: 5.0,
            acc_bytes: 12 * 1024,
            node_mem_bytes: 16 << 30,
            app_bytes_per_node: (154 << 30) / 10, // 15.4 GiB
            paging_slowdown_per_overflow: 50.0,
            seed: 0xCC5D,
        }
    }
}

/// Result of one CCSD proxy run.
#[derive(Clone, Copy, Debug)]
pub struct CcsdOutcome {
    /// Total execution time in seconds (paper Fig. 9b y-axis).
    pub exec_seconds: f64,
    /// The paging slowdown factor applied to compute (1.0 = memory fits).
    pub paging_factor: f64,
    /// Modelled total node memory use in bytes (app + runtime).
    pub node_mem_used: u64,
}

/// Computes the paging factor for a configuration: 1.0 while the node's
/// application working set plus the runtime footprint fits the budget,
/// growing linearly with the overflow fraction beyond it.
pub fn paging_factor(cfg: &CcsdConfig) -> (f64, u64) {
    let rt = runtime_config(cfg);
    let topo = cfg.topology.build(rt.num_nodes());
    let mem = node_memory(&rt, &topo, 0);
    let used = cfg.app_bytes_per_node + mem.cht_pool_bytes + mem.bookkeeping_bytes;
    let factor = if used <= cfg.node_mem_bytes {
        1.0
    } else {
        let overflow = (used - cfg.node_mem_bytes) as f64 / cfg.node_mem_bytes as f64;
        1.0 + cfg.paging_slowdown_per_overflow * overflow
    };
    (factor, used)
}

fn runtime_config(cfg: &CcsdConfig) -> RuntimeConfig {
    let mut rt = RuntimeConfig::new(cfg.n_procs, cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    rt
}

struct CcsdProgram {
    rank: Rank,
    cfg: CcsdConfig,
    paging: f64,
    grains_left: u64,
    fixed_left: f64,
    computed: bool,
    grain_idx: u64,
}

impl CcsdProgram {
    /// Spread accumulate target: a per-rank decorrelated walk over all
    /// ranks, avoiding any hot spot.
    fn acc_target(&self) -> Rank {
        let x = (u64::from(self.rank.0) << 32) | self.grain_idx;
        let mut h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        Rank((h % u64::from(self.cfg.n_procs)) as u32)
    }
}

impl Program for CcsdProgram {
    fn next(&mut self, _ctx: &ProcCtx) -> Action {
        // Interleave: grain compute, then its accumulate; a slice of the
        // fixed work is folded into each grain, remainder at the end.
        if self.grains_left > 0 {
            if !self.computed {
                self.computed = true;
                let fixed_slice = self.fixed_left / self.grains_left as f64;
                self.fixed_left -= fixed_slice;
                let secs = (self.cfg.grain_seconds + fixed_slice) * self.paging;
                return Action::Compute(SimTime::from_micros_f64(secs * 1e6));
            }
            self.computed = false;
            self.grains_left -= 1;
            self.grain_idx += 1;
            return Action::Op(Op::acc(self.acc_target(), self.cfg.acc_bytes));
        }
        if self.fixed_left > 0.0 {
            let secs = self.fixed_left * self.paging;
            self.fixed_left = 0.0;
            return Action::Compute(SimTime::from_micros_f64(secs * 1e6));
        }
        Action::Done
    }
}

/// Runs the CCSD proxy.
///
/// # Panics
/// Panics if the simulation deadlocks; [`try_run`] is the non-panicking
/// variant.
pub fn run(cfg: &CcsdConfig) -> CcsdOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("CCSD run failed: {e}"))
}

/// Runs the CCSD proxy, surfacing abnormal simulation endings as a typed
/// error.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the simulation deadlocks or
/// times out.
pub fn try_run(cfg: &CcsdConfig) -> Result<CcsdOutcome, crate::RunError> {
    let (paging, used) = paging_factor(cfg);
    let grains_per_proc =
        (cfg.serial_seconds / f64::from(cfg.n_procs) / cfg.grain_seconds).ceil() as u64;
    let rt = runtime_config(cfg);
    let sim = Simulation::build(rt, |rank| CcsdProgram {
        rank,
        cfg: *cfg,
        paging,
        grains_left: grains_per_proc,
        fixed_left: cfg.fixed_seconds_per_proc,
        computed: false,
        grain_idx: 0,
    });
    let report = sim.run()?;
    Ok(CcsdOutcome {
        exec_seconds: report.finish_time.as_secs_f64(),
        paging_factor: paging,
        node_mem_used: used,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(topology: TopologyKind, n_procs: u32) -> CcsdConfig {
        CcsdConfig {
            n_procs,
            ppn: 4,
            topology,
            serial_seconds: 2.0,
            fixed_seconds_per_proc: 0.05,
            grain_seconds: 0.01,
            acc_bytes: 4096,
            node_mem_bytes: 1 << 30,
            app_bytes_per_node: 900 << 20,
            paging_slowdown_per_overflow: 50.0,
            seed: 2,
        }
    }

    #[test]
    fn runs_and_reports_time() {
        let out = run(&tiny(TopologyKind::Fcg, 16));
        assert!(out.exec_seconds > 0.0);
        assert_eq!(out.paging_factor, 1.0);
    }

    #[test]
    fn paging_kicks_in_when_memory_overflows() {
        let mut cfg = tiny(TopologyKind::Fcg, 64);
        cfg.app_bytes_per_node = cfg.node_mem_bytes; // pool pushes it over
        let (factor, used) = paging_factor(&cfg);
        assert!(factor > 1.0);
        assert!(used > cfg.node_mem_bytes);
        let out = run(&cfg);
        assert!(out.paging_factor > 1.0);
    }

    #[test]
    fn fcg_overflows_before_mfcg() {
        // With the working set near the budget, FCG's larger pool overflows
        // while MFCG still fits — the Fig. 9b crossover mechanism.
        let mut fcg = tiny(TopologyKind::Fcg, 512);
        fcg.app_bytes_per_node = (1 << 30) - (20 << 20);
        let mut mfcg = fcg;
        mfcg.topology = TopologyKind::Mfcg;
        let (f_fcg, _) = paging_factor(&fcg);
        let (f_mfcg, _) = paging_factor(&mfcg);
        assert!(f_fcg > 1.0, "FCG should page, factor {f_fcg}");
        assert_eq!(f_mfcg, 1.0, "MFCG should fit");
        let out_fcg = run(&fcg);
        let out_mfcg = run(&mfcg);
        assert!(
            out_fcg.exec_seconds > out_mfcg.exec_seconds,
            "paging FCG must lose: {} !> {}",
            out_fcg.exec_seconds,
            out_mfcg.exec_seconds
        );
    }

    #[test]
    fn without_memory_pressure_fcg_is_not_slower() {
        let fcg = run(&tiny(TopologyKind::Fcg, 64));
        let mfcg = run(&tiny(TopologyKind::Mfcg, 64));
        assert!(
            fcg.exec_seconds <= mfcg.exec_seconds * 1.02,
            "no hot spot, no paging: FCG keeps its edge ({} vs {})",
            fcg.exec_seconds,
            mfcg.exec_seconds
        );
    }

    #[test]
    fn deterministic() {
        let a = run(&tiny(TopologyKind::Mfcg, 32));
        let b = run(&tiny(TopologyKind::Mfcg, 32));
        assert_eq!(a.exec_seconds, b.exec_seconds);
    }
}
