//! The membership-repair experiment: survive a crash that static
//! route-around provably cannot.
//!
//! PR 3 established (and `vt-analyze` pins) that partial LDF packings are
//! *not* single-fault tolerant everywhere: crashing an escape-critical
//! boundary node — MFCG/23 node 2, CFCG/29 node 24 — genuinely partitions
//! the live set, so the static analyzer refuses the configuration and the
//! retry/route-around machinery alone would diagnose unreachable
//! operations. This experiment runs exactly those refused scenarios with
//! **membership repair** enabled: the phi-accrual failure detector
//! (piggybacked on request/ack traffic, with idle probes as fallback)
//! confirms the crash, an epoch commit drains in-flight requests and
//! re-packs the survivors lowest-dimension-first, `vt-analyze` certifies
//! the repaired topology before it is committed, and the deferred
//! operations complete over the new grid.
//!
//! Expected shape: the static analyzer still refuses the crashed *static*
//! packing (that pin is kept), the membership run completes every
//! surviving rank's program with zero credit leaks, and the post-repair
//! topology — the original kind re-packed over the survivors, or a lower
//! rung of the fallback ladder — re-certifies.

use serde::{Deserialize, Serialize};
use vt_armci::{
    Action, FaultPlan, MembershipConfig, Rank, RepairStats, RuntimeConfig, ScriptProgram, SimTime,
    Simulation,
};
use vt_core::{fallback_ladder, TopologyKind};

/// Configuration of a membership-repair run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RepairScenarioConfig {
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Number of nodes (the interesting populations are partial packings).
    pub nodes: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Blocking fetch-&-adds each rank issues at the hot rank.
    pub ops_per_rank: u32,
    /// The node to crash.
    pub victim: u32,
    /// When the victim is crashed.
    pub kill_at: SimTime,
    /// Root seed.
    pub seed: u64,
}

impl RepairScenarioConfig {
    /// The MFCG boundary scenario: 5x5 grid with 23 populated, node 2 =
    /// (2,0) is the sole escape hop between (3,0) and (2,4) — the victim
    /// the analyzer refuses as a static crash.
    pub fn mfcg_boundary() -> Self {
        RepairScenarioConfig {
            topology: TopologyKind::Mfcg,
            nodes: 23,
            ppn: 2,
            ops_per_rank: 4,
            victim: 2,
            kill_at: SimTime::from_micros(50),
            seed: 0x4E4A,
        }
    }

    /// The CFCG boundary scenario: 4x3x3 grid with 29 populated, node 24
    /// = (0,0,2) is the sole in-slice forwarder toward (0,1,2).
    pub fn cfcg_boundary() -> Self {
        RepairScenarioConfig {
            topology: TopologyKind::Cfcg,
            nodes: 29,
            ppn: 2,
            ops_per_rank: 4,
            victim: 24,
            kill_at: SimTime::from_micros(50),
            seed: 0x4E4A,
        }
    }

    /// Total ranks.
    pub fn n_procs(&self) -> u32 {
        self.nodes * self.ppn
    }

    /// The hot rank every other rank targets: the master of the *last*
    /// node, so traffic crosses the partial top slice — including the
    /// pair whose only escape route the crash severs.
    pub fn hot_rank(&self) -> Rank {
        Rank((self.nodes - 1) * self.ppn)
    }
}

/// Result of a membership-repair run.
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The static analyzer refuses the crashed configuration (expected
    /// `true` for the boundary scenarios — the pin this experiment
    /// contrasts against).
    pub static_refusal: bool,
    /// Every surviving rank finished its program with no terminal
    /// failures.
    pub completed: bool,
    /// Completion time, seconds.
    pub exec_seconds: f64,
    /// Fraction of ranks that finished their program.
    pub availability: f64,
    /// Operations completed across all ranks.
    pub completed_ops: u64,
    /// Operations that failed terminally (must be 0 on success).
    pub failed_ops: u64,
    /// Buffer credits still held between live endpoints at quiescence
    /// (must be 0).
    pub credit_leaks: u64,
    /// The node that was crashed.
    pub victim: u32,
    /// Ranks lost with the victim node.
    pub lost_ranks: u32,
    /// The topology kind the repair committed (the original re-packed, or
    /// a lower rung of the fallback ladder).
    pub post_repair_kind: TopologyKind,
    /// The committed survivor packing re-certifies under `vt-analyze`.
    pub post_repair_certified: bool,
    /// Membership / repair activity counters.
    pub repair: RepairStats,
    /// Retransmissions issued (stale-epoch replays ride these).
    pub retries: u64,
}

fn runtime_config(cfg: &RepairScenarioConfig) -> RuntimeConfig {
    let mut rt = RuntimeConfig::new(cfg.n_procs(), cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    rt
}

fn build(cfg: &RepairScenarioConfig, rt: RuntimeConfig, plan: &FaultPlan) -> Simulation {
    let ops = cfg.ops_per_rank;
    let hot = cfg.hot_rank();
    Simulation::build_with_faults(
        rt,
        move |rank| {
            let mut script = Vec::new();
            if rank != hot {
                // A short stagger keeps every rank alive past t = 0 so
                // the crash always finds traffic in flight.
                script.push(Action::Compute(SimTime::from_micros(
                    2 + u64::from(rank.0 % 7),
                )));
                for _ in 0..ops {
                    script.push(Action::Op(vt_armci::Op::fetch_add(hot, 1)));
                }
            }
            ScriptProgram::new(script)
        },
        plan,
    )
}

/// Runs the membership-repair scenario: records the static analyzer's
/// refusal of the crashed packing, then runs the same crash with
/// membership enabled and `vt-analyze`'s repair certifier installed.
///
/// # Panics
/// Panics if the simulation deadlocks or fails to terminate — the
/// membership machinery is expected to always repair or diagnose.
/// [`try_run`] is the non-panicking variant.
pub fn run(cfg: &RepairScenarioConfig) -> RepairOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("repair scenario failed: {e}"))
}

/// Runs the membership-repair scenario, surfacing abnormal simulation
/// endings as a typed error.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the membership run ends
/// abnormally.
pub fn try_run(cfg: &RepairScenarioConfig) -> Result<RepairOutcome, crate::RunError> {
    let plan = FaultPlan::new().crash_node(cfg.kill_at, cfg.victim);
    plan.validate()?;
    // The contrast pin: the *static* crashed configuration (membership
    // off) is refused for escape-critical victims. Recorded, not fatal —
    // surviving exactly this refusal is the experiment.
    let static_refusal = vt_analyze::certify(&runtime_config(cfg), Some(&plan)).is_err();

    let mut rt = runtime_config(cfg);
    rt.membership = MembershipConfig::on();
    let report = build(cfg, rt, &plan)
        .with_repair_certifier(vt_analyze::certify_repair)
        .run()?;

    let repair = report.repair;
    // The rung the repair committed: `fallback_depth` steps down the
    // ladder from the original kind.
    let ladder = fallback_ladder(cfg.topology);
    let post_repair_kind = ladder
        .get(repair.fallback_depth as usize)
        .copied()
        .unwrap_or(TopologyKind::Fcg);
    let survivors = cfg.nodes - 1;
    let post_repair_certified =
        repair.epoch_bumps > 0 && vt_analyze::certify_repair(post_repair_kind, survivors).is_ok();

    Ok(RepairOutcome {
        static_refusal,
        completed: report.failures.is_empty() && report.faults.failed_ops == 0,
        exec_seconds: report.finish_time.as_secs_f64(),
        availability: report.availability(),
        completed_ops: report.metrics.total_ops(),
        failed_ops: report.faults.failed_ops,
        credit_leaks: report.credit_leaks,
        victim: cfg.victim,
        lost_ranks: report.lost_ranks.len() as u32,
        post_repair_kind,
        post_repair_certified,
        repair,
        retries: report.faults.retries,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn mfcg_boundary_crash_is_refused_statically_but_repaired_live() {
        let o = run(&RepairScenarioConfig::mfcg_boundary());
        assert!(o.static_refusal, "static pin must hold: {o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.failed_ops, 0);
        assert_eq!(o.credit_leaks, 0);
        assert!(o.repair.epoch_bumps >= 1, "{o:?}");
        assert!(o.post_repair_certified, "{o:?}");
        assert_eq!(o.post_repair_kind, TopologyKind::Mfcg);
        assert_eq!(o.lost_ranks, 2);
        let expected = (46.0 - 2.0) / 46.0;
        assert!((o.availability - expected).abs() < 1e-12, "{o:?}");
    }

    #[test]
    fn cfcg_boundary_crash_is_repaired_live() {
        let o = run(&RepairScenarioConfig::cfcg_boundary());
        assert!(o.static_refusal, "static pin must hold: {o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.credit_leaks, 0);
        assert!(o.repair.epoch_bumps >= 1);
        assert!(o.post_repair_certified, "{o:?}");
    }

    #[test]
    fn deterministic() {
        let a = run(&RepairScenarioConfig::mfcg_boundary());
        let b = run(&RepairScenarioConfig::mfcg_boundary());
        assert_eq!(a.exec_seconds, b.exec_seconds);
        assert_eq!(a.repair, b.repair);
        assert_eq!(a.retries, b.retries);
    }
}
