//! The hot-spot contention microbenchmark (paper §V-B, Figs. 6 and 7).
//!
//! Reproduces the paper's measurement protocol exactly:
//!
//! * a job of `n_procs` ranks (paper: 1 024 at 4 per node across 256 nodes);
//! * every process *not on rank 0's node* is measured in turn: it performs
//!   `iterations` (paper: 20) one-sided operations to rank 0 while all
//!   uninvolved processes idle in a barrier; its mean completion time is one
//!   point of the rank-vs-latency curve;
//! * under contention, one in every `every_nth` processes (9 → 11 %,
//!   5 → 20 %) concurrently performs the same operations to rank 0
//!   throughout each measurement phase.
//!
//! Latency is measured by the programs themselves (issue-to-completion of
//! each blocking op), so contender traffic never pollutes a measured mean.

use crate::report::Series;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::sync::Mutex;
use vt_armci::{Action, Op, OpKind, ProcCtx, Program, Rank, RuntimeConfig, Simulation};
use vt_core::TopologyKind;
use vt_simnet::SimTime;

/// The contention level of a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scenario {
    /// Only the measured process communicates; everyone else idles
    /// (paper: "no contention").
    NoContention,
    /// One in every `every_nth` processes hammers rank 0 concurrently.
    Contention {
        /// 9 reproduces the paper's 11 % scenario, 5 its 20 %.
        every_nth: u32,
    },
}

impl Scenario {
    /// The paper's 11 % contention scenario (one in nine).
    pub fn pct11() -> Self {
        Scenario::Contention { every_nth: 9 }
    }

    /// The paper's 20 % contention scenario (one in five).
    pub fn pct20() -> Self {
        Scenario::Contention { every_nth: 5 }
    }

    /// Label used in figure legends.
    pub fn label(&self) -> String {
        match self {
            Scenario::NoContention => "no contention".to_string(),
            Scenario::Contention { every_nth } => {
                format!("{:.0}% contention", 100.0 / *every_nth as f64)
            }
        }
    }
}

/// Which one-sided operation the benchmark exercises against rank 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpec {
    /// The operation kind (CHT-path kinds are the interesting ones).
    pub kind: OpKind,
    /// Segments for vectored kinds.
    pub segments: u32,
    /// Bytes per segment.
    pub seg_bytes: u64,
}

impl OpSpec {
    /// The paper's vectored put workload (Fig. 6).
    pub fn vector_put() -> Self {
        OpSpec {
            kind: OpKind::PutV,
            segments: 8,
            seg_bytes: 1024,
        }
    }

    /// Vectored get (paper §V-B2 also measured gets).
    pub fn vector_get() -> Self {
        OpSpec {
            kind: OpKind::GetV,
            segments: 8,
            seg_bytes: 1024,
        }
    }

    /// The paper's atomic fetch-&-add workload (Fig. 7).
    pub fn fetch_add() -> Self {
        OpSpec {
            kind: OpKind::FetchAdd,
            segments: 1,
            seg_bytes: 8,
        }
    }

    /// Alternating lock/unlock pairs on a mutex owned by rank 0 (the paper
    /// also observed contention benefits for lock operations, §V-B).
    pub fn lock_unlock() -> Self {
        OpSpec {
            kind: OpKind::Lock,
            segments: 1,
            seg_bytes: 0,
        }
    }

    /// Builds the concrete op against `target`.
    pub fn to_op(&self, target: Rank) -> Op {
        match self.kind {
            OpKind::Put => Op::put(target, self.seg_bytes * u64::from(self.segments)),
            OpKind::Get => Op::get(target, self.seg_bytes * u64::from(self.segments)),
            OpKind::PutV => Op::put_v(target, self.segments, self.seg_bytes),
            OpKind::GetV => Op::get_v(target, self.segments, self.seg_bytes),
            OpKind::Acc => Op::acc(target, self.seg_bytes * u64::from(self.segments)),
            OpKind::FetchAdd => Op::fetch_add(target, 1),
            OpKind::Lock => Op::lock(target),
            OpKind::Unlock => Op::unlock(target),
        }
    }
}

/// Configuration of one contention run (one curve of Figs. 6/7).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ContentionConfig {
    /// Total ranks. Paper: 1 024.
    pub n_procs: u32,
    /// Processes per node. Paper: 4.
    pub ppn: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// The exercised operation.
    pub op: OpSpec,
    /// Blocking operations per measured process. Paper: 20.
    pub iterations: u32,
    /// Contention level.
    pub scenario: Scenario,
    /// Measure every `measure_stride`-th eligible rank (1 = all, as in the
    /// paper; larger values cut wall-clock cost for quick runs).
    pub measure_stride: u32,
    /// Root seed.
    pub seed: u64,
    /// Override of the per-sender credit count `M` (ablations).
    pub buffers_per_proc: Option<u32>,
    /// Override of the NIC fast stream-context count (ablations).
    pub stream_contexts: Option<usize>,
    /// Override of the physical node placement (ablations).
    pub placement: Option<vt_simnet::Placement>,
    /// Override of the whole machine model (platform studies); narrower
    /// overrides above are applied on top of it.
    pub net: Option<vt_simnet::NetworkConfig>,
    /// When set, contenders issue their operations asynchronously (bounded
    /// by their `M` credits) instead of blocking one at a time — this makes
    /// the buffer-provisioning ablation sensitive to `M`.
    pub pipelined_contenders: bool,
    /// Override of the request-coalescing policy (ablations). `None` keeps
    /// the runtime default (off).
    pub coalesce: Option<vt_armci::CoalesceConfig>,
    /// Override of the membership/repair policy (ablations). `None` keeps
    /// the runtime default (off), which is byte-identical to a build
    /// without the subsystem.
    pub membership: Option<vt_armci::MembershipConfig>,
}

impl ContentionConfig {
    /// The paper's setup: 1 024 processes, 4 per node, 20 iterations.
    pub fn paper(topology: TopologyKind, op: OpSpec, scenario: Scenario) -> Self {
        ContentionConfig {
            n_procs: 1024,
            ppn: 4,
            topology,
            op,
            iterations: 20,
            scenario,
            measure_stride: 1,
            seed: 0xF166,
            buffers_per_proc: None,
            stream_contexts: None,
            placement: None,
            net: None,
            pipelined_contenders: false,
            coalesce: None,
            membership: None,
        }
    }
}

/// Result of one contention run.
#[derive(Clone, Debug)]
pub struct ContentionOutcome {
    /// `(rank, mean latency in µs)` for every measured rank, in rank order.
    pub points: Vec<(u32, f64)>,
    /// Total simulated time of the whole protocol.
    pub finish: SimTime,
    /// BEER slow-path events over the run.
    pub stream_misses: u64,
    /// Requests forwarded by intermediate CHTs (envelope members count
    /// individually).
    pub forwards: u64,
    /// Physical forwarding messages (equals `forwards` with coalescing off).
    pub fwd_messages: u64,
    /// Coalesced envelopes assembled over the run.
    pub envelopes: u64,
    /// Member requests carried inside envelopes.
    pub coalesced: u64,
    /// Total network messages.
    pub messages: u64,
}

impl ContentionOutcome {
    /// The points as a plot series labelled with the topology name.
    pub fn series(&self, label: impl Into<String>) -> Series {
        Series::new(
            label,
            self.points
                .iter()
                .map(|&(r, us)| (f64::from(r), us))
                .collect(),
        )
    }

    /// Mean latency over all measured ranks (µs).
    pub fn mean_us(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, us)| us).sum::<f64>() / self.points.len() as f64
    }

    /// Median latency over all measured ranks (µs).
    pub fn median_us(&self) -> f64 {
        let ys: Vec<f64> = self.points.iter().map(|&(_, us)| us).collect();
        vt_simnet::stats::percentile(&ys, 50.0)
    }
}

/// The per-phase schedule shared by all rank programs.
struct Schedule {
    /// The rank measured in each phase.
    measured: Vec<Rank>,
    scenario: Scenario,
    ppn: u32,
    iterations: u32,
    op: OpSpec,
    pipelined: bool,
}

impl Schedule {
    fn on_node0(&self, rank: Rank) -> bool {
        rank.0 < self.ppn
    }

    fn is_contender(&self, rank: Rank) -> bool {
        match self.scenario {
            Scenario::NoContention => false,
            Scenario::Contention { every_nth } => {
                !self.on_node0(rank) && rank.0 % every_nth == every_nth - 1
            }
        }
    }

    fn active(&self, rank: Rank, phase: usize) -> bool {
        self.measured[phase] == rank || self.is_contender(rank)
    }
}

/// The per-rank state machine implementing the measurement protocol.
struct ContentionProgram {
    rank: Rank,
    sched: Arc<Schedule>,
    results: Arc<Mutex<Vec<(u32, f64)>>>,
    phase: usize,
    in_phase: bool,
    ops_done: u32,
    fenced: bool,
    pending_issue: Option<SimTime>,
    lat_sum_us: f64,
    lat_count: u32,
}

impl Program for ContentionProgram {
    fn next(&mut self, ctx: &ProcCtx) -> Action {
        // Record the completion of the previous measured op.
        if let Some(issued) = self.pending_issue.take() {
            if self.sched.measured[self.phase] == self.rank {
                self.lat_sum_us += (ctx.now - issued).as_micros_f64();
                self.lat_count += 1;
            }
        }
        loop {
            if self.phase >= self.sched.measured.len() {
                return Action::Done;
            }
            if !self.in_phase {
                self.in_phase = true;
                self.ops_done = 0;
                self.fenced = false;
                return Action::Barrier;
            }
            let measuring = self.sched.measured[self.phase] == self.rank;
            if self.sched.active(self.rank, self.phase) && self.ops_done < self.sched.iterations {
                self.ops_done += 1;
                // Lock workloads alternate lock/unlock so the mutex is always
                // released (and are never pipelined: an unlock must not
                // overtake its own pending lock).
                let op = if self.sched.op.kind == OpKind::Lock && self.ops_done.is_multiple_of(2) {
                    Op::unlock(Rank(0))
                } else {
                    self.sched.op.to_op(Rank(0))
                };
                if self.sched.pipelined
                    && !measuring
                    && op.kind != OpKind::Lock
                    && op.kind != OpKind::Unlock
                {
                    // Contenders pipeline up to their M credits.
                    return Action::OpAsync(op);
                }
                self.pending_issue = Some(ctx.now);
                return Action::Op(op);
            }
            if self.sched.pipelined
                && !measuring
                && self.sched.active(self.rank, self.phase)
                && !self.fenced
            {
                self.fenced = true;
                return Action::WaitAll;
            }
            // Phase finished for this rank: publish if it was measured.
            if self.sched.measured[self.phase] == self.rank && self.lat_count > 0 {
                self.results
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((self.rank.0, self.lat_sum_us / f64::from(self.lat_count)));
                self.lat_sum_us = 0.0;
                self.lat_count = 0;
            }
            self.phase += 1;
            self.in_phase = false;
        }
    }
}

/// Runs the full measurement protocol and returns the latency curve.
///
/// # Panics
/// Panics if the configuration is too small to have any measurable rank
/// (everything on rank 0's node), if the `vt-analyze` pre-flight refuses
/// to certify it, if the simulation ends abnormally, or if it is
/// otherwise invalid. [`try_run`] is the non-panicking variant.
pub fn run(cfg: &ContentionConfig) -> ContentionOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("contention run failed: {e}"))
}

/// Runs the full measurement protocol, surfacing abnormal simulation
/// endings as a typed error instead of panicking.
///
/// # Errors
/// Returns [`RunError`](crate::RunError) when the simulation deadlocks or
/// times out.
///
/// # Panics
/// Still panics on invalid configurations (no measurable rank, or a
/// pre-flight certification refusal) — those are caller bugs, not runtime
/// outcomes.
pub fn try_run(cfg: &ContentionConfig) -> Result<ContentionOutcome, crate::RunError> {
    let mut rt = RuntimeConfig::new(cfg.n_procs, cfg.topology);
    rt.procs_per_node = cfg.ppn;
    rt.seed = cfg.seed;
    rt.record_ops = false;
    if let Some(net) = cfg.net {
        rt.net = net;
    }
    if let Some(m) = cfg.buffers_per_proc {
        rt.buffers_per_proc = m;
    }
    if let Some(s) = cfg.stream_contexts {
        rt.net.stream_contexts = s;
    }
    if let Some(p) = cfg.placement {
        rt.net.placement = p;
    }
    if let Some(c) = cfg.coalesce {
        rt.coalesce = c;
    }
    if let Some(m) = cfg.membership {
        rt.membership = m;
    }
    // Pre-flight: refuse to burn simulation time on a configuration the
    // static verifier cannot certify deadlock-free.
    if let Err(report) = vt_analyze::certify(&rt, None) {
        panic!("pre-flight verification failed:\n{report}");
    }

    let measured: Vec<Rank> = (cfg.ppn..cfg.n_procs)
        .step_by(cfg.measure_stride.max(1) as usize)
        .map(Rank)
        .collect();
    assert!(
        !measured.is_empty(),
        "no measurable ranks: all processes share rank 0's node"
    );
    let sched = Arc::new(Schedule {
        measured,
        scenario: cfg.scenario,
        ppn: cfg.ppn,
        iterations: cfg.iterations,
        op: cfg.op,
        pipelined: cfg.pipelined_contenders,
    });
    let results = Arc::new(Mutex::new(Vec::new()));

    let sim = Simulation::build(rt, |rank| ContentionProgram {
        rank,
        sched: sched.clone(),
        results: results.clone(),
        phase: 0,
        in_phase: false,
        ops_done: 0,
        fenced: false,
        pending_issue: None,
        lat_sum_us: 0.0,
        lat_count: 0,
    });
    let report = sim.run()?;

    let mut points = Arc::try_unwrap(results)
        .map_err(|_| crate::RunError::Harness("a program outlived the simulation".into()))?
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    points.sort_unstable_by_key(|&(r, _)| r);
    Ok(ContentionOutcome {
        points,
        finish: report.finish_time,
        stream_misses: report.net.stream_misses,
        forwards: report.cht_totals.forwarded,
        fwd_messages: report.cht_totals.fwd_messages,
        envelopes: report.cht_totals.envelopes,
        coalesced: report.cht_totals.coalesced,
        messages: report.net.messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(topology: TopologyKind, scenario: Scenario) -> ContentionConfig {
        ContentionConfig {
            n_procs: 64,
            ppn: 4,
            topology,
            op: OpSpec::fetch_add(),
            iterations: 3,
            scenario,
            measure_stride: 4,
            seed: 7,
            buffers_per_proc: None,
            stream_contexts: None,
            placement: None,
            net: None,
            pipelined_contenders: false,
            coalesce: None,
            membership: None,
        }
    }

    #[test]
    fn measures_every_scheduled_rank() {
        let cfg = tiny(TopologyKind::Fcg, Scenario::NoContention);
        let out = run(&cfg);
        // Ranks 4, 8, ..., 60 measured.
        assert_eq!(out.points.len(), 15);
        assert_eq!(out.points[0].0, 4);
        assert!(out.points.iter().all(|&(_, us)| us > 0.0));
        assert!(out.finish > SimTime::ZERO);
    }

    #[test]
    fn contention_slows_fcg_down() {
        // At this miniature scale (16 nodes) the NIC stream table never
        // thrashes, so only queueing at rank 0 shows up; the full collapse
        // is asserted at realistic scale in the integration tests.
        let quiet = run(&tiny(TopologyKind::Fcg, Scenario::NoContention));
        let loud = run(&tiny(TopologyKind::Fcg, Scenario::pct20()));
        assert!(
            loud.mean_us() > 1.15 * quiet.mean_us(),
            "20% contention must hurt FCG: quiet {:.1}us loud {:.1}us",
            quiet.mean_us(),
            loud.mean_us()
        );
    }

    #[test]
    fn mfcg_forwards_but_fcg_does_not() {
        let fcg = run(&tiny(TopologyKind::Fcg, Scenario::NoContention));
        let mfcg = run(&tiny(TopologyKind::Mfcg, Scenario::NoContention));
        assert_eq!(fcg.forwards, 0);
        assert!(mfcg.forwards > 0);
        // Without contention FCG's direct path is faster.
        assert!(mfcg.mean_us() > fcg.mean_us());
    }

    #[test]
    fn deterministic() {
        let cfg = tiny(TopologyKind::Mfcg, Scenario::pct11());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.points, b.points);
        assert_eq!(a.finish, b.finish);
    }

    #[test]
    fn coalescing_attenuates_forwarding_traffic() {
        let mut off = tiny(TopologyKind::Mfcg, Scenario::pct20());
        off.pipelined_contenders = true;
        let mut on = off;
        on.coalesce = Some(vt_armci::CoalesceConfig::on());
        let a = run(&off);
        let b = run(&on);
        // Same logical forwarding work, fewer physical messages.
        assert_eq!(a.fwd_messages, a.forwards);
        assert!(b.envelopes > 0, "no envelopes formed");
        assert_eq!(b.coalesced + (b.fwd_messages - b.envelopes), b.forwards);
        assert!(b.fwd_messages < b.forwards);
        assert!(b.messages < a.messages);
        // Coalescing must not slow the hot-spot workload down.
        assert!(
            b.finish <= a.finish,
            "coalesced run slower: {} vs {}",
            b.finish,
            a.finish
        );
    }

    #[test]
    fn scenario_labels() {
        assert_eq!(Scenario::NoContention.label(), "no contention");
        assert_eq!(Scenario::pct11().label(), "11% contention");
        assert_eq!(Scenario::pct20().label(), "20% contention");
    }

    #[test]
    fn outcome_series_conversion() {
        let out = ContentionOutcome {
            points: vec![(4, 10.0), (8, 30.0)],
            finish: SimTime::ZERO,
            stream_misses: 0,
            forwards: 0,
            fwd_messages: 0,
            envelopes: 0,
            coalesced: 0,
            messages: 0,
        };
        let s = out.series("fcg");
        assert_eq!(s.points, vec![(4.0, 10.0), (8.0, 30.0)]);
        assert_eq!(out.mean_us(), 20.0);
        assert_eq!(out.median_us(), 20.0);
    }

    #[test]
    fn lock_workload_alternates_and_completes() {
        let mut cfg = tiny(TopologyKind::Mfcg, Scenario::pct20());
        cfg.op = OpSpec::lock_unlock();
        cfg.iterations = 4; // two lock/unlock pairs per active process
        let out = run(&cfg);
        assert_eq!(out.points.len(), 15);
        assert!(out.points.iter().all(|&(_, us)| us > 0.0));
    }

    #[test]
    fn lock_contention_hurts_like_other_cht_ops() {
        let mut quiet_cfg = tiny(TopologyKind::Fcg, Scenario::NoContention);
        quiet_cfg.op = OpSpec::lock_unlock();
        quiet_cfg.iterations = 4;
        let mut loud_cfg = quiet_cfg;
        loud_cfg.scenario = Scenario::pct20();
        let quiet = run(&quiet_cfg);
        let loud = run(&loud_cfg);
        assert!(loud.mean_us() > quiet.mean_us());
    }

    #[test]
    fn op_spec_builds_expected_ops() {
        assert_eq!(
            OpSpec::vector_put().to_op(Rank(0)),
            Op::put_v(Rank(0), 8, 1024)
        );
        assert_eq!(
            OpSpec::fetch_add().to_op(Rank(0)),
            Op::fetch_add(Rank(0), 1)
        );
        let lock = OpSpec {
            kind: OpKind::Lock,
            segments: 1,
            seg_bytes: 0,
        };
        assert_eq!(lock.to_op(Rank(2)), Op::lock(Rank(2)));
    }
}
