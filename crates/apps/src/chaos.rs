//! Deterministic chaos campaigns: randomised composite fault schedules,
//! invariant oracles, replay checks, and greedy shrinking.
//!
//! A chaos campaign draws a grid of cells (topology × population), gives
//! each cell a composite [`FaultPlan`] sampled from its own fork of the
//! campaign RNG — crashes, reboots, partitions, transient loss, payload
//! corruption, in any combination — and runs every cell through the
//! self-healing runtime with membership repair on. Each cell is then held
//! against a set of invariant oracles:
//!
//! * the run **completes** (no deadlock at quiescence),
//! * **no credit leaks** — every live sender's buffers drained,
//! * **every corrupt frame was caught**: the engine's checksum counter
//!   equals the network's corruption counter exactly,
//! * **exactly-once effects**: the hot counter's final value is bounded
//!   below by the operations that completed at their origins and above by
//!   the operations issued, and no other rank's counter moved,
//! * **replay byte-identity**: the cell run twice produces an identical
//!   report digest.
//!
//! Because every plan is a pure function of `(campaign seed, cell index)`
//! and cells fan out through the order-preserving
//! [`run_parallel`](crate::sweep::run_parallel), the whole campaign is
//! reproducible at any worker count. When a cell fails its oracles, the
//! harness greedily shrinks the offending schedule — dropping crashes
//! (with their reboots), partitions and windows while the failure
//! persists — down to a minimized reproducer worth committing to a test.

use serde::{Deserialize, Serialize};
use vt_armci::{
    Action, FaultPlan, MembershipConfig, Op, Rank, Report, RuntimeConfig, ScriptProgram, SimTime,
    Simulation,
};
use vt_core::TopologyKind;
use vt_simnet::DetRng;

/// The four topology kinds every campaign cycles through.
pub const CAMPAIGN_TOPOLOGIES: [TopologyKind; 4] = [
    TopologyKind::Fcg,
    TopologyKind::Cfcg,
    TopologyKind::Mfcg,
    TopologyKind::Hypercube,
];

/// Process populations the campaign alternates between (power-of-two node
/// counts at the default 4 ppn, so every topology kind builds).
pub const CAMPAIGN_SIZES: [u32; 2] = [16, 32];

/// Configuration of a chaos campaign.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Number of cells to draw and run.
    pub cells: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Fetch-&-adds each rank issues at the hot rank (split around a long
    /// keep-alive compute so the run spans the whole fault horizon).
    pub ops_per_rank: u32,
    /// Campaign root seed; cell `i` draws its schedule from fork `i`.
    pub seed: u64,
    /// Worker threads for the sweep (0 = one per CPU).
    pub threads: usize,
}

impl ChaosConfig {
    /// The standard campaign: 64 cells over all four topology kinds.
    pub fn paper() -> Self {
        ChaosConfig {
            cells: 64,
            ppn: 4,
            ops_per_rank: 12,
            seed: 0xC4A0,
            threads: 0,
        }
    }

    /// A small fixed-seed campaign for smoke tests and CI.
    pub fn quick() -> Self {
        ChaosConfig {
            cells: 8,
            ..Self::paper()
        }
    }
}

/// One drawn cell of a campaign: a topology at a population under a
/// sampled composite fault schedule.
#[derive(Clone, Debug)]
pub struct ChaosCell {
    /// Cell index within the campaign (also the RNG fork stream).
    pub idx: u32,
    /// Virtual topology under test.
    pub topology: TopologyKind,
    /// Number of simulated processes.
    pub n_procs: u32,
    /// Processes per node.
    pub ppn: u32,
    /// Fetch-&-adds per rank.
    pub ops_per_rank: u32,
    /// The cell's runtime seed.
    pub seed: u64,
    /// The sampled fault schedule.
    pub plan: FaultPlan,
}

/// Result of one campaign cell: oracle verdicts plus headline counters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellOutcome {
    /// Cell index within the campaign.
    pub idx: u32,
    /// Virtual topology the cell ran.
    pub topology: TopologyKind,
    /// Number of simulated processes.
    pub n_procs: u32,
    /// Crashes in the cell's schedule.
    pub crashes: u32,
    /// Reboots in the cell's schedule.
    pub restarts: u32,
    /// Partition windows in the cell's schedule.
    pub partitions: u32,
    /// Loss windows in the cell's schedule.
    pub drop_windows: u32,
    /// Corruption windows in the cell's schedule.
    pub corrupt_windows: u32,
    /// Completion time of the faulted run, seconds.
    pub exec_seconds: f64,
    /// Retransmissions issued.
    pub retries: u64,
    /// Corrupt frames caught by the envelope checksum.
    pub corrupt_detected: u64,
    /// Membership epochs committed.
    pub epoch_bumps: u64,
    /// Rebooted nodes re-admitted by a grow-back epoch.
    pub rejoins_committed: u64,
    /// Partition windows that healed during the run.
    pub partitions_healed: u64,
    /// Suspicions suppressed by the partition grace window.
    pub false_suspicions_suppressed: u64,
    /// Invariant violations (empty = the cell passed every oracle).
    pub violations: Vec<String>,
    /// Stable digest of the report, for replay comparison.
    pub digest: String,
}

impl CellOutcome {
    /// Whether the cell passed every oracle.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A failing cell's schedule reduced to a minimal reproducer.
#[derive(Clone, Debug)]
pub struct MinimizedRepro {
    /// Index of the failing cell the reproducer was shrunk from.
    pub cell: u32,
    /// The minimized fault schedule (still failing).
    pub plan: FaultPlan,
    /// The violations the minimized schedule still triggers.
    pub violations: Vec<String>,
}

/// Result of a whole campaign.
#[derive(Clone, Debug)]
pub struct ChaosOutcome {
    /// Per-cell outcomes, in cell order.
    pub cells: Vec<CellOutcome>,
    /// The first failing cell's schedule, greedily shrunk (None when every
    /// cell passed).
    pub minimized: Option<MinimizedRepro>,
}

impl ChaosOutcome {
    /// Number of cells that failed at least one oracle.
    pub fn failing_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.passed()).count()
    }
}

/// Draws cell `idx`'s composite fault schedule from the campaign RNG.
///
/// Pure function of `(seed, idx)`: the same campaign always samples the
/// same schedules regardless of worker count or which cells ran before.
/// Every drawn schedule passes [`FaultPlan::validate`] by construction
/// (distinct victims, reboots after their crashes, non-empty windows).
pub fn draw_plan(seed: u64, idx: u32, n_nodes: u32) -> FaultPlan {
    let mut rng = DetRng::new(seed).fork(u64::from(idx));
    let mut plan = FaultPlan::new();

    // Crashes: up to two distinct victims, sparing node 0 (the hot
    // target's home) so availability stays comparable across cells. Two
    // thirds of victims reboot 2–10 ms later and must rejoin.
    let n_crashes = rng.index(3) as u32;
    let mut victims: Vec<u32> = (1..n_nodes).collect();
    rng.shuffle(&mut victims);
    for &node in victims.iter().take(n_crashes as usize) {
        let at = SimTime::from_micros(50 + rng.u64_below(15_000));
        plan = plan.crash_node(at, node);
        if rng.index(3) < 2 {
            let back = at + SimTime::from_micros(2_000 + rng.u64_below(8_000));
            plan = plan.restart_node(back, node);
        }
    }

    // One partition window in half the cells: a directed cut between two
    // distinct nodes, severed both ways half the time.
    if n_nodes >= 2 && rng.index(2) == 0 {
        let from = SimTime::from_micros(rng.u64_below(10_000));
        let until = from + SimTime::from_micros(1_000 + rng.u64_below(7_000));
        let a = rng.u64_below(u64::from(n_nodes)) as u32;
        let mut b = rng.u64_below(u64::from(n_nodes)) as u32;
        if b == a {
            b = (a + 1) % n_nodes;
        }
        let mut cut = vec![(a, b)];
        if rng.index(2) == 0 {
            cut.push((b, a));
        }
        plan = plan.partition(from, until, cut);
    }

    // One transient-loss window in half the cells.
    if rng.index(2) == 0 {
        let from = SimTime::from_micros(rng.u64_below(12_000));
        let until = from + SimTime::from_micros(1_000 + rng.u64_below(10_000));
        plan = plan.drop_window(from, until, rng.f64_range(0.02, 0.25));
    }

    // One payload-corruption window in half the cells.
    if rng.index(2) == 0 {
        let from = SimTime::from_micros(rng.u64_below(12_000));
        let until = from + SimTime::from_micros(1_000 + rng.u64_below(10_000));
        plan = plan.corrupt_window(from, until, rng.f64_range(0.02, 0.3));
    }

    plan
}

/// Enumerates the campaign's cells: cell `i` cycles through the four
/// topology kinds (inner) and the two populations (outer), with its
/// schedule drawn from RNG fork `i`.
pub fn draw_cells(cfg: &ChaosConfig) -> Vec<ChaosCell> {
    (0..cfg.cells)
        .map(|idx| {
            let topology = CAMPAIGN_TOPOLOGIES[idx as usize % CAMPAIGN_TOPOLOGIES.len()];
            let n_procs =
                CAMPAIGN_SIZES[(idx as usize / CAMPAIGN_TOPOLOGIES.len()) % CAMPAIGN_SIZES.len()];
            let n_nodes = n_procs.div_ceil(cfg.ppn);
            let plan = draw_plan(cfg.seed, idx, n_nodes);
            debug_assert!(plan.validate().is_ok(), "drawn plan must validate");
            ChaosCell {
                idx,
                topology,
                n_procs,
                ppn: cfg.ppn,
                ops_per_rank: cfg.ops_per_rank,
                seed: cfg.seed ^ (u64::from(idx) << 32),
                plan,
            }
        })
        .collect()
}

fn runtime_config(cell: &ChaosCell) -> RuntimeConfig {
    let mut rt = RuntimeConfig::new(cell.n_procs, cell.topology);
    rt.procs_per_node = cell.ppn;
    rt.seed = cell.seed;
    rt.membership = MembershipConfig::on();
    rt
}

/// Runs one cell's workload under `plan` (the cell's own schedule, or a
/// shrinking candidate).
///
/// The workload is the hot-spot pattern: every rank but 0 hammers rank 0
/// with fetch-&-adds, split around a 30 ms keep-alive compute so the run
/// is still alive when late reboots and heals land.
fn run_plan(cell: &ChaosCell, plan: &FaultPlan) -> Result<Report, vt_armci::SimError> {
    let ops = cell.ops_per_rank;
    Simulation::build_with_faults(
        runtime_config(cell),
        move |rank| {
            let mut script = Vec::new();
            if rank != Rank(0) {
                script.push(Action::Compute(SimTime::from_micros(
                    2 + u64::from(rank.0 % 7),
                )));
                for _ in 0..ops / 2 {
                    script.push(Action::Op(Op::fetch_add(Rank(0), 1)));
                }
                script.push(Action::Compute(SimTime::from_millis(30)));
                for _ in 0..ops - ops / 2 {
                    script.push(Action::Op(Op::fetch_add(Rank(0), 1)));
                }
            }
            ScriptProgram::new(script)
        },
        plan,
    )
    .with_repair_certifier(vt_analyze::certify_repair)
    .run()
}

/// A stable, byte-comparable digest of everything a report observes:
/// timeline, event count, traffic, fault/repair counters, final counter
/// values, failures and losses. Two runs of the same cell must produce
/// identical digests — the replay oracle.
fn digest(report: &Report) -> String {
    format!(
        "t={:?} ev={} net={:?} faults={:?} repair={:?} finals={:?} ops={} failures={:?} lost={:?} leaks={}",
        report.finish_time,
        report.events,
        report.net,
        report.faults,
        report.repair,
        report.fetch_finals,
        report.metrics.total_ops(),
        report.failures,
        report.lost_ranks,
        report.credit_leaks,
    )
}

/// Applies the invariant oracles to one run's result, returning every
/// violation found (empty = passed).
fn check_oracles(cell: &ChaosCell, result: &Result<Report, vt_armci::SimError>) -> Vec<String> {
    let mut v = Vec::new();
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            v.push(format!("run did not complete: {e}"));
            return v;
        }
    };
    if report.credit_leaks != 0 {
        v.push(format!(
            "credit leak: {} live credits stranded",
            report.credit_leaks
        ));
    }
    if report.faults.corrupt_detected != report.net.corrupted {
        v.push(format!(
            "checksum gap: {} corrupt frames delivered, {} detected",
            report.net.corrupted, report.faults.corrupt_detected
        ));
    }
    let applied = report.fetch_finals.first().copied().unwrap_or(0);
    let completed = report.metrics.total_ops() as i64;
    let issued_cap = i64::from(cell.n_procs - 1) * i64::from(cell.ops_per_rank);
    if applied < completed {
        v.push(format!(
            "lost effect: {completed} ops completed but hot counter is {applied}"
        ));
    }
    if applied > issued_cap {
        v.push(format!(
            "duplicate effect: hot counter {applied} exceeds the {issued_cap} ops issued"
        ));
    }
    if report.fetch_finals.iter().skip(1).any(|&f| f != 0) {
        v.push("stray effect: a non-target rank's counter moved".to_string());
    }
    v
}

/// Runs one cell twice and folds both runs into a [`CellOutcome`],
/// including the replay-identity oracle.
pub fn run_cell(cell: &ChaosCell) -> CellOutcome {
    let first = run_plan(cell, &cell.plan);
    let second = run_plan(cell, &cell.plan);
    let mut violations = check_oracles(cell, &first);
    let (d1, d2) = (
        first
            .as_ref()
            .map(digest)
            .unwrap_or_else(|e| format!("error: {e}")),
        second
            .as_ref()
            .map(digest)
            .unwrap_or_else(|e| format!("error: {e}")),
    );
    if d1 != d2 {
        violations.push("replay divergence: two runs of the cell differ".to_string());
    }
    let (exec, retries, cd, eb, rj, ph, fss) = match &first {
        Ok(r) => (
            r.finish_time.as_secs_f64(),
            r.faults.retries,
            r.faults.corrupt_detected,
            r.repair.epoch_bumps,
            r.repair.rejoins_committed,
            r.faults.partitions_healed,
            r.repair.false_suspicions_suppressed,
        ),
        Err(_) => (0.0, 0, 0, 0, 0, 0, 0),
    };
    CellOutcome {
        idx: cell.idx,
        topology: cell.topology,
        n_procs: cell.n_procs,
        crashes: cell.plan.node_crashes.len() as u32,
        restarts: cell.plan.node_restarts.len() as u32,
        partitions: cell.plan.partitions.len() as u32,
        drop_windows: cell.plan.drop_windows.len() as u32,
        corrupt_windows: cell.plan.corrupt_windows.len() as u32,
        exec_seconds: exec,
        retries,
        corrupt_detected: cd,
        epoch_bumps: eb,
        rejoins_committed: rj,
        partitions_healed: ph,
        false_suspicions_suppressed: fss,
        violations,
        digest: d1,
    }
}

/// Greedily shrinks `plan` while `still_fails` holds: each pass tries to
/// remove one schedule element — a crash together with its reboot, a lone
/// reboot, a partition, a loss window, a corruption window — keeping the
/// removal whenever the reduced plan still validates and still fails.
/// Terminates at a fixpoint where no single removal preserves the failure.
pub fn shrink_plan<F>(plan: &FaultPlan, mut still_fails: F) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut best = plan.clone();
    loop {
        let mut candidates: Vec<FaultPlan> = Vec::new();
        for i in 0..best.node_crashes.len() {
            let mut c = best.clone();
            let victim = c.node_crashes.remove(i).node;
            c.node_restarts.retain(|r| r.node != victim);
            candidates.push(c);
        }
        for i in 0..best.node_restarts.len() {
            let mut c = best.clone();
            c.node_restarts.remove(i);
            candidates.push(c);
        }
        for i in 0..best.partitions.len() {
            let mut c = best.clone();
            c.partitions.remove(i);
            candidates.push(c);
        }
        for i in 0..best.drop_windows.len() {
            let mut c = best.clone();
            c.drop_windows.remove(i);
            candidates.push(c);
        }
        for i in 0..best.corrupt_windows.len() {
            let mut c = best.clone();
            c.corrupt_windows.remove(i);
            candidates.push(c);
        }
        let next = candidates
            .into_iter()
            .find(|c| c.validate().is_ok() && still_fails(c));
        match next {
            Some(c) => best = c,
            None => return best,
        }
    }
}

/// Runs the whole campaign: draw every cell, fan out through the parallel
/// sweep, check every oracle, and — if any cell failed — shrink the first
/// failure to a minimized reproducer.
///
/// # Errors
/// Returns [`RunError::Harness`](crate::RunError) when the configuration
/// draws no cells. Cells that *fail their oracles* are not an error — they
/// are the campaign's findings, reported per cell.
pub fn try_run(cfg: &ChaosConfig) -> Result<ChaosOutcome, crate::RunError> {
    if cfg.cells == 0 {
        return Err(crate::RunError::Harness(
            "chaos campaign needs at least one cell".to_string(),
        ));
    }
    let cells = draw_cells(cfg);
    for cell in &cells {
        cell.plan.validate()?;
    }
    let outcomes = crate::sweep::run_parallel(cells.clone(), cfg.threads, run_cell);
    let minimized = outcomes.iter().find(|o| !o.passed()).map(|o| {
        let cell = &cells[o.idx as usize];
        let plan = shrink_plan(&cell.plan, |candidate| {
            !check_oracles(cell, &run_plan(cell, candidate)).is_empty()
        });
        let violations = check_oracles(cell, &run_plan(cell, &plan));
        MinimizedRepro {
            cell: o.idx,
            plan,
            violations,
        }
    });
    Ok(ChaosOutcome {
        cells: outcomes,
        minimized,
    })
}

/// Runs the campaign, panicking on a harness misconfiguration.
/// [`try_run`] is the non-panicking variant.
///
/// # Panics
/// Panics if the configuration draws no cells.
pub fn run(cfg: &ChaosConfig) -> ChaosOutcome {
    try_run(cfg).unwrap_or_else(|e| panic!("chaos campaign failed: {e}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn drawn_plans_always_validate() {
        for idx in 0..64 {
            let plan = draw_plan(0xC4A0, idx, 8);
            assert!(plan.validate().is_ok(), "cell {idx}: {plan:?}");
        }
    }

    #[test]
    fn drawing_is_a_pure_function_of_seed_and_index() {
        assert_eq!(draw_plan(7, 3, 8), draw_plan(7, 3, 8));
        assert_ne!(draw_cells(&ChaosConfig::quick())[0].plan, {
            let mut cfg = ChaosConfig::quick();
            cfg.seed ^= 1;
            draw_cells(&cfg)[0].plan.clone()
        });
    }

    #[test]
    fn quick_campaign_passes_every_oracle() {
        let out = run(&ChaosConfig::quick());
        assert_eq!(out.cells.len(), 8);
        for c in &out.cells {
            assert!(c.passed(), "cell {}: {:?}", c.idx, c.violations);
        }
        assert!(out.minimized.is_none());
    }

    #[test]
    fn campaign_is_identical_at_any_worker_count() {
        let mut serial = ChaosConfig::quick();
        serial.threads = 1;
        let mut parallel = ChaosConfig::quick();
        parallel.threads = 4;
        let a = run(&serial);
        let b = run(&parallel);
        let da: Vec<&str> = a.cells.iter().map(|c| c.digest.as_str()).collect();
        let db: Vec<&str> = b.cells.iter().map(|c| c.digest.as_str()).collect();
        assert_eq!(da, db);
    }

    #[test]
    fn shrinker_reduces_to_the_guilty_element() {
        // Synthetic failure predicate: the plan "fails" iff it still
        // crashes node 3. The shrinker must strip everything else.
        let plan = draw_plan(0xC4A0, 1, 8)
            .crash_node(SimTime::from_micros(500), 3)
            .partition(SimTime::ZERO, SimTime::from_millis(2), vec![(1, 2)])
            .drop_window(SimTime::ZERO, SimTime::from_millis(5), 0.1);
        assert!(plan.validate().is_ok());
        let shrunk = shrink_plan(&plan, |p| p.node_crashes.iter().any(|c| c.node == 3));
        assert_eq!(shrunk.node_crashes.len(), 1);
        assert_eq!(shrunk.node_crashes[0].node, 3);
        assert!(shrunk.node_restarts.is_empty());
        assert!(shrunk.partitions.is_empty());
        assert!(shrunk.drop_windows.is_empty());
        assert!(shrunk.corrupt_windows.is_empty());
    }

    #[test]
    fn shrinker_keeps_paired_reboots_valid() {
        // Removing a crash must drag its reboot along, never leaving a
        // restart-without-crash plan on the table.
        let plan = FaultPlan::new()
            .crash_node(SimTime::from_micros(100), 1)
            .restart_node(SimTime::from_millis(5), 1)
            .crash_node(SimTime::from_micros(200), 2);
        let shrunk = shrink_plan(&plan, |p| p.node_crashes.iter().any(|c| c.node == 2));
        assert!(shrunk.validate().is_ok());
        assert_eq!(shrunk.node_crashes.len(), 1);
        assert_eq!(shrunk.node_crashes[0].node, 2);
        assert!(shrunk.node_restarts.is_empty());
    }
}
